#!/usr/bin/env python3
"""RAPL vs PowerAPI: accuracy against portability.

The paper's motivation (Section 2): RAPL "is architecture dependent and
is limited to few architectures", while the counter-based approach works
"on all recent architectures without important hardware investments".

This example shows both halves of that claim on the simulator:

* on the Intel i3-2120 both approaches track the meter (RAPL better —
  it reads the package energy directly),
* on an AMD-flagged part RAPL simply does not exist, while the
  counter-based pipeline retrains and keeps working.

Run:  python examples/rapl_vs_powerapi.py
"""

import dataclasses

from repro.baselines import (RaplEstimator, calibrate_rest_of_system,
                             run_windows, score_model)
from repro.core import (InMemoryReporter, PowerAPI, SamplingCampaign,
                        learn_power_model)
from repro.errors import PowerMeterError
from repro.os import SimKernel
from repro.powermeter import PowerSpy
from repro.simcpu import intel_i3_2120
from repro.workloads import CpuStress, MemoryStress, SpecJbbWorkload


def learn(spec):
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=spec.num_threads),
                   MemoryStress(utilization=1.0, threads=spec.num_threads,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    return learn_power_model(spec, campaign=campaign,
                             idle_duration_s=10.0).model


def run_on_intel() -> None:
    spec = intel_i3_2120()
    print("== Intel i3-2120: both approaches available ==")
    model = learn(spec)
    rest_w = calibrate_rest_of_system(spec, duration_s=10.0)

    kernel = SimKernel(spec)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=11)
    meter.connect()
    rapl = RaplEstimator(kernel.machine, rest_of_system_w=rest_w)
    pid = kernel.spawn(SpecJbbWorkload(duration_s=120.0, threads=4))
    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())

    rapl_estimates = []
    for _second in range(60):
        api.run(1.0)
        rapl_estimates.append(rapl.estimate_w())

    measured = [sample.power_w for sample in meter.samples[:60]]
    powerapi_estimates = handle.reporter.total_series()[:60]
    from repro.core.metrics import median_ape
    n = min(len(measured), len(powerapi_estimates), len(rapl_estimates))
    print(f"PowerSpy mean:      {sum(measured[:n]) / n:6.2f} W")
    print(f"RAPL median error:  "
          f"{median_ape(measured[:n], rapl_estimates[:n]) * 100:5.2f}% "
          "(reads the package directly, Intel-only)")
    print(f"PowerAPI med error: "
          f"{median_ape(measured[:n], powerapi_estimates[:n]) * 100:5.2f}% "
          "(works anywhere the generic counters exist)")
    api.shutdown()


def run_on_amd() -> None:
    print("\n== AMD-flagged part: RAPL is unavailable, PowerAPI retrains ==")
    spec = dataclasses.replace(intel_i3_2120(), vendor="AMD",
                               model="Phenom X4")
    kernel = SimKernel(spec)
    try:
        RaplEstimator(kernel.machine, rest_of_system_w=30.0)
    except PowerMeterError as error:
        print(f"RAPL: {error}")

    model = learn(spec)
    windows = run_windows(spec, [CpuStress(utilization=1.0, threads=2,
                                           duration_s=100.0)],
                          frequency_hz=spec.max_frequency_hz,
                          duration_s=20.0, window_s=1.0)
    error = score_model(model, windows)["median_ape"]
    print(f"PowerAPI on the AMD part: median error {error * 100:.2f}% — "
          "the counter-based approach carried over")


def main() -> None:
    run_on_intel()
    run_on_amd()


if __name__ == "__main__":
    main()

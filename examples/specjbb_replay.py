#!/usr/bin/env python3
"""Replay the paper's preliminary experiment (Figure 3) at reduced scale.

Runs the synthetic SPECjbb2013 on the simulated i3-2120 while a PowerSpy
measures wall power and PowerAPI estimates it live from the generic
counters, then overlays both traces and reports the median error the
paper headlines (15 %).

Run:  python examples/specjbb_replay.py [duration_seconds]
"""

import sys

from repro.analysis import PowerTrace, ascii_chart, compare, format_metrics
from repro.core import (InMemoryReporter, PowerAPI, SamplingCampaign,
                        learn_power_model)
from repro.os import SimKernel
from repro.powermeter import PowerSpy
from repro.simcpu import intel_i3_2120
from repro.workloads import CpuStress, MemoryStress, SpecJbbWorkload


def learn(spec):
    """The paper's quick full-load sampling methodology."""
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=2 * 1024 ** 2)],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    return learn_power_model(spec, campaign=campaign,
                             idle_duration_s=15.0).model


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    spec = intel_i3_2120()
    print("learning the i3-2120 energy profile over the full DVFS ladder "
          "(~30 s) ...")
    model = learn(spec)

    print(f"replaying SPECjbb2013 for {duration_s:.0f} simulated seconds ...")
    kernel = SimKernel(spec)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=777)
    meter.connect()
    pid = kernel.spawn(SpecJbbWorkload(duration_s=duration_s, threads=4),
                       name="specjbb2013")
    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(duration_s)

    measured = PowerTrace.from_samples("powerspy", meter.samples)
    estimated = PowerTrace.from_series("powerapi",
                                       handle.reporter.time_series(),
                                       handle.reporter.total_series())
    print(ascii_chart([measured, estimated], width=78, height=16,
                      title="SPECjbb2013 on i3-2120: measured vs estimated"))
    summary = compare(measured, estimated)
    print(format_metrics(summary))
    print(f"paper: 15% median error; this replay: "
          f"{summary['median_ape'] * 100:.1f}%")
    api.shutdown()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Container-level power monitoring (the powerapi-ng deployment shape).

Processes are grouped into cgroups (containers); the PowerAPI pipeline
estimates per-process power and a cgroup aggregator re-keys it per
container, with a Prometheus-style exposition of the latest state.  A
model registry keeps the learned model cached on disk, so only the first
run on a machine pays the Figure 1 sampling cost.

Run:  python examples/container_monitoring.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_grid
from repro.core import (CgroupAggregator, InMemoryCgroupReporter,
                        InMemoryReporter, ModelRegistry, PowerAPI,
                        PrometheusReporter, SamplingCampaign,
                        learn_power_model)
from repro.os import CgroupTree, SimKernel
from repro.simcpu import intel_i3_2120
from repro.workloads import CpuStress, MemoryStress

DURATION_S = 15.0


def quick_learner(spec):
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    return learn_power_model(spec, campaign=campaign,
                             idle_duration_s=10.0).model


def main() -> None:
    spec = intel_i3_2120()
    registry_dir = Path(tempfile.gettempdir()) / "repro-models"
    registry = ModelRegistry(registry_dir)
    cached = registry.load(spec) is not None
    model = registry.load_or_learn(spec, learner=quick_learner)
    print(f"model {'loaded from' if cached else 'learned and stored in'} "
          f"{registry_dir}")

    kernel = SimKernel(spec)
    tree = CgroupTree()
    containers = {
        "web": [kernel.spawn(CpuStress(utilization=0.8, duration_s=100.0),
                             name="nginx"),
                kernel.spawn(MemoryStress(utilization=0.5,
                                          duration_s=100.0,
                                          working_set_bytes=32 * 1024 ** 2),
                             name="redis")],
        "batch": [kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0),
                               name="etl-job")],
        "system": [kernel.spawn(CpuStress(utilization=0.05,
                                          duration_s=100.0),
                                name="journald")],
    }
    all_pids = []
    for group, pids in containers.items():
        for pid in pids:
            tree.attach(pid, group)
            all_pids.append(pid)

    api = PowerAPI(kernel, model, period_s=1.0)
    api.monitor(*all_pids).every(1.0).to(InMemoryReporter())
    aggregator = CgroupAggregator(tree, idle_w=model.idle_w)
    cgroup_reporter = InMemoryCgroupReporter()
    prom_path = Path(tempfile.gettempdir()) / "powerapi.prom"
    api.system.spawn(aggregator, name="cgroup-aggregator")
    api.system.spawn(cgroup_reporter, name="cgroup-reporter")
    api.system.spawn(PrometheusReporter(prom_path), name="prometheus")

    print(f"monitoring 3 containers for {DURATION_S:.0f} s ...")
    api.run(DURATION_S)
    api.flush()

    rows = []
    for group in sorted(aggregator.energy_by_group_j,
                        key=lambda g: -aggregator.energy_by_group_j[g]):
        joules = aggregator.energy_by_group_j[group]
        last = cgroup_reporter.reports[-1].by_group.get(group, 0.0)
        rows.append([group, f"{joules:.1f} J", f"{last:.2f} W"])
    print(render_grid(["container", "active energy", "latest power"], rows,
                      title="Per-container power attribution"))

    print(f"\nPrometheus exposition written to {prom_path}:")
    for line in prom_path.read_text().splitlines():
        if not line.startswith("#"):
            print(f"  {line}")
    api.shutdown()


if __name__ == "__main__":
    main()

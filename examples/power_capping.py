#!/usr/bin/env python3
"""Adaptive power capping under a sporadic (solar-like) energy budget.

The paper's motivation: renewable energy "is introducing the need for
the development of adaptive strategies that can cope with the sporadic
nature of these energy feeds".  Here the PowerAPI *estimates* (no meter
in the loop) drive a DVFS controller that keeps the machine under a
sinusoidal power budget, trading throughput for compliance.

Run:  python examples/power_capping.py
"""

from repro.analysis import PowerTrace, ascii_chart
from repro.core import (SamplingCampaign, learn_power_model, run_capped,
                        solar_budget)
from repro.simcpu import intel_i3_2120
from repro.workloads import CpuStress, MemoryStress

DURATION_S = 60.0


def main() -> None:
    spec = intel_i3_2120()
    print("learning a power model (~10 s) ...")
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        window_s=1.0, windows_per_run=3, settle_s=0.5)
    model = learn_power_model(spec, campaign=campaign,
                              idle_duration_s=10.0).model

    budget = solar_budget(peak_w=58.0, floor_w=38.0, period_s=30.0)
    workloads = [CpuStress(utilization=1.0, threads=4, duration_s=1000.0)]

    print(f"running {DURATION_S:.0f} s capped by the solar budget ...")
    capped = run_capped(spec, model, workloads, budget,
                        duration_s=DURATION_S, period_s=0.5)
    print("running the same load uncapped for comparison ...")
    uncapped = run_capped(spec, model, workloads, budget=1000.0,
                          duration_s=DURATION_S, period_s=0.5)

    times = [0.5 * (i + 1) for i in range(len(capped.estimated_w))]
    estimate_trace = PowerTrace.from_series("estimated", times,
                                            capped.estimated_w)
    budget_trace = PowerTrace.from_series("budget", times, capped.budget_w)
    print(ascii_chart([budget_trace, estimate_trace], width=78, height=14,
                      title="Estimated power tracking the solar budget"))

    print(f"budget overshoot:   "
          f"{capped.overshoot_fraction(tolerance_w=2.0) * 100:.1f}% "
          "of periods (controller lag)")
    print(f"energy consumed:    capped {capped.true_energy_j:.0f} J vs "
          f"uncapped {uncapped.true_energy_j:.0f} J "
          f"({(1 - capped.true_energy_j / uncapped.true_energy_j) * 100:.0f}%"
          " saved)")
    print(f"work accomplished:  capped {capped.instructions / 1e9:.1f} G "
          f"vs uncapped {uncapped.instructions / 1e9:.1f} G instructions")
    ladder = sorted(set(capped.frequency_trace_hz))
    print(f"P-states visited:   "
          f"{', '.join(f'{f / 1e9:.1f} GHz' for f in ladder)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Automatic counter selection — the paper's stated future work.

The paper's conclusion: "only consider the generic counters is not ...
the most reliable solution ... we plan to improve our learning algorithm
by using the Spearman rank correlation for finding automatically the
most correlated ones with the power consumption."

This example runs that proposal: it samples every portable event, ranks
them by Spearman correlation against the PowerSpy, selects a diverse
top-3 and compares the resulting model against the fixed generic trio on
held-out workloads.

Run:  python examples/counter_selection.py
"""

from repro.analysis import render_grid
from repro.baselines import run_windows, score_model
from repro.core import (SamplingCampaign, calibrate_idle_power,
                        rank_counters, select_counters)
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.regression import fit
from repro.perf import portable_events
from repro.simcpu import GENERIC_TRIO, intel_i3_2120
from repro.workloads import (CpuStress, MemoryStress, MixedStress,
                             RandomWorkload)


def main() -> None:
    spec = intel_i3_2120()
    frequency = spec.max_frequency_hz
    print("sampling every portable event over a varied stress grid ...")
    campaign = SamplingCampaign(
        spec, events=portable_events(),
        workloads=[CpuStress(utilization=u, threads=t)
                   for u in (0.25, 0.5, 1.0) for t in (1, 4)]
        + [MemoryStress(utilization=u, threads=4, working_set_bytes=ws)
           for u in (0.5, 1.0) for ws in (2 * 1024 ** 2, 64 * 1024 ** 2)]
        + [MixedStress(utilization=u, threads=2) for u in (0.5, 1.0)],
        frequencies_hz=[frequency],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    dataset = campaign.run()

    ranking = rank_counters(dataset, method="spearman")
    print(render_grid(
        ["portable event", "|spearman| vs power"],
        [[event, f"{score:.3f}"] for event, score in ranking.ranked],
        title="Spearman ranking (availability-filtered, as in the paper)"))

    selected = select_counters(dataset, k=3, method="spearman")
    print(f"\nselected counters: {', '.join(selected)}")
    print(f"fixed generic trio: {', '.join(GENERIC_TRIO)}")

    idle_w = calibrate_idle_power(spec, duration_s=10.0)

    def build_model(events):
        features, targets = dataset.feature_matrix(frequency)
        active = [max(0.0, power - idle_w) for power in targets]
        result = fit(features, active, list(events), method="nnls",
                     fit_intercept=False)
        return PowerModel(idle_w, [FrequencyFormula(
            frequency, dict(result.coefficients))])

    print("\nscoring both counter sets on held-out random workloads ...")
    holdout = run_windows(
        spec, [RandomWorkload(duration_s=120.0, seed=5, threads=2),
               RandomWorkload(duration_s=120.0, seed=6, threads=2)],
        frequency_hz=frequency, events=portable_events(),
        duration_s=120.0, window_s=1.0)
    for name, events in [("fixed trio", GENERIC_TRIO),
                         ("spearman-selected", selected)]:
        error = score_model(build_model(events), holdout)["median_ape"]
        print(f"{name:18s} median APE {error * 100:5.2f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: learn a power model, then monitor a process live.

This walks the two halves of the paper in ~a minute of wall time:

1. *Figure 1* — learn the CPU energy profile of the (simulated) Intel
   i3-2120 by stressing it at two frequencies and regressing HPC rates
   against the PowerSpy,
2. *Figure 2* — assemble the PowerAPI actor pipeline and watch the
   per-process power estimates stream out.

Run:  python examples/quickstart.py
"""

from repro.core import (InMemoryReporter, PowerAPI, SamplingCampaign,
                        learn_power_model)
from repro.os import SimKernel
from repro.simcpu import intel_i3_2120
from repro.units import format_power
from repro.workloads import CpuStress, MemoryStress


def main() -> None:
    spec = intel_i3_2120()
    print("== Step 1: learn the energy profile (Figure 1) ==")
    # A reduced campaign: the full ladder takes ~30 s; two frequencies
    # already show the shape.  Drop `frequencies_hz` for the full ladder.
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=2 * 1024 ** 2)],
        frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    report = learn_power_model(spec, campaign=campaign, idle_duration_s=10.0)
    model = report.model
    print(f"sampled {len(report.dataset)} points; "
          f"idle power {format_power(model.idle_w)}")
    print(model.equation_text())

    print("\n== Step 2: monitor processes live (Figure 2) ==")
    kernel = SimKernel(spec)
    heavy = kernel.spawn(CpuStress(utilization=1.0, threads=2,
                                   duration_s=60.0), name="heavy")
    light = kernel.spawn(CpuStress(utilization=0.25, duration_s=60.0),
                         name="light")

    api = PowerAPI(kernel, model, period_s=1.0)
    reporter = InMemoryReporter()
    handle = api.monitor(heavy, light).every(1.0).to(reporter)
    api.run(duration_s=10.0)
    api.flush()

    print(f"{'time':>6}  {'machine':>8}  {'heavy':>7}  {'light':>7}")
    for aggregated in reporter.aggregated:
        print(f"{aggregated.time_s:5.0f}s  "
              f"{aggregated.total_w:7.2f}W  "
              f"{aggregated.by_pid.get(heavy, 0.0):6.2f}W  "
              f"{aggregated.by_pid.get(light, 0.0):6.2f}W")

    energy = handle.pid_aggregator.energy_by_pid_j
    print(f"\nactive energy over the run: heavy {energy[heavy]:.1f} J, "
          f"light {energy[light]:.1f} J")
    api.shutdown()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The powerapi-ng workflow: record counters once, estimate offline.

Acquisition and estimation are decoupled: a lightweight recorder logs
per-period counter deltas on the "production" machine, and the power
model is applied later (or elsewhere) to the log — including through the
simulated PowerSpy wire protocol, frames, checksums and all.

Run:  python examples/offline_replay.py
"""

from repro.analysis import PowerTrace, ascii_chart, compare
from repro.core import (CounterLogWriter, SamplingCampaign,
                        estimate_from_log, learn_power_model)
from repro.os import SimKernel
from repro.perf.parsing import parse_counter_log
from repro.powermeter import FrameDecoder, PowerSpy, PowerSpyLink
from repro.simcpu import GENERIC_TRIO, intel_i3_2120
from repro.workloads import CpuStress, MemoryStress, SpecJbbWorkload

RECORD_S = 120.0


def main() -> None:
    spec = intel_i3_2120()
    print("learning a power model (~10 s) ...")
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    model = learn_power_model(spec, campaign=campaign,
                              idle_duration_s=10.0).model

    print(f"recording {RECORD_S:.0f} s of SPECjbb counters + meter frames ...")
    kernel = SimKernel(spec)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=42)
    meter.connect()
    writer = CounterLogWriter(kernel.machine, events=GENERIC_TRIO)
    kernel.spawn(SpecJbbWorkload(duration_s=RECORD_S, threads=4))
    for _second in range(int(RECORD_S)):
        kernel.run(1.0)
        writer.sample()
    writer.close()
    counter_log = writer.text()

    # Ship the meter samples over the (lossy) bluetooth protocol.
    link = PowerSpyLink(corruption_rate=0.02, seed=9)
    wire_bytes = link.transmit(meter.samples)
    decoder = FrameDecoder()
    received = decoder.feed(wire_bytes)
    print(f"meter link: {decoder.frames_decoded} frames ok, "
          f"{decoder.frames_dropped} corrupted/dropped")

    print("replaying the counter log through the model (offline) ...")
    rows = parse_counter_log(counter_log)
    estimated = estimate_from_log(model, rows,
                                  frequency_hz=spec.max_frequency_hz)
    measured = PowerTrace.from_samples("powerspy", received)

    print(ascii_chart([measured.smoothed(5), estimated.smoothed(5)],
                      width=78, height=14,
                      title="Offline replay vs transmitted meter frames "
                            "(5-sample smoothing)"))
    summary = compare(measured, estimated)
    print(f"offline median error: {summary['median_ape'] * 100:.1f}% "
          f"over {summary['aligned']} aligned samples")
    meter.disconnect()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""One pipeline, two assembly roads: fluent DSL vs config file.

The fluent ``api.monitor(pid).every(1.0).to(...)`` DSL and a
``PipelineSpec`` loaded from TOML/JSON both drive the same
``PipelineBuilder``, so they produce the *same pipeline* — same actor
names, same spawn order, byte-identical reporter output.  This example
builds both on identically-seeded kernels and proves it, then shows a
spec round-tripping through TOML and what validation errors look like.

Run:  python examples/pipeline_from_config.py
"""

import tempfile
from pathlib import Path

from repro.core import (CsvReporter, PipelineSpec, PowerAPI, StageSpec,
                        default_registry, learn_power_model)
from repro.core.sampling import SamplingCampaign
from repro.errors import ConfigurationError
from repro.os import SimKernel
from repro.simcpu import intel_i3_2120
from repro.workloads import CpuStress, MemoryStress


def quick_model(spec):
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=1.0, windows_per_run=2, settle_s=0.5)
    return learn_power_model(spec, campaign=campaign,
                             idle_duration_s=5.0).model


def run_fluent(spec, model, csv_path: Path) -> int:
    kernel = SimKernel(spec)
    pid = kernel.spawn(CpuStress(duration_s=15.0), name="stress")
    api = PowerAPI(kernel, model)
    api.monitor(pid).every(1.0).to(CsvReporter(csv_path, pids=[pid]))
    api.run(10.0)
    api.shutdown()
    return pid


def run_from_config(spec, model, config_path: Path) -> None:
    kernel = SimKernel(spec)
    kernel.spawn(CpuStress(duration_s=15.0), name="stress")
    api = PowerAPI(kernel, model)
    api.start_pipeline(PipelineSpec.from_file(config_path))
    api.run(10.0)
    api.shutdown()


def main() -> None:
    spec = intel_i3_2120()
    model = quick_model(spec)
    workdir = Path(tempfile.mkdtemp(prefix="pipeline-config-"))

    print("== Road 1: the fluent DSL ==")
    fluent_csv = workdir / "fluent.csv"
    pid = run_fluent(spec, model, fluent_csv)
    print(f"monitored pid {pid} -> {fluent_csv}")

    print("\n== Road 2: the same pipeline as a TOML config ==")
    config_csv = workdir / "config.csv"
    pipeline_spec = PipelineSpec(pids=(pid,), period_s=1.0).with_reporter(
        "csv", path=str(config_csv))
    config_path = workdir / "pipeline.toml"
    config_path.write_text(pipeline_spec.to_toml())
    print(config_path.read_text())
    run_from_config(spec, model, config_path)

    identical = fluent_csv.read_bytes() == config_csv.read_bytes()
    print(f"reporter outputs byte-identical: {identical}")
    assert identical

    print("== Round trip: TOML -> spec -> TOML is lossless ==")
    reloaded = PipelineSpec.from_toml(pipeline_spec.to_toml())
    print(f"spec survives the round trip: {reloaded == pipeline_spec}")

    print("\n== Validation: unknown components fail with the catalogue ==")
    bad = PipelineSpec(pids=(pid,), sensor=StageSpec("rapl"),
                       reporters=(StageSpec("memory"),))
    try:
        bad.validate()
    except ConfigurationError as error:
        print(f"rejected: {error}")

    print("\n== The component catalogue ==")
    for kind, name, params, description in default_registry().describe():
        params_text = f" ({params})" if params else ""
        print(f"  {kind:<10} {name:<12}{params_text:<28} {description}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Energy-aware scheduling: the optimisation the paper motivates.

Section 1 of the paper argues fine-grained power estimation "is
particularly useful ... for identifying the largest power consumers and
make informed decisions during the scheduling".  This example makes that
decision: it runs the same partial load under four (scheduler, governor)
policies and compares energy, using the PowerAPI estimates — not the
hidden ground truth — to pick the winner, then verifies the pick against
the meter.

Run:  python examples/scheduler_energy.py
"""

from repro.analysis import render_grid
from repro.core import (InMemoryReporter, PowerAPI, SamplingCampaign,
                        learn_power_model)
from repro.os import (PackScheduler, PerformanceGovernor, PowersaveGovernor,
                      SimKernel, SpreadScheduler)
from repro.powermeter import PowerSpy
from repro.simcpu import intel_i3_2120
from repro.workloads import CpuStress

DURATION_S = 20.0

POLICIES = {
    "spread + performance": (SpreadScheduler, PerformanceGovernor),
    "spread + powersave": (SpreadScheduler, PowersaveGovernor),
    "pack + performance": (PackScheduler, PerformanceGovernor),
    "pack + powersave": (PackScheduler, PowersaveGovernor),
}


def run_policy(spec, model, scheduler_factory, governor_factory):
    """Returns (estimated energy J, measured energy J, instructions)."""
    kernel = SimKernel(spec, scheduler_factory=scheduler_factory,
                       governor_factory=governor_factory)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=31)
    meter.connect()
    pids = [kernel.spawn(CpuStress(utilization=1.0, duration_s=1000.0),
                         name=f"worker{i}") for i in range(2)]
    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(*pids).every(1.0).to(InMemoryReporter())
    api.run(DURATION_S)
    estimated_j = sum(report.total_w * report.period_s
                      for report in handle.reporter.aggregated)
    measured_j = kernel.machine.energy_j
    instructions = kernel.machine.counters.read("instructions")
    api.shutdown()
    return estimated_j, measured_j, instructions


def main() -> None:
    spec = intel_i3_2120()
    print("learning the energy profile once (~30 s) ...")
    campaign = SamplingCampaign(
        spec, frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=1.0, windows_per_run=3, settle_s=0.5)
    model = learn_power_model(spec, campaign=campaign,
                              idle_duration_s=10.0).model

    rows = []
    results = {}
    for name, (scheduler_factory, governor_factory) in POLICIES.items():
        estimated_j, measured_j, instructions = run_policy(
            spec, model, scheduler_factory, governor_factory)
        results[name] = (estimated_j, measured_j, instructions)
        rows.append([name, f"{estimated_j:.0f} J", f"{measured_j:.0f} J",
                     f"{instructions / 1e9:.1f} G",
                     f"{measured_j / (instructions / 1e9):.1f} J/Ginstr"])

    print(render_grid(
        ["policy", "estimated", "measured", "work done", "energy/work"],
        rows,
        title=f"Two CPU-bound workers for {DURATION_S:.0f} s under four "
              "policies"))

    best_estimated = min(results, key=lambda k: results[k][0])
    best_measured = min(results, key=lambda k: results[k][1])
    print(f"\nPowerAPI picks:      {best_estimated}")
    print(f"ground truth picks:  {best_measured}")
    print("informed scheduling decision "
          + ("CONFIRMED by the meter" if best_estimated == best_measured
             else "differs from the meter — inspect the model"))


if __name__ == "__main__":
    main()

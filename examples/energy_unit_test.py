#!/usr/bin/env python3
"""Energy unit testing and code-level profiling (paper reference [7]).

The group's companion work (Noureddine et al., "Unit Testing of Energy
Consumption of Software Libraries") proposes treating energy like any
other regression-tested property.  This example:

1. profiles a multi-phase "request handler" workload per code region,
2. sets an energy budget from the v1 baseline,
3. shows the budget catching a v2 "performance refactor" that silently
   doubles the energy per request.

Run:  python examples/energy_unit_test.py
"""

from repro.analysis import render_grid
from repro.core import (EnergyBudget, EnergyBudgetExceeded, SamplingCampaign,
                        learn_power_model, measure_energy,
                        assert_energy_within)
from repro.os.process import Demand
from repro.simcpu import intel_i3_2120
from repro.workloads import (CpuStress, MemoryStress, Phase, PhasedWorkload,
                             cpu_demand, memory_demand)


def service_v1():
    """A request handler: parse -> query -> render, then idle."""
    return PhasedWorkload([
        Phase(2.0, cpu_demand(utilization=0.8), region="parse_request"),
        Phase(3.0, memory_demand(utilization=0.9,
                                 working_set_bytes=32 * 1024 ** 2),
              region="query_database"),
        Phase(2.0, cpu_demand(utilization=0.6), region="render_response"),
        Phase(1.0, Demand(utilization=0.05), region="idle_keepalive"),
    ], name="service-v1")


def service_v2_regressed():
    """The 'optimised' v2: the query path now thrashes a bigger cache."""
    return PhasedWorkload([
        Phase(2.0, cpu_demand(utilization=0.8), region="parse_request"),
        Phase(6.0, memory_demand(utilization=1.0,
                                 working_set_bytes=128 * 1024 ** 2,
                                 locality=0.6),
              region="query_database"),
        Phase(2.0, cpu_demand(utilization=0.6), region="render_response"),
        Phase(1.0, Demand(utilization=0.05), region="idle_keepalive"),
    ], name="service-v2")


def main() -> None:
    spec = intel_i3_2120()
    print("learning a power model (~10 s) ...")
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    model = learn_power_model(spec, campaign=campaign,
                              idle_duration_s=10.0).model

    print("\n== code-level energy profile of service v1 ==")
    baseline = measure_energy(service_v1(), spec, model, period_s=0.25)
    rows = [[region, f"{joules:.2f} J",
             f"{joules / baseline.active_energy_j * 100:.0f}%"]
            for region, joules in sorted(baseline.by_region_j.items(),
                                         key=lambda item: -item[1])]
    print(render_grid(["code region", "active energy", "share"], rows))
    print(f"total: {baseline.active_energy_j:.2f} J over "
          f"{baseline.duration_s:.1f} s")

    budget = EnergyBudget(
        max_active_energy_j=baseline.active_energy_j * 1.3)
    print(f"\nenergy budget set at {budget.max_active_energy_j:.2f} J "
          "(baseline + 30%)")

    print("\n== running the energy unit tests ==")
    assert_energy_within(service_v1(), budget, spec, model=model,
                         period_s=0.25)
    print("service-v1: PASS (within budget)")
    try:
        assert_energy_within(service_v2_regressed(), budget, spec,
                             model=model, period_s=0.25)
        print("service-v2: PASS")
    except EnergyBudgetExceeded as failure:
        print(f"service-v2: FAIL — {failure}")
        v2 = measure_energy(service_v2_regressed(), spec, model,
                            period_s=0.25)
        worst = max(v2.by_region_j, key=v2.by_region_j.get)
        print(f"energy hotspot: {worst} "
              f"({v2.by_region_j[worst]:.2f} J vs "
              f"{baseline.by_region_j.get(worst, 0.0):.2f} J in v1)")


if __name__ == "__main__":
    main()

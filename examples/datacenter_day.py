#!/usr/bin/env python3
"""A (compressed) day in the life of a monitored server.

Ties the toolkit together on a realistic long-horizon scenario: a
diurnal web server plus a nightly batch job run for two compressed
"days" under live PowerAPI monitoring, while the sysfs view watches the
package temperature.  Afterwards: the power timeline, the energy
hotspot ranking and the day's consumption bill.

Run:  python examples/datacenter_day.py
"""

from repro.analysis import (PowerTrace, ascii_chart, rank_consumers,
                            render_hotspots)
from repro.core import (InMemoryReporter, PowerAPI, SamplingCampaign,
                        learn_power_model)
from repro.os import SimKernel, SysFs
from repro.simcpu import intel_i3_2120
from repro.workloads import (CpuStress, MemoryStress, Phase,
                             PhasedWorkload, WebServerWorkload, cpu_demand)
from repro.os.process import Demand

DAY_S = 240.0
DAYS = 2


def nightly_batch():
    """Idle all day, a heavy ETL burst each 'night'."""
    phases = []
    for _day in range(DAYS):
        phases.append(Phase(DAY_S * 0.75, Demand(utilization=0.0),
                            region="sleep"))
        phases.append(Phase(DAY_S * 0.25,
                            cpu_demand(utilization=1.0, threads=2),
                            region="etl"))
    return PhasedWorkload(phases, name="nightly-batch")


def main() -> None:
    spec = intel_i3_2120()
    print("learning a power model (~15 s) ...")
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=60.0)
    model = learn_power_model(spec, campaign=campaign,
                              idle_duration_s=10.0).model

    kernel = SimKernel(spec, quantum_s=0.05)
    sysfs = SysFs(kernel.machine)
    web = kernel.spawn(WebServerWorkload(
        duration_s=DAY_S * DAYS, day_length_s=DAY_S, threads=2, seed=11),
        name="webserver")
    batch = kernel.spawn(nightly_batch(), name="nightly-batch")

    api = PowerAPI(kernel, model, period_s=2.0)
    handle = api.monitor(web, batch).every(2.0).to(InMemoryReporter())
    print(f"simulating {DAYS} compressed days "
          f"({DAY_S * DAYS:.0f} s) of operation ...")
    temps = []
    for _slot in range(int(DAY_S * DAYS / 10)):
        api.run(10.0)
        temps.append(int(sysfs.read("thermal/thermal_zone0/temp")) / 1000)
    api.flush()

    trace = PowerTrace.from_series("estimated total",
                                   handle.reporter.time_series(),
                                   handle.reporter.total_series())
    print(ascii_chart([trace.smoothed(5)], width=78, height=12,
                      title="Estimated machine power over two days"))
    print(f"package temperature: min {min(temps):.1f} C, "
          f"max {max(temps):.1f} C (sysfs thermal zone)")

    print("\n== energy hotspots over the period ==")
    hotspots = rank_consumers(handle.reporter.aggregated)
    print(render_hotspots(hotspots, names={web: "webserver",
                                           batch: "nightly-batch"}))

    total_j = sum(report.total_w * report.period_s
                  for report in handle.reporter.aggregated)
    print(f"\nestimated consumption for the period: {total_j / 1000:.2f} kJ "
          f"({total_j / 3.6e6 * 1000:.2f} Wh)")
    api.shutdown()


if __name__ == "__main__":
    main()

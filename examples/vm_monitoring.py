#!/usr/bin/env python3
"""Per-VM and per-guest power estimation.

The paper's conclusion picks virtual machines as the next optimisation
target.  This example runs two VMs (a busy web VM and a mostly idle
batch VM) on the simulated host, estimates each VM's power with the
standard PowerAPI pipeline, and splits the busy VM's power across its
guests using the hypervisor-side accounting split.

Run:  python examples/vm_monitoring.py
"""

from repro.analysis import rank_consumers, render_hotspots
from repro.core import (InMemoryReporter, PowerAPI, SamplingCampaign,
                        learn_power_model)
from repro.os import SimKernel
from repro.os.virt import VirtualMachine, split_vm_power
from repro.simcpu import intel_i3_2120
from repro.workloads import ConstantWorkload, CpuStress, MemoryStress
from repro.workloads.base import cpu_demand, memory_demand

DURATION_S = 20.0


def main() -> None:
    spec = intel_i3_2120()
    print("learning a power model (~10 s) ...")
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2)],
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)
    model = learn_power_model(spec, campaign=campaign,
                              idle_duration_s=10.0).model

    web_vm = VirtualMachine("web-vm", vcpus=2, guests=[
        ConstantWorkload(cpu_demand(utilization=0.9), name="nginx"),
        ConstantWorkload(memory_demand(utilization=0.7,
                                       working_set_bytes=48 * 1024 ** 2),
                         name="redis"),
        ConstantWorkload(cpu_demand(utilization=0.2), name="cron"),
    ])
    batch_vm = VirtualMachine("batch-vm", vcpus=1, guests=[
        ConstantWorkload(cpu_demand(utilization=0.15), name="nightly-job"),
    ])

    kernel = SimKernel(spec)
    web_pid = kernel.spawn(web_vm, name=web_vm.name)
    batch_pid = kernel.spawn(batch_vm, name=batch_vm.name)

    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(web_pid, batch_pid).every(1.0).to(InMemoryReporter())
    print(f"monitoring both VMs for {DURATION_S:.0f} s ...")
    api.run(DURATION_S)

    print("\n== per-VM ranking (hypervisor view) ==")
    hotspots = rank_consumers(handle.reporter.aggregated)
    print(render_hotspots(hotspots, names={web_pid: "web-vm",
                                           batch_pid: "batch-vm"}))

    web_power = handle.reporter.pid_series(web_pid)[-1]
    print(f"\n== splitting web-vm's {web_power:.2f} W across its guests ==")
    for guest, watts in sorted(split_vm_power(web_vm, web_power).items(),
                               key=lambda item: -item[1]):
        print(f"  {guest:<12} {watts:5.2f} W")
    print("\n(the split uses vCPU accounting — the hypervisor cannot read "
          "guest HPCs,\n which is exactly the precision gap the paper's "
          "VM future work targets)")
    api.shutdown()


if __name__ == "__main__":
    main()

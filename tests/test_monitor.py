"""Unit tests for the PowerAPI facade (repro.core.monitor)."""

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.errors import ConfigurationError
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz
from repro.workloads.stress import CpuStress
from repro.workloads.idle import IdleWorkload


@pytest.fixture
def model():
    # A simple but sane model for pipeline tests.
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in intel_i3_2120().frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas, name="unit-model")


@pytest.fixture
def kernel():
    return SimKernel(intel_i3_2120(), quantum_s=0.02)


class TestBuilder:
    def test_requires_pids(self, kernel, model):
        api = PowerAPI(kernel, model)
        with pytest.raises(ConfigurationError):
            api.monitor()

    def test_rejects_bad_period(self, kernel, model):
        api = PowerAPI(kernel, model)
        with pytest.raises(ConfigurationError):
            api.monitor(1).every(0.0)

    def test_rejects_unknown_formula(self, kernel, model):
        api = PowerAPI(kernel, model)
        with pytest.raises(ConfigurationError):
            api.monitor(1).with_formula("neural")

    def test_rejects_empty_events(self, kernel, model):
        api = PowerAPI(kernel, model)
        with pytest.raises(ConfigurationError):
            api.monitor(1).with_events([])


class TestMonitoring:
    def test_reports_once_per_period(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.run(3.0)
        api.flush()
        # 6 periods (the last may need the flush).
        assert len(handle.reporter.aggregated) == 6

    def test_estimates_above_idle_under_load(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=10.0, threads=4))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(3.0)
        assert all(total > model.idle_w + 1
                   for total in handle.reporter.total_series())

    def test_idle_process_estimates_near_idle(self, kernel, model):
        pid = kernel.spawn(IdleWorkload())
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(3.0)
        for total in handle.reporter.total_series():
            assert total == pytest.approx(model.idle_w, abs=0.5)

    def test_multiple_pids_attributed_separately(self, kernel, model):
        heavy = kernel.spawn(CpuStress(duration_s=10.0), name="heavy")
        light = kernel.spawn(CpuStress(utilization=0.2, duration_s=10.0),
                             name="light")
        api = PowerAPI(kernel, model)
        handle = api.monitor(heavy, light).every(1.0).to(InMemoryReporter())
        api.run(4.0)
        heavy_mean = sum(handle.reporter.pid_series(heavy)) / 4
        light_mean = sum(handle.reporter.pid_series(light)) / 4
        assert heavy_mean > 3 * light_mean > 0

    def test_pid_aggregator_accumulates_energy(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(3.0)
        assert handle.pid_aggregator.energy_by_pid_j[pid] > 0

    def test_cpu_load_formula_pipeline(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        handle = (api.monitor(pid).every(1.0).with_formula("cpu-load")
                  .to(InMemoryReporter()))
        api.run(3.0)
        series = handle.reporter.total_series()
        assert len(series) >= 2
        assert all(total > model.idle_w for total in series)

    def test_run_until_idle_stops(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=0.5))
        api = PowerAPI(kernel, model)
        api.monitor(pid).every(0.25).to(InMemoryReporter())
        api.run_until_idle(max_duration_s=5.0)
        assert kernel.time_s < 1.0

    def test_attach_meter_publishes(self, kernel, model):
        from repro.core.messages import PowerMeterReport
        from repro.actors.actor import Actor

        seen = []

        class Collector(Actor):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PowerMeterReport, self.self_ref)

            def receive(self, message):
                seen.append(message)

        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        api.system.spawn(Collector(), "collector")
        api.attach_meter(PowerSpy(kernel.machine, seed=1), name="meter")
        api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(3.0)
        assert len(seen) >= 2
        assert seen[-1].power_w > 0

    def test_shutdown_cleans_up(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.shutdown()
        assert api.system.actor_names() == ()

    def test_handle_stop_halts_reporting(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(2.0)
        count = len(handle.reporter.aggregated)
        handle.stop()
        api.run(2.0)
        assert len(handle.reporter.aggregated) == count

    def test_rejects_negative_run(self, kernel, model):
        api = PowerAPI(kernel, model)
        with pytest.raises(ConfigurationError):
            api.run(-1.0)

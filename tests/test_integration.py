"""Integration tests: whole-pipeline scenarios across packages.

These run real (but reduced-scale) versions of the paper's flows:
learning on a small grid, live monitoring with estimation-vs-meter
comparison, scheduler energy effects and the RAPL comparison.
"""

import pytest

from repro.analysis.traces import PowerTrace, compare
from repro.baselines.evaluation import run_windows, score_model
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.core.selection import rank_counters
from repro.os.governor import OndemandGovernor, PowersaveGovernor
from repro.os.kernel import SimKernel
from repro.os.scheduler import PackScheduler, SpreadScheduler
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.counters import GENERIC_TRIO
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.stress import CpuStress, MemoryStress


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def learned(spec):
    """A model learned on a small paper-style campaign."""
    campaign = SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=64 * 1024 ** 2),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=2 * 1024 ** 2)],
        frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=1.0, windows_per_run=3, settle_s=0.5, quantum_s=0.05)
    return learn_power_model(spec, campaign=campaign, idle_duration_s=8.0)


class TestLearningPipeline:
    def test_idle_constant_close_to_paper(self, learned):
        assert learned.model.idle_w == pytest.approx(31.48, rel=0.02)

    def test_coefficients_same_order_as_published(self, learned, spec):
        formula = learned.model.formula(spec.max_frequency_hz)
        # Published: 2.22e-9, 2.48e-8, 1.87e-7 — ours must land within
        # an order of magnitude on the simulated silicon.
        assert formula.coefficients["instructions"] == pytest.approx(
            2.22e-9, rel=4.0)
        assert formula.coefficients["cache-misses"] == pytest.approx(
            1.87e-7, rel=4.0)

    def test_training_fit_is_good(self, learned):
        for result in learned.regressions.values():
            assert result.r2 > 0.6


class TestMonitoringPipeline:
    def test_specjbb_estimates_follow_measurements(self, spec, learned):
        kernel = SimKernel(spec, quantum_s=0.05)
        meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=101)
        meter.connect()
        pid = kernel.spawn(SpecJbbWorkload(duration_s=120, threads=4),
                           name="specjbb")
        api = PowerAPI(kernel, learned.model, period_s=1.0)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(120)

        measured = PowerTrace.from_samples("powerspy", meter.samples)
        estimated = PowerTrace.from_series(
            "powerapi", handle.reporter.time_series(),
            handle.reporter.total_series())
        summary = compare(measured, estimated)
        # The paper reports a 15 % median error; allow a generous band
        # around that shape for the shortened trace.
        assert summary["median_ape"] < 0.30
        assert summary["aligned"] >= 100

    def test_estimates_track_load_direction(self, spec, learned):
        from repro.os.process import Demand
        from repro.workloads.base import Phase, PhasedWorkload, cpu_demand

        kernel = SimKernel(spec, quantum_s=0.05)
        pid_low = kernel.spawn(CpuStress(utilization=0.3, duration_s=300),
                               name="low")
        # Idle for 5 s, then three fully busy threads for the remainder.
        ramp = PhasedWorkload([
            Phase(5.0, Demand(utilization=0.0)),
            Phase(300.0, cpu_demand(utilization=1.0, threads=3)),
        ], name="ramp")
        pid_ramp = kernel.spawn(ramp, name="ramp")
        api = PowerAPI(kernel, learned.model, period_s=1.0)
        handle = (api.monitor(pid_low, pid_ramp).every(1.0)
                  .to(InMemoryReporter()))
        api.run(10)
        series = handle.reporter.total_series()
        quiet = max(series[:4])
        busy = min(series[6:])
        assert busy > quiet  # machine estimate reflects the new load


class TestSchedulerEnergy:
    def test_pack_scheduler_saves_energy_at_low_load(self, spec):
        def run_with(scheduler_factory):
            kernel = SimKernel(spec, scheduler_factory=scheduler_factory,
                               governor_factory=PowersaveGovernor,
                               quantum_s=0.05)
            for _ in range(2):
                kernel.spawn(CpuStress(utilization=1.0, duration_s=300))
            kernel.run(10.0)
            return kernel.machine.energy_j

        packed = run_with(PackScheduler)
        spread = run_with(SpreadScheduler)
        assert packed < spread

    def test_powersave_cheaper_but_slower_than_performance(self, spec):
        from repro.os.governor import PerformanceGovernor

        def run_with(governor_factory):
            kernel = SimKernel(spec, governor_factory=governor_factory,
                               quantum_s=0.05)
            pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=300))
            kernel.run(10.0)
            instructions = kernel.machine.counters.read("instructions")
            return kernel.machine.energy_j, instructions

        slow_energy, slow_work = run_with(PowersaveGovernor)
        fast_energy, fast_work = run_with(PerformanceGovernor)
        assert slow_energy < fast_energy
        assert slow_work < fast_work


class TestSelectionIntegration:
    def test_trio_ranks_high_on_real_campaign(self, spec):
        campaign = SamplingCampaign(
            spec,
            events=list(GENERIC_TRIO) + ["cycles", "branches"],
            workloads=[CpuStress(utilization=u, threads=4)
                       for u in (0.25, 0.5, 1.0)]
            + [MemoryStress(utilization=1.0, threads=4,
                            working_set_bytes=ws)
               for ws in (2 * 1024 ** 2, 64 * 1024 ** 2)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=3, settle_s=0.25, quantum_s=0.05)
        dataset = campaign.run()
        ranking = rank_counters(dataset, method="spearman")
        top = ranking.top(3)
        # Counters tracking activity must dominate; branches must not win.
        assert "instructions" in top or "cycles" in top

    def test_multiplexed_wide_campaign_still_learns(self, spec):
        # 8 events on 4 PMU slots: multiplexing engaged end-to-end.
        from repro.baselines.bertran import BERTRAN_EVENTS
        campaign = SamplingCampaign(
            spec, events=BERTRAN_EVENTS,
            workloads=[CpuStress(utilization=1.0, threads=4),
                       MemoryStress(utilization=1.0, threads=4),
                       CpuStress(utilization=0.5, threads=2),
                       MemoryStress(utilization=0.5, threads=1)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=1.0, windows_per_run=3, settle_s=0.5, quantum_s=0.05)
        report = learn_power_model(spec, events=BERTRAN_EVENTS,
                                   campaign=campaign, idle_duration_s=5.0)
        assert report.regressions[spec.max_frequency_hz].r2 > 0.5


class TestRaplIntegration:
    def test_rapl_estimator_tracks_specjbb(self, spec):
        from repro.baselines.raplmodel import RaplEstimator
        kernel = SimKernel(spec, quantum_s=0.05)
        estimator = RaplEstimator(kernel.machine, rest_of_system_w=31.0)
        meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=5)
        meter.connect()
        kernel.spawn(SpecJbbWorkload(duration_s=60, threads=4))
        estimates = []
        for _ in range(30):
            kernel.run(1.0)
            estimates.append(estimator.estimate_w())
        measured = [s.power_w for s in meter.samples[:30]]
        from repro.core.metrics import median_ape
        # RAPL sees the package directly: very accurate on Intel.
        assert median_ape(measured, estimates) < 0.05

"""Determinism and long-run stability guards.

The repository's reproducibility claim is load-bearing (EXPERIMENTS.md
numbers must be regenerable bit-for-bit), so it gets its own tests: two
identical runs of every pipeline stage must produce identical outputs,
and long runs must not accumulate unbounded state.
"""

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.core.sampling import SamplingCampaign
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.stress import CpuStress, MemoryStress


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def model(spec):
    return PowerModel(idle_w=31.48, formulas=[
        FrequencyFormula(f, {"instructions": 3e-9, "cache-misses": 2e-7})
        for f in spec.frequencies_hz])


def run_monitoring(spec, model, seconds=10.0):
    kernel = SimKernel(spec, quantum_s=0.05)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=99)
    meter.connect()
    pid = kernel.spawn(SpecJbbWorkload(duration_s=1000.0, threads=4,
                                       seed=5))
    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(seconds)
    series = list(handle.reporter.total_series())
    measured = [sample.power_w for sample in meter.samples]
    api.shutdown()
    return series, measured


class TestDeterminism:
    def test_monitoring_run_bit_identical(self, spec, model):
        first = run_monitoring(spec, model)
        second = run_monitoring(spec, model)
        assert first == second

    def test_sampling_campaign_bit_identical(self, spec):
        def run():
            campaign = SamplingCampaign(
                spec,
                workloads=[CpuStress(utilization=1.0, threads=4),
                           MemoryStress(utilization=0.5, threads=2)],
                frequencies_hz=[spec.max_frequency_hz],
                window_s=0.5, windows_per_run=3, settle_s=0.25,
                quantum_s=0.05)
            return [(point.power_w, tuple(sorted(point.rates.items())))
                    for point in campaign.run().points]

        assert run() == run()

    def test_different_meter_seed_changes_power_only(self, spec):
        def run(seed):
            kernel = SimKernel(spec, quantum_s=0.05)
            meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=seed)
            meter.connect()
            kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
            kernel.run(3.0)
            return ([s.power_w for s in meter.samples],
                    kernel.machine.counters.read("instructions"))

        power_a, work_a = run(1)
        power_b, work_b = run(2)
        assert power_a != power_b      # noise differs
        assert work_a == work_b        # simulation itself identical


class TestLongRunStability:
    def test_actor_mailboxes_drain(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.05)
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=1000.0))
        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.run(30.0)
        # Nothing queues up between driving steps.
        assert api.system.pending_messages() == 0
        api.shutdown()

    def test_counters_monotone_over_long_run(self, spec):
        kernel = SimKernel(spec, quantum_s=0.05)
        kernel.spawn(CpuStress(utilization=0.7, duration_s=1000.0))
        previous = 0.0
        for _chunk in range(20):
            kernel.run(2.0)
            current = kernel.machine.counters.read("instructions")
            assert current >= previous
            previous = current

    def test_thermal_state_bounded(self, spec):
        kernel = SimKernel(spec, quantum_s=0.05)
        kernel.spawn(CpuStress(utilization=1.0, threads=4,
                               duration_s=1000.0))
        kernel.run(120.0)
        # Temperature saturates at the equilibrium, never runs away.
        assert kernel.machine.thermal.temperature_c < 150.0

    def test_meter_sample_count_exact(self, spec):
        kernel = SimKernel(spec, quantum_s=0.05)
        meter = PowerSpy(kernel.machine, sample_rate_hz=2.0, seed=1)
        meter.connect()
        kernel.run(60.0)
        assert len(meter.samples) == 120

"""Unit tests for repro.os.scheduler (placement policies)."""

import pytest

from repro.errors import SchedulerError
from repro.os.process import Demand, SimProcess
from repro.os.scheduler import PackScheduler, PinnedScheduler, SpreadScheduler
from repro.simcpu.spec import intel_i3_2120, intel_xeon_smt
from repro.simcpu.topology import Topology


class _Busy:
    """Program with constant full demand."""

    def demand(self, local_time_s):
        return Demand(utilization=1.0)


def make_process(pid, affinity=None, nice=0):
    process = SimProcess(pid, f"p{pid}", _Busy(), affinity=affinity,
                         nice=nice)
    return process


def polled(processes):
    return [(process, process.poll_demand()) for process in processes]


@pytest.fixture
def topology():
    return Topology(intel_i3_2120())


class TestSpreadScheduler:
    def test_two_tasks_use_different_cores(self, topology):
        scheduler = SpreadScheduler(topology)
        assignments = scheduler.assign(polled([make_process(1),
                                               make_process(2)]))
        cores = {topology.cpu(a.cpu_id).core_id for a in assignments}
        assert len(cores) == 2

    def test_four_tasks_fill_all_threads(self, topology):
        scheduler = SpreadScheduler(topology)
        assignments = scheduler.assign(polled(
            [make_process(i) for i in range(4)]))
        assert sorted(a.cpu_id for a in assignments) == [0, 1, 2, 3]

    def test_partial_demands_share_cpu(self, topology):
        class Light:
            def demand(self, t):
                return Demand(utilization=0.3)
        processes = [SimProcess(i, f"p{i}", Light()) for i in range(2)]
        scheduler = SpreadScheduler(topology)
        assignments = scheduler.assign(polled(processes))
        assert all(a.busy_fraction == pytest.approx(0.3) for a in assignments)

    def test_saturation_starves_excess(self, topology):
        scheduler = SpreadScheduler(topology)
        assignments = scheduler.assign(polled(
            [make_process(i) for i in range(6)]))
        # 4 logical CPUs: only 4 full-demand tasks fit.
        assert len(assignments) == 4

    def test_sleeping_processes_not_scheduled(self, topology):
        class Sleepy:
            def demand(self, t):
                return Demand(utilization=0.0)
        process = SimProcess(1, "sleepy", Sleepy())
        scheduler = SpreadScheduler(topology)
        assignments = scheduler.assign(polled([process]))
        assert assignments == []


class TestPackScheduler:
    def test_two_tasks_share_one_core(self, topology):
        scheduler = PackScheduler(topology)
        assignments = scheduler.assign(polled([make_process(1),
                                               make_process(2)]))
        cores = {topology.cpu(a.cpu_id).core_id for a in assignments}
        assert len(cores) == 1

    def test_third_task_wakes_second_core(self, topology):
        scheduler = PackScheduler(topology)
        assignments = scheduler.assign(polled(
            [make_process(i) for i in range(3)]))
        cores = {topology.cpu(a.cpu_id).core_id for a in assignments}
        assert len(cores) == 2


class TestAffinity:
    def test_affinity_respected(self, topology):
        scheduler = SpreadScheduler(topology)
        process = make_process(1, affinity={3})
        assignments = scheduler.assign(polled([process]))
        assert assignments[0].cpu_id == 3

    def test_empty_affinity_after_filter_raises(self, topology):
        scheduler = SpreadScheduler(topology)
        process = make_process(1, affinity={99})
        with pytest.raises(SchedulerError):
            scheduler.assign(polled([process]))

    def test_pinned_scheduler_prefers_low_ids(self, topology):
        scheduler = PinnedScheduler(topology)
        assignments = scheduler.assign(polled([make_process(1)]))
        assert assignments[0].cpu_id == 0


class TestNiceWeights:
    def test_positive_nice_gets_less_cpu(self, topology):
        scheduler = SpreadScheduler(topology)
        nice_process = make_process(1, nice=10)
        assignments = scheduler.assign(polled([nice_process]))
        assert assignments[0].busy_fraction < 0.2

    def test_negative_nice_capped_at_demand(self, topology):
        scheduler = SpreadScheduler(topology)
        eager = make_process(1, nice=-10)
        assignments = scheduler.assign(polled([eager]))
        assert assignments[0].busy_fraction == pytest.approx(1.0)


class TestMultithreadDemand:
    def test_threads_fan_out(self):
        topology = Topology(intel_xeon_smt())
        scheduler = SpreadScheduler(topology)

        class Wide:
            def demand(self, t):
                return Demand(utilization=1.0, threads=4)
        process = SimProcess(1, "wide", Wide())
        assignments = scheduler.assign(polled([process]))
        assert len(assignments) == 4
        assert len({a.cpu_id for a in assignments}) == 4
        assert all(a.pid == 1 for a in assignments)

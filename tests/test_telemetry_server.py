"""Telemetry server tests: queue overflow policies, fan-out, filters,
handshake strictness and the event-bus bridge.

All socket tests bind ephemeral localhost ports and synchronise with
condition-based waits — no sleeps anywhere.
"""

import socket
import threading

import pytest

from repro.actors.system import ActorSystem
from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import ConfigurationError, WireProtocolError
from repro.telemetry import wire
from repro.telemetry.client import TelemetryClient
from repro.telemetry.server import (BatchPolicy, BoundedFrameQueue,
                                    OverflowPolicy, TelemetryBridge,
                                    TelemetryServer)
from repro.telemetry.wire import (FrameKind, GapTelemetry, Heartbeat,
                                  HealthTelemetry, ReportEvent)

pytestmark = pytest.mark.telemetry


def report(time_s=1.0, by_pid=None, gap=False):
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid={} if gap else (by_pid if by_pid is not None else {100: 5.5}),
        idle_w=31.48, formula="hpc", gap=gap)


@pytest.fixture
def server():
    srv = TelemetryServer(port=0, queue_capacity=64).start()
    yield srv
    srv.stop()


def make_client(server, **kwargs):
    client = TelemetryClient("127.0.0.1", server.port,
                             read_timeout_s=10.0, **kwargs)
    client.connect()
    return client


class TestBoundedFrameQueue:
    """The overflow policies, unit-tested without any I/O."""

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(0)
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(4, policy="bogus")

    def test_fifo_within_capacity(self):
        queue = BoundedFrameQueue(4)
        for index in range(3):
            queue.offer(FrameKind.REPORT, b"%d" % index)
        assert [queue.pop()[1] for _ in range(3)] == [b"0", b"1", b"2"]
        assert queue.dropped == 0 and queue.high_water == 3

    def test_drop_oldest_evicts_head(self):
        queue = BoundedFrameQueue(2, policy=OverflowPolicy.DROP_OLDEST)
        for index in range(5):
            queue.offer(FrameKind.REPORT, b"%d" % index)
        assert queue.dropped == 3
        assert [queue.pop()[1] for _ in range(2)] == [b"3", b"4"]
        assert queue.high_water == 2

    def test_coalesce_keeps_latest_report(self):
        queue = BoundedFrameQueue(2, policy=OverflowPolicy.COALESCE)
        queue.offer(FrameKind.HEALTH, b"h")
        for index in range(5):
            queue.offer(FrameKind.REPORT, b"r%d" % index)
        # Health frame survives; pending reports collapsed to the last.
        assert queue.dropped == 4
        assert queue.pop() == (FrameKind.HEALTH, b"h")
        assert queue.pop() == (FrameKind.REPORT, b"r4")

    def test_coalesce_full_of_non_reports_falls_back_to_drop_oldest(self):
        queue = BoundedFrameQueue(2, policy=OverflowPolicy.COALESCE)
        queue.offer(FrameKind.HEALTH, b"h0")
        queue.offer(FrameKind.HEALTH, b"h1")
        queue.offer(FrameKind.HEALTH, b"h2")
        assert queue.dropped == 1
        assert queue.pop() == (FrameKind.HEALTH, b"h1")

    def test_block_waits_for_space(self):
        stalled = threading.Event()
        queue = BoundedFrameQueue(1, policy=OverflowPolicy.BLOCK,
                                  on_block=stalled.set)
        queue.offer(FrameKind.REPORT, b"0")
        done = threading.Event()

        def produce():
            queue.offer(FrameKind.REPORT, b"1")
            done.set()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        assert stalled.wait(timeout=5.0)  # producer is provably blocked
        assert not done.is_set()
        assert queue.pop()[1] == b"0"  # frees space, unblocks producer
        assert done.wait(timeout=5.0)
        assert queue.pop()[1] == b"1"
        assert queue.blocked == 1

    def test_close_unblocks_producer_and_consumer(self):
        queue = BoundedFrameQueue(1, policy=OverflowPolicy.BLOCK)
        queue.offer(FrameKind.REPORT, b"0")
        results = []

        def produce():
            results.append(queue.offer(FrameKind.REPORT, b"1"))

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        queue.close()
        producer.join(timeout=5.0)
        assert results == [False]
        assert queue.pop() == (FrameKind.REPORT, b"0")  # drains
        assert queue.pop() is None  # then ends

    def test_pause_holds_consumer(self):
        queue = BoundedFrameQueue(4)
        queue.pause()
        queue.offer(FrameKind.REPORT, b"0")
        popped = []

        def consume():
            popped.append(queue.pop())

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        assert not popped
        queue.resume()
        consumer.join(timeout=5.0)
        assert popped == [(FrameKind.REPORT, b"0")]


class TestFanOut:
    def test_single_subscriber_receives_reports_in_order(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        for index in range(5):
            server.publish_report(report(time_s=float(index)))
        events = client.collect(5)
        assert [e.report.time_s for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert [e.seq for e in events] == list(range(5))
        assert all(isinstance(e, ReportEvent) for e in events)
        client.close()

    def test_eight_subscribers_all_receive_everything(self, server):
        clients = [make_client(server) for _ in range(8)]
        assert server.wait_for_subscribers(8)
        for index in range(10):
            server.publish_report(report(time_s=float(index)))
        for client in clients:
            times = [e.report.time_s for e in client.collect(10)]
            assert times == [float(i) for i in range(10)]
        for client in clients:
            client.close()

    def test_health_and_gap_frames_fan_out(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        server.publish_health(HealthEvent(
            time_s=1.0, component="hpc-sensor-0", kind="degraded"))
        server.publish_gap(GapMarker(time_s=2.0, period_s=1.0, pid=-1,
                                     source="meter"))
        health, gap = client.collect(2)
        assert isinstance(health, HealthTelemetry)
        assert health.event.kind == "degraded"
        assert isinstance(gap, GapTelemetry)
        assert gap.marker.source == "meter"
        client.close()

    def test_gap_marked_report_travels_with_flag(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        server.publish_report(report(time_s=9.0, gap=True))
        (event,) = client.collect(1)
        assert event.report.gap is True and event.report.by_pid == {}
        client.close()

    def test_host_label_stamped_on_frames(self):
        server = TelemetryServer(port=0, host_label="machine-7").start()
        try:
            client = make_client(server)
            assert server.wait_for_subscribers(1)
            server.publish_report(report())
            (event,) = client.collect(1)
            assert event.host == "machine-7"
            client.close()
        finally:
            server.stop()

    def test_per_subscriber_counters(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        for index in range(4):
            server.publish_report(report(time_s=float(index)))
        client.collect(4)
        assert server.wait_until_sent(4)
        (stats,) = server.stats()["subscribers"]
        assert stats["frames_sent"] == 4
        assert stats["frames_dropped"] == 0
        assert stats["bytes_sent"] > 0
        assert 1 <= stats["queue_high_water"] <= 4
        client.close()


class TestFilters:
    def test_pid_filter_restricts_by_pid(self, server):
        client = make_client(server, pids=[100])
        assert server.wait_for_subscribers(1)
        server.publish_report(report(by_pid={100: 5.0, 200: 7.0}))
        server.publish_report(report(time_s=2.0, by_pid={200: 7.0}))
        server.publish_report(report(time_s=3.0, by_pid={100: 1.0}))
        events = client.collect(2)
        assert [set(e.report.by_pid) for e in events] == [{100}, {100}]
        assert [e.report.time_s for e in events] == [1.0, 3.0]
        client.close()

    def test_kind_filter(self, server):
        client = make_client(server, kinds=["health"])
        assert server.wait_for_subscribers(1)
        server.publish_report(report())
        server.publish_health(HealthEvent(
            time_s=1.0, component="x", kind="recovered"))
        (event,) = client.collect(1)
        assert isinstance(event, HealthTelemetry)
        client.close()

    def test_downsample_every_other_report(self, server):
        client = make_client(server, downsample=2)
        assert server.wait_for_subscribers(1)
        for index in range(6):
            server.publish_report(report(time_s=float(index)))
        events = client.collect(3)
        assert [e.report.time_s for e in events] == [0.0, 2.0, 4.0]
        client.close()

    def test_heartbeat_every_n_reports(self):
        server = TelemetryServer(port=0, heartbeat_every=2).start()
        try:
            client = make_client(server)
            assert server.wait_for_subscribers(1)
            for index in range(4):
                server.publish_report(report(time_s=float(index)))
            events = client.collect(6)
            beats = [e for e in events if isinstance(e, Heartbeat)]
            assert [b.seq for b in beats] == [1, 2]
            client.close()
        finally:
            server.stop()


class TestOverflow:
    """Slow-subscriber behaviour for all three policies.

    The subscriber's writer is paused through its queue — the
    deterministic stand-in for a subscriber that stopped reading.
    """

    def _paused_subscriber(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        (subscriber,) = server.subscribers()
        subscriber.queue.pause()
        return client, subscriber

    def test_drop_oldest_sheds_without_stalling(self):
        server = TelemetryServer(port=0, queue_capacity=4,
                                 overflow=OverflowPolicy.DROP_OLDEST).start()
        try:
            client, subscriber = self._paused_subscriber(server)
            for index in range(20):
                server.publish_report(report(time_s=float(index)))
            assert server.stalls == 0
            assert subscriber.queue.dropped == 16
            assert subscriber.queue.high_water == 4
            subscriber.queue.resume()
            events = client.collect(4)
            assert [e.report.time_s for e in events] == [16.0, 17.0,
                                                         18.0, 19.0]
            client.close()
        finally:
            server.stop()

    def test_coalesce_delivers_latest_state(self):
        server = TelemetryServer(port=0, queue_capacity=2,
                                 overflow=OverflowPolicy.COALESCE).start()
        try:
            client, subscriber = self._paused_subscriber(server)
            server.publish_health(HealthEvent(
                time_s=0.0, component="x", kind="degraded"))
            for index in range(50):
                server.publish_report(report(time_s=float(index)))
            assert server.stalls == 0
            assert subscriber.queue.dropped == 49
            subscriber.queue.resume()
            health, latest = client.collect(2)
            assert isinstance(health, HealthTelemetry)
            assert latest.report.time_s == 49.0
            client.close()
        finally:
            server.stop()

    def test_stats_while_publisher_is_stalled(self):
        server = TelemetryServer(port=0, queue_capacity=1,
                                 overflow=OverflowPolicy.BLOCK).start()
        try:
            client, subscriber = self._paused_subscriber(server)
            server.publish_report(report(time_s=0.0))
            blocked_publish = threading.Thread(
                target=lambda: server.publish_report(report(time_s=1.0)),
                daemon=True)
            blocked_publish.start()
            assert server.wait_for(lambda: server.stalls >= 1)
            stats = server.stats()  # must stay live mid-stall
            assert stats["stalls"] == 1
            assert stats["subscribers"][0]["blocked"] == 1
            subscriber.queue.resume()
            blocked_publish.join(timeout=5.0)
            assert not blocked_publish.is_alive()
            client.collect(2)
            client.close()
        finally:
            server.stop()

    def test_stats_releases_server_lock_before_queue_counters(self, server):
        # Regression: stats() used to call each subscriber's stats()
        # (which takes the queue lock) while holding ``_cond``.  A
        # block-policy publisher stalled in offer() holds the queue
        # lock while _count_stall waits for ``_cond`` — the opposite
        # order — so the two ABBA-deadlocked.  Probe from another
        # thread that ``_cond`` is free when per-subscriber stats run.
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        (subscriber,) = server.subscribers()
        original = subscriber.stats
        cond_free = []

        def probing_stats():
            acquired = []

            def probe():
                got = server._cond.acquire(blocking=False)
                if got:
                    server._cond.release()
                acquired.append(got)

            prober = threading.Thread(target=probe)
            prober.start()
            prober.join(timeout=5.0)
            cond_free.append(acquired == [True])
            return original()

        subscriber.stats = probing_stats
        stats = server.stats()
        assert cond_free == [True], \
            "stats() held the server lock while reading queue counters"
        assert stats["subscribers"][0]["frames_sent"] == 0
        client.close()

    def test_block_policy_stalls_the_publisher(self):
        server = TelemetryServer(port=0, queue_capacity=2,
                                 overflow=OverflowPolicy.BLOCK).start()
        try:
            client, subscriber = self._paused_subscriber(server)
            server.publish_report(report(time_s=0.0))
            server.publish_report(report(time_s=1.0))
            blocked_publish = threading.Thread(
                target=lambda: server.publish_report(report(time_s=2.0)),
                daemon=True)
            blocked_publish.start()
            assert server.wait_for(lambda: server.stalls >= 1)
            subscriber.queue.resume()
            blocked_publish.join(timeout=5.0)
            assert not blocked_publish.is_alive()
            events = client.collect(3)
            assert [e.report.time_s for e in events] == [0.0, 1.0, 2.0]
            assert subscriber.queue.dropped == 0
            client.close()
        finally:
            server.stop()


class TestHandshake:
    def test_bad_subscription_kind_is_refused(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5.0)
        try:
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO, wire.hello_payload("bad-client")))
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE, {"kinds": ["bogus"], "downsample": 1}))
            decoder = wire.FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(65536)
                assert data, "server closed without an error frame"
                frames = decoder.feed(data)
            assert frames[0].kind is FrameKind.ERROR
            assert "bogus" in frames[0].payload["reason"]
        finally:
            sock.close()
        assert server.subscriber_count == 0

    def test_no_common_version_is_refused(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5.0)
        try:
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO, {"agent": "future", "versions": [99]}))
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE, {"downsample": 1}))
            decoder = wire.FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(65536)
                assert data, "server closed without an error frame"
                frames = decoder.feed(data)
            assert frames[0].kind is FrameKind.ERROR
            assert "version" in frames[0].payload["reason"]
        finally:
            sock.close()

    def test_malformed_versions_list_is_refused(self, server):
        # A HELLO whose versions field is not a list of ints must get
        # an ERROR frame back, not kill the handler thread unanswered.
        for bad in (["abc"], 42):
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=5.0)
            try:
                sock.sendall(wire.encode_frame(
                    FrameKind.HELLO,
                    {"agent": "mangled", "versions": bad}))
                sock.sendall(wire.encode_frame(
                    FrameKind.SUBSCRIBE, {"downsample": 1}))
                decoder = wire.FrameDecoder()
                frames = []
                while not frames:
                    data = sock.recv(65536)
                    assert data, "server closed without an error frame"
                    frames = decoder.feed(data)
                assert frames[0].kind is FrameKind.ERROR
                assert "versions" in frames[0].payload["reason"]
            finally:
                sock.close()
        assert server.subscriber_count == 0

    def test_client_validates_filters_before_dialing(self, server):
        client = TelemetryClient("127.0.0.1", server.port, kinds=["bogus"])
        with pytest.raises(WireProtocolError, match="unknown event kind"):
            client.connect()

    def test_version_negotiated_to_one(self, server):
        client = make_client(server)
        assert client.negotiated_version == wire.PROTOCOL_VERSION
        client.close()


class TestBridge:
    def test_bridge_forwards_bus_traffic(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        system = ActorSystem()
        system.spawn(TelemetryBridge(server), name="bridge")
        system.event_bus.publish(report(time_s=1.0))
        system.event_bus.publish(HealthEvent(
            time_s=1.0, component="c", kind="k"))
        system.event_bus.publish(GapMarker(
            time_s=2.0, period_s=1.0, pid=-1, source="hpc"))
        system.dispatch()
        kinds = [type(e).__name__ for e in client.collect(3)]
        assert kinds == ["ReportEvent", "HealthTelemetry", "GapTelemetry"]
        client.close()

    def test_bridge_pid_scope(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        system = ActorSystem()
        system.spawn(TelemetryBridge(server, pids=[100]), name="bridge")
        system.event_bus.publish(report(time_s=1.0, by_pid={200: 3.0}))
        system.event_bus.publish(report(time_s=2.0, by_pid={100: 4.0}))
        system.event_bus.publish(GapMarker(
            time_s=3.0, period_s=1.0, pid=200, source="hpc"))
        system.event_bus.publish(GapMarker(
            time_s=4.0, period_s=1.0, pid=100, source="hpc"))
        system.dispatch()
        events = client.collect(2)
        assert isinstance(events[0], ReportEvent)
        assert events[0].report.time_s == 2.0
        assert isinstance(events[1], GapTelemetry)
        assert events[1].marker.pid == 100
        client.close()


def _raw_subscribe(server, versions=(1, 2)):
    """Handshake a raw socket; returns (sock, decoder, leftover raw)."""
    sock = socket.create_connection(("127.0.0.1", server.port),
                                    timeout=10.0)
    sock.sendall(wire.encode_frame(
        FrameKind.HELLO, {"agent": "raw", "versions": list(versions)}))
    sock.sendall(wire.encode_frame(FrameKind.SUBSCRIBE, {"downsample": 1}))
    decoder = wire.FrameDecoder(accept_versions=versions)
    raw = b""
    frames = []
    while not frames:
        data = sock.recv(65536)
        assert data, "server closed during handshake"
        raw += data
        frames = decoder.feed(data)
    assert frames[0].kind is FrameKind.HELLO
    # Bytes past the HELLO reply belong to the stream proper.
    hello_len = len(wire.encode_frame(FrameKind.HELLO, frames[0].payload))
    return sock, decoder, raw[hello_len:]


def _outer_kinds(data):
    """Frame kinds at the outer (envelope) level of a raw byte run."""
    kinds = []
    offset = 0
    while offset + wire.HEADER_SIZE <= len(data):
        _magic, _version, kind, length = wire._HEADER.unpack_from(
            data, offset)
        kinds.append(FrameKind(kind))
        offset += wire.HEADER_SIZE + length
    return kinds


class TestBatching:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_frames=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_bytes=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_latency_s=-0.1)

    def test_batched_stream_is_transparent_to_the_client(self):
        server = TelemetryServer(
            port=0, batch=BatchPolicy(max_frames=16,
                                      max_latency_s=0.02)).start()
        try:
            client = make_client(server)
            assert server.wait_for_subscribers(1)
            for index in range(20):
                server.publish_report(report(time_s=float(index)))
            events = client.collect(20)
            assert [e.seq for e in events] == list(range(20))
            assert [e.report.time_s for e in events] == [
                float(i) for i in range(20)]
            client.close()
        finally:
            server.stop()

    def test_v2_wire_carries_batch_envelopes(self):
        server = TelemetryServer(
            port=0, batch=BatchPolicy(max_frames=16,
                                      max_latency_s=0.05)).start()
        try:
            sock, decoder, raw = _raw_subscribe(server)
            assert server.wait_for_subscribers(1)
            for index in range(6):
                server.publish_report(report(time_s=float(index)))
            frames = decoder.feed(b"")
            while len(frames) < 6:
                data = sock.recv(65536)
                assert data, "server closed mid-stream"
                raw += data
                frames.extend(decoder.feed(data))
            assert len(frames) == 6
            assert all(f.kind is FrameKind.REPORT for f in frames)
            # The latency window coalesced the burst: at least one
            # outer frame is a BATCH envelope.
            assert FrameKind.BATCH in _outer_kinds(raw)
            sock.close()
        finally:
            server.stop()

    def test_v1_subscriber_receives_bare_frames(self):
        # A PR-5-era client that only negotiated v1 must never be sent
        # a BATCH envelope, whatever the server's flush policy says.
        server = TelemetryServer(
            port=0, batch=BatchPolicy(max_frames=16,
                                      max_latency_s=0.05)).start()
        try:
            sock, decoder, raw = _raw_subscribe(server, versions=(1,))
            assert server.wait_for_subscribers(1)
            for index in range(6):
                server.publish_report(report(time_s=float(index)))
            frames = decoder.feed(b"")
            while len(frames) < 6:
                data = sock.recv(65536)
                assert data, "server closed mid-stream"
                raw += data
                frames.extend(decoder.feed(data))
            outer = _outer_kinds(raw)
            assert FrameKind.BATCH not in outer
            assert outer.count(FrameKind.REPORT) == 6
            sock.close()
        finally:
            server.stop()

    def test_max_frames_one_disables_batching(self):
        server = TelemetryServer(
            port=0, batch=BatchPolicy(max_frames=1)).start()
        try:
            sock, decoder, raw = _raw_subscribe(server)
            assert server.wait_for_subscribers(1)
            for index in range(6):
                server.publish_report(report(time_s=float(index)))
            frames = decoder.feed(b"")
            while len(frames) < 6:
                data = sock.recv(65536)
                assert data, "server closed mid-stream"
                raw += data
                frames.extend(decoder.feed(data))
            assert FrameKind.BATCH not in _outer_kinds(raw)
            sock.close()
        finally:
            server.stop()


class TestMaxSubscribers:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryServer(max_subscribers=-1)

    def test_excess_connection_gets_error_frame(self):
        server = TelemetryServer(port=0, max_subscribers=1).start()
        try:
            first = make_client(server)
            assert server.wait_for_subscribers(1)

            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=10.0)
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO, wire.hello_payload("overflow")))
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE, {"downsample": 1}))
            decoder = wire.FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(65536)
                assert data, "server closed without an error frame"
                frames = decoder.feed(data)
            assert frames[0].kind is FrameKind.ERROR
            assert "subscriber limit reached (1)" \
                in frames[0].payload["reason"]
            sock.close()

            stats = server.stats()
            assert stats["connections_refused"] == 1
            assert server.subscriber_count == 1

            # A slot freed by a disconnect is usable again.
            first.close()
            assert server.wait_for(
                lambda: server.subscriber_count == 0)
            second = make_client(server)
            assert server.wait_for_subscribers(1)
            server.publish_report(report())
            assert len(second.collect(1)) == 1
            second.close()
        finally:
            server.stop()

    def test_client_surfaces_refusal(self):
        from repro.errors import TelemetryError
        server = TelemetryServer(port=0, max_subscribers=1).start()
        try:
            first = make_client(server)
            assert server.wait_for_subscribers(1)
            blocked = TelemetryClient("127.0.0.1", server.port,
                                      read_timeout_s=10.0)
            with pytest.raises(TelemetryError,
                               match="subscriber limit"):
                blocked.connect()
            first.close()
        finally:
            server.stop()


class TestServerLifecycle:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryServer(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            TelemetryServer(overflow="nope")
        with pytest.raises(ConfigurationError):
            TelemetryServer(heartbeat_every=-1)

    def test_stop_is_idempotent_and_ends_clients(self, server):
        client = make_client(server)
        assert server.wait_for_subscribers(1)
        server.stop()
        server.stop()
        assert list(client.events()) == []  # clean end, no exception

    def test_ephemeral_ports_are_distinct(self):
        one = TelemetryServer(port=0).start()
        two = TelemetryServer(port=0).start()
        try:
            assert one.port != two.port
        finally:
            one.stop()
            two.stop()

"""Unit tests for energy hotspot analysis."""

import pytest

from repro.analysis.hotspots import (SPIN_THRESHOLD_INSTR_PER_J,
                                     THRASH_THRESHOLD_MPI, diagnose,
                                     rank_consumers, render_hotspots)
from repro.core.messages import AggregatedPowerReport
from repro.errors import ConfigurationError


def report(time_s, by_pid, period=1.0):
    return AggregatedPowerReport(time_s=time_s, period_s=period,
                                 by_pid=by_pid, idle_w=31.48, formula="f")


@pytest.fixture
def reports():
    return [
        report(1.0, {1: 10.0, 2: 5.0, 3: 1.0}),
        report(2.0, {1: 12.0, 2: 5.0, 3: 1.0}),
        report(3.0, {1: 8.0, 2: 5.0}),
    ]


class TestRanking:
    def test_sorted_by_energy(self, reports):
        hotspots = rank_consumers(reports)
        assert [h.pid for h in hotspots] == [1, 2, 3]

    def test_energy_integrated(self, reports):
        hotspots = rank_consumers(reports)
        assert hotspots[0].active_energy_j == pytest.approx(30.0)
        assert hotspots[1].active_energy_j == pytest.approx(15.0)

    def test_shares_sum_to_one(self, reports):
        hotspots = rank_consumers(reports)
        assert sum(h.share for h in hotspots) == pytest.approx(1.0)

    def test_mean_power_uses_observed_periods(self, reports):
        hotspots = rank_consumers(reports)
        by_pid = {h.pid: h for h in hotspots}
        assert by_pid[3].mean_power_w == pytest.approx(1.0)  # 2 J over 2 s

    def test_top_limits(self, reports):
        assert len(rank_consumers(reports, top=2)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_consumers([])


class TestDiagnosis:
    def test_spinning_detected(self, reports):
        hotspots = rank_consumers(reports)
        # pid 1: 30 J with almost no instructions -> spinning.
        findings = diagnose(hotspots, instructions_by_pid={1: 1e6, 2: 1e12,
                                                           3: 1e12})
        assert any(f.pid == 1 and f.pattern == "busy-spinning"
                   for f in findings)
        assert not any(f.pid == 2 for f in findings)

    def test_thrashing_detected(self, reports):
        hotspots = rank_consumers(reports)
        instructions = {1: 1e12, 2: 1e10, 3: 1e12}
        misses = {1: 1e6, 2: 1e10 * THRASH_THRESHOLD_MPI * 2, 3: 0.0}
        findings = diagnose(hotspots, instructions, misses)
        assert any(f.pid == 2 and f.pattern == "memory-thrashing"
                   for f in findings)

    def test_efficient_process_clean(self, reports):
        hotspots = rank_consumers(reports)
        instructions = {pid: 1e12 for pid in (1, 2, 3)}
        misses = {pid: 0.0 for pid in (1, 2, 3)}
        assert diagnose(hotspots, instructions, misses) == []

    def test_threshold_constants_sane(self):
        assert SPIN_THRESHOLD_INSTR_PER_J > 0
        assert 0 < THRASH_THRESHOLD_MPI < 1


class TestRendering:
    def test_render_includes_names_and_shares(self, reports):
        hotspots = rank_consumers(reports)
        text = render_hotspots(hotspots, names={1: "specjbb", 2: "nginx"})
        assert "specjbb" in text
        assert "nginx" in text
        assert "pid 3" in text
        assert "%" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_hotspots([])


class TestEndToEnd:
    def test_hotspots_from_live_pipeline(self):
        from repro.core.model import FrequencyFormula, PowerModel
        from repro.core.monitor import PowerAPI
        from repro.core.reporters import InMemoryReporter
        from repro.os.kernel import SimKernel
        from repro.simcpu.spec import intel_i3_2120
        from repro.workloads.stress import CpuStress

        spec = intel_i3_2120()
        model = PowerModel(31.48, [
            FrequencyFormula(f, {"instructions": 3e-9})
            for f in spec.frequencies_hz])
        kernel = SimKernel(spec, quantum_s=0.02)
        hog = kernel.spawn(CpuStress(utilization=1.0, threads=2,
                                     duration_s=100.0), name="hog")
        mouse = kernel.spawn(CpuStress(utilization=0.1, duration_s=100.0),
                             name="mouse")
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = api.monitor(hog, mouse).every(0.5).to(InMemoryReporter())
        api.run(4.0)
        hotspots = rank_consumers(handle.reporter.aggregated)
        assert hotspots[0].pid == hog
        assert hotspots[0].share > 0.8
        api.shutdown()

"""Unit tests for the power meters: base, PowerSpy, RAPL, ACPI."""

import pytest

from repro.errors import ConfigurationError, MeterConnectionError, PowerMeterError
from repro.powermeter.acpi import AcpiBatteryMeter
from repro.powermeter.base import PowerMeter, PowerSample
from repro.powermeter.powerspy import PowerSpy
from repro.powermeter.rapl import (COUNTER_WRAP, ENERGY_UNIT_J,
                                   MSR_PKG_ENERGY_STATUS,
                                   MSR_RAPL_POWER_UNIT, RaplDomain,
                                   RaplEnergyReader, RaplInterface,
                                   RaplPowerMeter)
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.pipeline import InstructionMix
from repro.simcpu.spec import intel_i3_2120


def busy_assignment(pid=100, cpu=0):
    return ThreadAssignment(
        pid=pid, cpu_id=cpu, busy_fraction=1.0,
        mix=InstructionMix(),
        memory=MemoryProfile(working_set_bytes=8192, locality=0.99))


@pytest.fixture
def machine():
    machine = Machine(intel_i3_2120())
    machine.set_frequency(machine.spec.max_frequency_hz)
    return machine


class TestPowerSample:
    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            PowerSample(time_s=0.0, power_w=-1.0)


class TestBaseMeter:
    def test_one_sample_per_interval(self, machine):
        meter = PowerMeter(machine, sample_rate_hz=10.0)
        with meter:
            machine.run([], 1.0, dt_s=0.01)
        assert len(meter.samples) == 10

    def test_sample_is_interval_average(self, machine):
        meter = PowerMeter(machine, sample_rate_hz=1.0)
        with meter:
            machine.run([], 1.0, dt_s=0.1)
        sample = meter.samples[0]
        assert sample.power_w == pytest.approx(
            machine.spec.power.idle_w, rel=0.05)

    def test_disconnect_stops_sampling(self, machine):
        meter = PowerMeter(machine, sample_rate_hz=10.0)
        meter.connect()
        machine.run([], 0.5, dt_s=0.01)
        meter.disconnect()
        machine.run([], 0.5, dt_s=0.01)
        assert len(meter.samples) == 5

    def test_double_connect_is_idempotent(self, machine):
        meter = PowerMeter(machine, sample_rate_hz=10.0)
        meter.connect()
        meter.connect()
        machine.run([], 0.1, dt_s=0.01)
        assert len(meter.samples) == 1

    def test_mean_requires_samples(self, machine):
        meter = PowerMeter(machine)
        with pytest.raises(MeterConnectionError):
            meter.mean_power_w()

    def test_clear_drops_samples(self, machine):
        meter = PowerMeter(machine, sample_rate_hz=10.0)
        with meter:
            machine.run([], 0.5, dt_s=0.01)
            meter.clear()
            machine.run([], 0.2, dt_s=0.01)
        assert len(meter.samples) == 2

    def test_last_sample_none_before_first_interval(self, machine):
        meter = PowerMeter(machine, sample_rate_hz=1.0)
        with meter:
            machine.run([], 0.5, dt_s=0.1)
            assert meter.last_sample() is None

    def test_rejects_bad_rate(self, machine):
        with pytest.raises(ConfigurationError):
            PowerMeter(machine, sample_rate_hz=0.0)


class TestPowerSpy:
    def test_noise_is_reproducible_per_seed(self, machine):
        meter_a = PowerSpy(machine, seed=1)
        meter_b = PowerSpy(Machine(intel_i3_2120()), seed=1)
        with meter_a:
            machine.run([], 5.0, dt_s=0.1)
        other = meter_b.machine
        with meter_b:
            other.run([], 5.0, dt_s=0.1)
        assert [s.power_w for s in meter_a.samples] == pytest.approx(
            [s.power_w for s in meter_b.samples])

    def test_noise_magnitude(self, machine):
        meter = PowerSpy(machine, noise_fraction=0.01, resolution_w=0.0,
                         seed=3)
        with meter:
            machine.run([], 60.0, dt_s=0.1)
        import numpy as np
        powers = np.array([s.power_w for s in meter.samples])
        spread = powers.std() / powers.mean()
        assert 0.003 < spread < 0.03

    def test_quantization(self, machine):
        meter = PowerSpy(machine, noise_fraction=0.0, resolution_w=0.5,
                         seed=4)
        with meter:
            machine.run([], 3.0, dt_s=0.1)
        for sample in meter.samples:
            assert sample.power_w == pytest.approx(
                round(sample.power_w / 0.5) * 0.5)

    def test_rejects_huge_noise(self, machine):
        with pytest.raises(ConfigurationError):
            PowerSpy(machine, noise_fraction=0.7)

    def test_tracks_load_changes(self, machine):
        meter = PowerSpy(machine, seed=5)
        with meter:
            machine.run([], 2.0, dt_s=0.1)
            machine.run([busy_assignment(cpu=0),
                         busy_assignment(pid=101, cpu=1)], 2.0, dt_s=0.1)
        idle = meter.samples[1].power_w
        loaded = meter.samples[-1].power_w
        assert loaded > idle + 10


class TestRapl:
    def test_rejects_non_intel(self):
        import dataclasses
        spec = dataclasses.replace(intel_i3_2120(), vendor="AMD")
        with pytest.raises(PowerMeterError):
            RaplInterface(Machine(spec))

    def test_energy_unit_decoding(self, machine):
        rapl = RaplInterface(machine)
        assert rapl.energy_unit_j() == pytest.approx(ENERGY_UNIT_J)

    def test_unknown_msr_raises(self, machine):
        rapl = RaplInterface(machine)
        with pytest.raises(PowerMeterError):
            rapl.read_msr(0x123)

    def test_package_energy_accumulates(self, machine):
        rapl = RaplInterface(machine)
        machine.run([busy_assignment()], 1.0, dt_s=0.1)
        assert rapl.energy_j(RaplDomain.PACKAGE) > 1.0

    def test_package_excludes_idle_baseline(self, machine):
        rapl = RaplInterface(machine)
        machine.run([], 1.0, dt_s=0.1)
        # Idle machine: package energy far below wall energy.
        assert rapl.energy_j(RaplDomain.PACKAGE) < machine.energy_j * 0.2

    def test_pp0_below_package(self, machine):
        rapl = RaplInterface(machine)
        machine.run([busy_assignment()], 1.0, dt_s=0.1)
        assert (rapl.energy_j(RaplDomain.PP0)
                <= rapl.energy_j(RaplDomain.PACKAGE))

    def test_counter_is_32bit(self, machine):
        rapl = RaplInterface(machine)
        machine.run([busy_assignment()], 0.5, dt_s=0.1)
        raw = rapl.read_msr(MSR_PKG_ENERGY_STATUS)
        assert 0 <= raw < COUNTER_WRAP

    def test_wrap_corrected_reader(self, machine):
        rapl = RaplInterface(machine)
        reader = RaplEnergyReader(rapl, RaplDomain.PACKAGE)
        # Force a wrap by injecting energy beyond the 32-bit range.
        rapl._energy_j[RaplDomain.PACKAGE] += (COUNTER_WRAP - 10) * ENERGY_UNIT_J
        first = reader.total_energy_j()
        rapl._energy_j[RaplDomain.PACKAGE] += 20 * ENERGY_UNIT_J
        second = reader.total_energy_j()
        assert second > first  # monotonic across the wrap

    def test_power_meter_view(self, machine):
        rapl = RaplInterface(machine)
        meter = RaplPowerMeter(rapl)
        machine.run([busy_assignment()], 1.0, dt_s=0.1)
        power = meter.average_power_w()
        # Package power of one busy core: positive but far below wall power.
        assert 5.0 < power < machine.spec.power.tdp_w


class TestAcpi:
    def test_coarse_quantization(self, machine):
        meter = AcpiBatteryMeter(machine, sample_rate_hz=1.0)
        with meter:
            machine.run([], 5.0, dt_s=0.1)
        for sample in meter.samples:
            assert sample.power_w % 0.5 == pytest.approx(0.0, abs=1e-9)

    def test_smoothing_lags_step_change(self, machine):
        meter = AcpiBatteryMeter(machine, sample_rate_hz=1.0, smoothing=0.3)
        direct = PowerSpy(machine, noise_fraction=0.0, resolution_w=0.0,
                          seed=9)
        with meter, direct:
            machine.run([], 3.0, dt_s=0.1)
            machine.run([busy_assignment(cpu=0),
                         busy_assignment(pid=101, cpu=1)], 2.0, dt_s=0.1)
        # One sample after the step, the battery lags the true meter.
        assert meter.samples[3].power_w < direct.samples[3].power_w

    def test_rejects_bad_smoothing(self, machine):
        with pytest.raises(ConfigurationError):
            AcpiBatteryMeter(machine, smoothing=0.0)

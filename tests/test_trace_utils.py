"""Unit tests for trace smoothing, downsampling and percentiles."""

import pytest

from repro.analysis.traces import PowerTrace
from repro.errors import ConfigurationError


@pytest.fixture
def noisy():
    times = [float(i) for i in range(11)]
    powers = [30.0 if i % 2 == 0 else 40.0 for i in range(11)]
    return PowerTrace.from_series("noisy", times, powers)


class TestSmoothing:
    def test_window_one_is_identity(self, noisy):
        assert noisy.smoothed(1) is noisy

    def test_smoothing_reduces_spread(self, noisy):
        import numpy as np
        smooth = noisy.smoothed(5)
        assert np.std(smooth.powers_w) < np.std(noisy.powers_w)

    def test_length_and_times_preserved(self, noisy):
        smooth = noisy.smoothed(3)
        assert smooth.times_s == noisy.times_s
        assert len(smooth) == len(noisy)

    def test_mean_roughly_preserved(self, noisy):
        smooth = noisy.smoothed(3)
        assert smooth.mean_w() == pytest.approx(noisy.mean_w(), abs=1.0)

    def test_even_window_rejected(self, noisy):
        with pytest.raises(ConfigurationError):
            noisy.smoothed(4)

    def test_constant_trace_unchanged(self):
        trace = PowerTrace.from_series("flat", [0, 1, 2], [30, 30, 30])
        assert list(trace.smoothed(3).powers_w) == [30, 30, 30]


class TestDownsampling:
    def test_keeps_every_nth(self, noisy):
        down = noisy.downsampled(2)
        assert down.times_s == noisy.times_s[::2]

    def test_factor_one_identity(self, noisy):
        assert noisy.downsampled(1).times_s == noisy.times_s

    def test_bad_factor_rejected(self, noisy):
        with pytest.raises(ConfigurationError):
            noisy.downsampled(0)


class TestPercentiles:
    def test_median_between_extremes(self, noisy):
        percentiles = noisy.percentiles((0, 50, 100))
        assert percentiles[0] == 30.0
        assert percentiles[100] == 40.0
        assert 30.0 <= percentiles[50] <= 40.0

    def test_empty_rejected(self):
        trace = PowerTrace.from_series("empty", [], [])
        with pytest.raises(ConfigurationError):
            trace.percentiles()

"""Tests for declarative pipeline specs (repro.core.pipeline).

Covers the PR's acceptance criteria: lossless JSON/TOML round-trips,
config-driven assembly producing byte-identical output to the fluent
DSL, and unknown component names failing validation with the registry's
available components in the message.
"""

import dataclasses

import pytest
from hypothesis import given

from repro.configio import dumps_toml, loads_toml
from tests.strategies import default_settings, pipeline_specs
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.pipeline import (DegradationSpec, PipelineSpec, StageSpec,
                                 TelemetrySpec, parse_uplink)
from repro.core.reporters import CsvReporter, InMemoryReporter
from repro.errors import ConfigurationError
from repro.os.kernel import SimKernel
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress


@pytest.fixture
def model():
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in intel_i3_2120().frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas, name="unit-model")


def fresh_api(model):
    kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
    pid = kernel.spawn(CpuStress(duration_s=12.0), name="stress")
    return PowerAPI(kernel, model), pid


FULL_SPEC = PipelineSpec(
    pids=(1000, 1001),
    period_s=0.5,
    sensor=StageSpec("hpc", {"events": ("cycles", "instructions")}),
    formula=StageSpec("hpc"),
    reporters=(StageSpec("csv", {"path": "out.csv", "flush_every": 2}),
               StageSpec("memory")),
    degradation=DegradationSpec(degrade_after=4, recover_after=1),
    faults="crash@5.0:formula-0;pid-exit@8.0",
    telemetry=TelemetrySpec(host="0.0.0.0", port=9977,
                            overflow="coalesce", queue_capacity=64,
                            heartbeat_every=10, host_label="node-3",
                            batch_max_frames=32, batch_max_bytes=65536,
                            batch_max_latency_s=0.005, max_subscribers=128,
                            uplinks=("upstream-a:9100", "upstream-b:9101")),
)


class TestSpecValue:
    def test_requires_pids(self):
        with pytest.raises(ConfigurationError, match="at least one pid"):
            PipelineSpec(pids=())

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError, match="period"):
            PipelineSpec(pids=(1,), period_s=0.0)

    def test_degradation_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            DegradationSpec(degrade_after=0)

    def test_params_are_frozen_to_tuples(self):
        spec = StageSpec("hpc", {"events": ["cycles"]})
        assert spec.params["events"] == ("cycles",)

    def test_with_reporter_appends(self):
        spec = PipelineSpec(pids=(1,)).with_reporter("csv", path="x.csv")
        assert spec.reporters[-1] == StageSpec("csv", {"path": "x.csv"})


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        assert PipelineSpec.from_json(FULL_SPEC.to_json()) == FULL_SPEC

    def test_toml_round_trip_is_lossless(self):
        assert PipelineSpec.from_toml(FULL_SPEC.to_toml()) == FULL_SPEC

    def test_minimal_spec_round_trips(self):
        spec = PipelineSpec(pids=(7,), degradation=None)
        assert PipelineSpec.from_json(spec.to_json()) == spec
        assert PipelineSpec.from_toml(spec.to_toml()) == spec

    def test_toml_subset_parser_matches_tomllib(self):
        # The fallback reader (used on Python < 3.11) must agree with
        # tomllib on everything we emit.
        tomllib = pytest.importorskip("tomllib")
        text = FULL_SPEC.to_toml()
        from repro.configio import _loads_subset
        assert _loads_subset(text) == tomllib.loads(text)

    def test_from_file_dispatches_on_suffix(self, tmp_path):
        json_path = tmp_path / "p.json"
        toml_path = tmp_path / "p.toml"
        json_path.write_text(FULL_SPEC.to_json())
        toml_path.write_text(FULL_SPEC.to_toml())
        assert PipelineSpec.from_file(json_path) == FULL_SPEC
        assert PipelineSpec.from_file(toml_path) == FULL_SPEC

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline key"):
            PipelineSpec.from_dict({"pids": [1], "sensors": []})

    def test_unknown_telemetry_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown telemetry"):
            TelemetrySpec.from_dict({"hostname": "x"})

    def test_stage_without_type_rejected(self):
        with pytest.raises(ConfigurationError, match="missing 'type'"):
            StageSpec.from_dict({"path": "x.csv"})


class TestTelemetryTier:
    """The [telemetry] batch/uplink/limit knobs and their plumbing."""

    def test_parse_uplink(self):
        assert parse_uplink("host-a:9200") == ("host-a", 9200)
        assert parse_uplink("::1:9200") == ("::1", 9200)
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            parse_uplink("nocolon")
        with pytest.raises(ConfigurationError, match="port"):
            parse_uplink("host:abc")

    def test_field_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetrySpec(batch_max_frames=0)
        with pytest.raises(ConfigurationError):
            TelemetrySpec(batch_max_bytes=0)
        with pytest.raises(ConfigurationError):
            TelemetrySpec(batch_max_latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            TelemetrySpec(max_subscribers=-1)
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            TelemetrySpec(uplinks=("bogus",))

    def test_server_kwargs_builds_batch_policy_and_uplinks(self):
        from repro.telemetry.server import BatchPolicy
        spec = TelemetrySpec(batch_max_frames=8,
                             batch_max_latency_s=0.01,
                             max_subscribers=16,
                             uplinks=("up-a:9100", "up-b:9101"))
        kwargs = spec.server_kwargs()
        assert kwargs["max_subscribers"] == 16
        assert kwargs["uplinks"] == (("up-a", 9100), ("up-b", 9101))
        batch = kwargs["batch"]
        assert isinstance(batch, BatchPolicy)
        assert batch.max_frames == 8
        assert batch.max_latency_s == 0.01
        # Unset batch knobs inherit the policy defaults.
        assert batch.max_bytes == BatchPolicy().max_bytes

    def test_server_kwargs_omits_unset_tier_knobs(self):
        kwargs = TelemetrySpec().server_kwargs()
        assert "batch" not in kwargs
        assert "uplinks" not in kwargs
        assert "max_subscribers" not in kwargs

    def test_with_telemetry_fluent_builder(self, model):
        api, pid = fresh_api(model)
        builder = api.monitor(pid).every(1.0).with_telemetry(
            port=0, batch_max_frames=32, max_subscribers=8,
            uplinks=("up-a:9100",))
        spec = builder.spec()
        assert spec.telemetry is not None
        assert spec.telemetry.batch_max_frames == 32
        assert spec.telemetry.max_subscribers == 8
        assert spec.telemetry.uplinks == ("up-a:9100",)
        # The description round-trips like any other config file.
        assert PipelineSpec.from_json(spec.to_json()) == spec
        api.shutdown()


class TestValidation:
    def test_unknown_sensor_names_available_components(self):
        spec = PipelineSpec(pids=(1,), sensor=StageSpec("rapl"),
                            reporters=(StageSpec("memory"),))
        with pytest.raises(ConfigurationError) as excinfo:
            spec.validate()
        message = str(excinfo.value)
        assert "rapl" in message
        assert "hpc" in message and "procfs" in message

    def test_unknown_reporter_names_available_components(self):
        spec = PipelineSpec(pids=(1,),
                            reporters=(StageSpec("udp"),))
        with pytest.raises(ConfigurationError) as excinfo:
            spec.validate()
        message = str(excinfo.value)
        assert "udp" in message
        assert "csv" in message and "memory" in message

    def test_bad_stage_params_rejected(self):
        spec = PipelineSpec(
            pids=(1,),
            reporters=(StageSpec("csv", {"path": "x.csv", "colour": "red"}),))
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            spec.validate()

    def test_reporterless_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one reporter"):
            PipelineSpec(pids=(1,)).validate()

    def test_bad_fault_plan_rejected(self):
        spec = PipelineSpec(pids=(1,), faults="explode@never",
                            reporters=(StageSpec("memory"),))
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_start_pipeline_surfaces_unknown_component(self, model):
        api, pid = fresh_api(model)
        spec = PipelineSpec(pids=(pid,), sensor=StageSpec("bogus"),
                            reporters=(StageSpec("memory"),))
        with pytest.raises(ConfigurationError, match="available sensors"):
            api.start_pipeline(spec)
        api.shutdown()


class TestGoldenEquivalence:
    def test_fluent_and_config_builds_are_byte_identical(self, model,
                                                         tmp_path):
        """The same seeded run, assembled (a) via the fluent DSL and
        (b) via a PipelineSpec loaded from a config file, produces
        byte-identical reporter output."""
        fluent_csv = tmp_path / "fluent.csv"
        api_a, pid_a = fresh_api(model)
        api_a.monitor(pid_a).every(0.5).to(
            CsvReporter(fluent_csv, pids=[pid_a]))
        api_a.run(6.0)
        api_a.shutdown()

        config_csv = tmp_path / "config.csv"
        spec = PipelineSpec(pids=(pid_a,), period_s=0.5).with_reporter(
            "csv", path=str(config_csv))
        for text, loader in ((spec.to_toml(), PipelineSpec.from_toml),
                             (spec.to_json(), PipelineSpec.from_json)):
            config_csv.unlink(missing_ok=True)
            api_b, pid_b = fresh_api(model)
            assert pid_b == pid_a  # deterministic kernel pid assignment
            api_b.start_pipeline(loader(text))
            api_b.run(6.0)
            api_b.shutdown()
            assert config_csv.read_bytes() == fluent_csv.read_bytes()

    def test_fluent_builder_exposes_its_spec(self, model):
        api, pid = fresh_api(model)
        builder = api.monitor(pid).every(2.0).with_formula("cpu-load")
        spec = builder.spec()
        assert spec.sensor.type == "procfs"
        assert spec.formula.type == "cpu-load"
        assert spec.period_s == 2.0
        assert spec.degradation is None
        api.shutdown()

    def test_actor_names_match_historical_wiring(self, model):
        api, pid = fresh_api(model)
        spec = PipelineSpec(pids=(pid,),
                            reporters=(StageSpec("memory"),
                                       StageSpec("memory")))
        api.start_pipeline(spec)
        names = set(api.system.actor_names())
        assert {"sensor-0", "standby-sensor-0", "standby-formula-0",
                "formula-0", "ts-aggregator-0", "pid-aggregator-0",
                "health-0", "reporter-0", "reporter-0-1"} <= names
        api.shutdown()

    def test_spec_faults_are_armed(self, model):
        api, pid = fresh_api(model)
        spec = PipelineSpec(pids=(pid,), faults="crash@1.0:formula-0",
                            reporters=(StageSpec("memory"),))
        handle = api.start_pipeline(spec)
        api.run(3.0)
        kinds = {event.kind for event in handle.health}
        assert "fault-injected" in kinds or any(
            "crash" in event.detail for event in handle.health)
        api.shutdown()


class TestHandleSurface:
    def test_handle_carries_spec_and_reporters(self, model):
        api, pid = fresh_api(model)
        memory = InMemoryReporter()
        handle = api.monitor(pid).every(1.0).to(memory)
        assert handle.reporter is memory
        assert handle.reporters == (memory,)
        assert handle.spec is not None
        assert handle.spec.pids == (pid,)
        api.shutdown()

    def test_by_name_reporter_via_fluent_to(self, model, tmp_path):
        api, pid = fresh_api(model)
        path = tmp_path / "by-name.csv"
        handle = api.monitor(pid).every(1.0).to("csv", path=str(path))
        api.run(2.0)
        api.shutdown()
        assert isinstance(handle.reporter, CsvReporter)
        assert path.read_text().startswith("time_s,")


class TestTelemetryAdvertisement:
    def test_subscriber_sees_the_running_spec(self, model):
        from repro.telemetry.client import TelemetryClient

        api, pid = fresh_api(model)
        spec = PipelineSpec(
            pids=(pid,),
            reporters=(StageSpec("memory"),),
            telemetry=TelemetrySpec(port=0))
        api.start_pipeline(spec)
        server = api.telemetry_servers[-1]
        client = TelemetryClient("127.0.0.1", server.port,
                                 read_timeout_s=5.0)
        try:
            client.connect()
            assert client.server_spec is not None
            advertised = PipelineSpec.from_dict(client.server_spec)
            assert advertised == spec
        finally:
            client.close()
            api.shutdown()


class TestConfigIo:
    def test_dumps_loads_nested(self):
        data = {"a": 1, "b": "x", "flag": True,
                "sub": {"k": 2.5, "names": ["p", "q"]},
                "rows": [{"n": 1}, {"n": 2, "deep": {"z": "w"}}]}
        assert loads_toml(dumps_toml(data)) == data

    def test_string_escapes_survive(self):
        data = {"s": 'quote " backslash \\ newline \n tab \t'}
        assert loads_toml(dumps_toml(data)) == data

    def test_bad_toml_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            loads_toml("this is not = = toml [")

    def test_subset_parser_handles_comments_and_blanks(self):
        from repro.configio import _loads_subset
        text = '# comment\n\nkey = 1\n[table]\n# another\nval = "x"\n'
        assert _loads_subset(text) == {"key": 1, "table": {"val": "x"}}


class TestSpecProperties:
    """Generative round-trips over the whole spec space (shared
    strategies from tests.strategies, [control] sections included)."""

    @given(spec=pipeline_specs())
    @default_settings
    def test_json_roundtrip_is_identity(self, spec):
        assert PipelineSpec.from_json(spec.to_json()) == spec

    @given(spec=pipeline_specs())
    @default_settings
    def test_toml_roundtrip_is_identity(self, spec):
        assert PipelineSpec.from_toml(spec.to_toml()) == spec

    @given(spec=pipeline_specs())
    @default_settings
    def test_generated_specs_validate(self, spec):
        spec.validate()

"""Unit tests for repro.simcpu.topology."""

import pytest

from repro.errors import TopologyError
from repro.simcpu.spec import intel_core2duo_e6600, intel_i3_2120, intel_xeon_smt
from repro.simcpu.topology import Topology


class TestLinuxNumbering:
    """Logical CPUs follow Linux convention: cores first, then siblings."""

    @pytest.fixture
    def topo(self):
        return Topology(intel_i3_2120())

    def test_length(self, topo):
        assert len(topo) == 4

    def test_cpu0_is_core0_thread0(self, topo):
        cpu = topo.cpu(0)
        assert (cpu.core_id, cpu.thread_id) == (0, 0)

    def test_cpu1_is_core1_thread0(self, topo):
        cpu = topo.cpu(1)
        assert (cpu.core_id, cpu.thread_id) == (1, 0)

    def test_cpu2_is_core0_thread1(self, topo):
        cpu = topo.cpu(2)
        assert (cpu.core_id, cpu.thread_id) == (0, 1)

    def test_cpu3_is_core1_thread1(self, topo):
        cpu = topo.cpu(3)
        assert (cpu.core_id, cpu.thread_id) == (1, 1)

    def test_siblings_of_cpu0(self, topo):
        assert topo.siblings(0) == (0, 2)

    def test_siblings_of_cpu3(self, topo):
        assert topo.siblings(3) == (1, 3)

    def test_cpu_ids(self, topo):
        assert topo.cpu_ids == (0, 1, 2, 3)

    def test_str_rendering(self, topo):
        assert str(topo.cpu(2)) == "cpu2(pkg0/core0/smt1)"


class TestNoSmt:
    def test_siblings_are_singletons(self):
        topo = Topology(intel_core2duo_e6600())
        assert topo.siblings(0) == (0,)
        assert topo.siblings(1) == (1,)

    def test_all_primary_threads(self):
        topo = Topology(intel_core2duo_e6600())
        assert all(topo.primary_thread(cpu_id) for cpu_id in topo.cpu_ids)


class TestLookups:
    @pytest.fixture
    def topo(self):
        return Topology(intel_xeon_smt())

    def test_out_of_range_cpu(self, topo):
        with pytest.raises(TopologyError):
            topo.cpu(99)

    def test_negative_cpu(self, topo):
        with pytest.raises(TopologyError):
            topo.cpu(-1)

    def test_core_cpus(self, topo):
        assert topo.core_cpus(0, 0) == (0, 4)

    def test_core_cpus_missing(self, topo):
        with pytest.raises(TopologyError):
            topo.core_cpus(0, 99)

    def test_package_cpus(self, topo):
        assert topo.package_cpus(0) == tuple(range(8))

    def test_package_cpus_missing(self, topo):
        with pytest.raises(TopologyError):
            topo.package_cpus(3)

    def test_cores_enumeration(self, topo):
        assert topo.cores() == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_primary_thread(self, topo):
        assert topo.primary_thread(0)
        assert not topo.primary_thread(4)

    def test_every_cpu_in_exactly_one_core_group(self, topo):
        seen = []
        for package_id, core_id in topo.cores():
            seen.extend(topo.core_cpus(package_id, core_id))
        assert sorted(seen) == list(topo.cpu_ids)

"""Unit tests for repro.simcpu.cstates."""

import pytest

from repro.errors import ConfigurationError
from repro.simcpu.cstates import CSTATE_CATALOG, CStateController
from repro.simcpu.spec import intel_core2duo_e6600, intel_i3_2120


class TestCatalog:
    def test_c0_full_power(self):
        assert CSTATE_CATALOG["C0"].power_fraction == 1.0

    def test_deeper_states_draw_less(self):
        fractions = [CSTATE_CATALOG[name].power_fraction
                     for name in ("C0", "C1", "C3", "C6")]
        assert fractions == sorted(fractions, reverse=True)

    def test_deeper_states_wake_slower(self):
        latencies = [CSTATE_CATALOG[name].exit_latency_s
                     for name in ("C0", "C1", "C3", "C6")]
        assert latencies == sorted(latencies)


class TestGovernorChoice:
    @pytest.fixture
    def controller(self):
        return CStateController(intel_i3_2120())

    def test_tiny_window_stays_c0(self, controller):
        assert controller.deepest_for(1e-7).name == "C0"

    def test_short_window_picks_c1(self, controller):
        assert controller.deepest_for(10e-6).name == "C1"

    def test_medium_window_picks_c3(self, controller):
        assert controller.deepest_for(200e-6).name == "C3"

    def test_long_window_picks_c6(self, controller):
        assert controller.deepest_for(0.01).name == "C6"

    def test_shallow_spec_caps_depth(self):
        controller = CStateController(intel_core2duo_e6600())
        assert controller.deepest_for(1.0).name == "C1"

    def test_idle_power_fraction_matches_choice(self, controller):
        assert controller.idle_power_fraction(0.01) == pytest.approx(
            CSTATE_CATALOG["C6"].power_fraction)


class TestResidencyAccounting:
    @pytest.fixture
    def controller(self):
        return CStateController(intel_i3_2120())

    def test_fully_busy_counts_c0(self, controller):
        controller.account(0, busy_fraction=1.0, dt_s=0.01,
                           expected_idle_s=0.0)
        assert controller.residency(0, "C0") == pytest.approx(0.01)
        assert controller.residency(0, "C6") == 0.0

    def test_half_busy_splits_time(self, controller):
        controller.account(0, busy_fraction=0.5, dt_s=0.02,
                           expected_idle_s=0.01)
        assert controller.residency(0, "C0") == pytest.approx(0.01)
        assert controller.residency(0, "C6") == pytest.approx(0.01)

    def test_residency_accumulates(self, controller):
        for _ in range(5):
            controller.account(1, busy_fraction=0.0, dt_s=0.01,
                               expected_idle_s=0.01)
        assert controller.residency(1, "C6") == pytest.approx(0.05)

    def test_current_state_tracked(self, controller):
        controller.account(2, busy_fraction=0.0, dt_s=0.01,
                           expected_idle_s=0.01)
        assert controller.current_state(2) == "C6"
        controller.account(2, busy_fraction=1.0, dt_s=0.01,
                           expected_idle_s=0.0)
        assert controller.current_state(2) == "C0"

    def test_rejects_bad_busy_fraction(self, controller):
        with pytest.raises(ConfigurationError):
            controller.account(0, busy_fraction=1.5, dt_s=0.01,
                               expected_idle_s=0.0)

    def test_rejects_unknown_residency(self, controller):
        with pytest.raises(ConfigurationError):
            controller.residency(0, "C9")

    def test_per_cpu_isolation(self, controller):
        controller.account(0, busy_fraction=1.0, dt_s=0.01,
                           expected_idle_s=0.0)
        assert controller.residency(1, "C0") == 0.0

    def test_returned_state_is_chosen_idle_state(self, controller):
        state = controller.account(0, busy_fraction=0.3, dt_s=0.01,
                                   expected_idle_s=0.0002)
        assert state.name == "C3"


class TestSpecValidation:
    def test_unknown_cstate_rejected(self):
        from repro.simcpu.spec import intel_i3_2120
        import dataclasses
        spec = dataclasses.replace(intel_i3_2120(), cstates=("C0", "C9"))
        with pytest.raises(ConfigurationError):
            CStateController(spec)

    def test_first_state_must_be_c0(self):
        import dataclasses
        spec = dataclasses.replace(intel_i3_2120(), cstates=("C1", "C3"))
        with pytest.raises(ConfigurationError):
            CStateController(spec)

"""Unit tests for repro.core.model (PowerModel and the published preset)."""

import pytest

from repro.core.model import (FrequencyFormula, PowerModel,
                              published_i3_2120_model)
from repro.errors import ConfigurationError, ModelError
from repro.units import ghz


def trio_formula(frequency, i=2.22e-9, r=2.48e-8, m=1.87e-7):
    return FrequencyFormula(frequency_hz=frequency, coefficients={
        "instructions": i, "cache-references": r, "cache-misses": m})


@pytest.fixture
def model():
    return PowerModel(idle_w=31.48, formulas=[
        trio_formula(ghz(1.6), i=1e-9, r=1e-8, m=1e-7),
        trio_formula(ghz(3.3)),
    ])


class TestFrequencyFormula:
    def test_predict_linear_combination(self):
        formula = trio_formula(ghz(3.3))
        rates = {"instructions": 1e9, "cache-references": 1e8,
                 "cache-misses": 1e7}
        expected = 2.22 + 2.48 + 1.87
        assert formula.predict(rates) == pytest.approx(expected)

    def test_missing_rates_are_zero(self):
        formula = trio_formula(ghz(3.3))
        assert formula.predict({}) == 0.0

    def test_negative_prediction_clamped(self):
        formula = FrequencyFormula(ghz(1.0), {"instructions": -1.0})
        assert formula.predict({"instructions": 5.0}) == 0.0

    def test_rejects_empty_coefficients(self):
        with pytest.raises(ConfigurationError):
            FrequencyFormula(ghz(1.0), {})

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            FrequencyFormula(0, {"instructions": 1.0})


class TestPowerModel:
    def test_frequencies_sorted(self, model):
        assert model.frequencies_hz == (ghz(1.6), ghz(3.3))

    def test_events_union(self, model):
        assert set(model.events) == {"instructions", "cache-references",
                                     "cache-misses"}

    def test_exact_formula_lookup(self, model):
        assert model.formula(ghz(3.3)).frequency_hz == ghz(3.3)

    def test_missing_formula_raises(self, model):
        with pytest.raises(ModelError):
            model.formula(ghz(2.0))

    def test_nearest_formula(self, model):
        assert model.nearest_formula(ghz(3.0)).frequency_hz == ghz(3.3)
        assert model.nearest_formula(ghz(1.0)).frequency_hz == ghz(1.6)

    def test_predict_total_adds_idle(self, model):
        rates = {"instructions": 1e9}
        active = model.predict_active(ghz(3.3), rates)
        assert model.predict_total(ghz(3.3), rates) == pytest.approx(
            31.48 + active)

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_w=30, formulas=[trio_formula(ghz(1.6)),
                                            trio_formula(ghz(1.6))])

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_w=-1, formulas=[trio_formula(ghz(1.6))])

    def test_rejects_no_formulas(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_w=30, formulas=[])


class TestSerialization:
    def test_dict_roundtrip(self, model):
        clone = PowerModel.from_dict(model.to_dict())
        assert clone.idle_w == model.idle_w
        assert clone.frequencies_hz == model.frequencies_hz
        rates = {"instructions": 1e9, "cache-misses": 1e7}
        assert clone.predict_total(ghz(3.3), rates) == pytest.approx(
            model.predict_total(ghz(3.3), rates))

    def test_json_roundtrip(self, model):
        clone = PowerModel.from_json(model.to_json())
        assert clone.frequencies_hz == model.frequencies_hz

    def test_malformed_dict(self):
        with pytest.raises(ModelError):
            PowerModel.from_dict({"idle_w": 1.0})

    def test_malformed_json(self):
        with pytest.raises(ModelError):
            PowerModel.from_json("{not json")

    def test_name_preserved(self, model):
        assert PowerModel.from_json(model.to_json()).name == model.name


class TestPublishedModel:
    """The paper's published i3-2120 equation."""

    @pytest.fixture
    def published(self):
        return published_i3_2120_model()

    def test_idle_constant(self, published):
        assert published.idle_w == pytest.approx(31.48)

    def test_top_frequency_coefficients(self, published):
        formula = published.formula(ghz(3.3))
        assert formula.coefficients["instructions"] == pytest.approx(2.22e-9)
        assert formula.coefficients["cache-references"] == pytest.approx(2.48e-8)
        assert formula.coefficients["cache-misses"] == pytest.approx(1.87e-7)

    def test_covers_dvfs_ladder(self, published):
        assert published.frequencies_hz[0] == ghz(1.6)
        assert published.frequencies_hz[-1] == ghz(3.3)
        assert len(published.frequencies_hz) == 10

    def test_lower_frequencies_scaled_down(self, published):
        low = published.formula(ghz(1.6)).coefficients["instructions"]
        high = published.formula(ghz(3.3)).coefficients["instructions"]
        assert low < high

    def test_cache_activities_lead_consumption(self, published):
        # The paper observes cache coefficients dominate per-event cost.
        formula = published.formula(ghz(3.3))
        assert (formula.coefficients["cache-misses"]
                > formula.coefficients["cache-references"]
                > formula.coefficients["instructions"])

    def test_equation_text_mentions_constant(self, published):
        text = published.equation_text()
        assert "31.48" in text
        assert "Power_3.30" in text

"""Unit tests for the PowerSpy wire protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PowerMeterError
from repro.powermeter.base import PowerSample
from repro.powermeter.protocol import (FrameDecoder, PowerSpyLink,
                                       decode_frame, encode_frame,
                                       roundtrip)


class TestEncoding:
    def test_frame_shape(self):
        frame = encode_frame(PowerSample(time_s=1.234, power_w=31.48))
        assert frame.startswith("<")
        assert frame.endswith(">\r\n")
        body = frame[1:-3]
        assert len(body.split(" ")) == 3

    def test_roundtrip_exact(self):
        sample = PowerSample(time_s=12.345, power_w=56.789)
        decoded = decode_frame(encode_frame(sample))
        assert decoded.time_s == pytest.approx(sample.time_s, abs=1e-3)
        assert decoded.power_w == pytest.approx(sample.power_w, abs=1e-3)

    def test_out_of_range_rejected(self):
        with pytest.raises(PowerMeterError):
            encode_frame(PowerSample(time_s=2 ** 33, power_w=1.0))


class TestDecoding:
    def test_missing_delimiters(self):
        with pytest.raises(PowerMeterError):
            decode_frame("00000001 00000002 03")

    def test_wrong_field_count(self):
        with pytest.raises(PowerMeterError):
            decode_frame("<0000000100000002 03>")

    def test_checksum_mismatch(self):
        frame = encode_frame(PowerSample(time_s=1.0, power_w=30.0))
        corrupted = frame.replace(frame[2], "F", 1)
        with pytest.raises(PowerMeterError):
            decode_frame(corrupted)

    def test_non_hex_rejected(self):
        with pytest.raises(PowerMeterError):
            decode_frame("<0000000Z 00000002 XX>")

    def test_field_width_enforced(self):
        with pytest.raises(PowerMeterError):
            decode_frame("<001 00000002 32>")


class TestFrameDecoder:
    def test_split_chunks_reassembled(self):
        frame = encode_frame(PowerSample(time_s=1.0, power_w=30.0))
        decoder = FrameDecoder()
        assert decoder.feed(frame[:7]) == []
        samples = decoder.feed(frame[7:])
        assert len(samples) == 1
        assert decoder.frames_decoded == 1

    def test_corrupted_frames_dropped_not_fatal(self):
        good = encode_frame(PowerSample(time_s=1.0, power_w=30.0))
        bad = "<DEADBEEF GARBAGE! 00>\r\n"
        decoder = FrameDecoder()
        samples = decoder.feed(bad + good)
        assert len(samples) == 1
        assert decoder.frames_dropped == 1

    def test_garbage_without_crlf_bounded(self):
        decoder = FrameDecoder()
        decoder.feed("x" * 5000)
        assert len(decoder._buffer) <= 1024

    def test_multiple_frames_one_chunk(self):
        samples_in = [PowerSample(time_s=float(i), power_w=30.0 + i)
                      for i in range(5)]
        text = "".join(encode_frame(s) for s in samples_in)
        decoder = FrameDecoder()
        samples_out = decoder.feed(text)
        assert [s.power_w for s in samples_out] == pytest.approx(
            [s.power_w for s in samples_in])


class TestLink:
    def test_lossless_at_zero_corruption(self):
        samples = [PowerSample(time_s=float(i), power_w=30.0 + i)
                   for i in range(50)]
        survivors, dropped = roundtrip(samples, corruption_rate=0.0)
        assert dropped == 0
        assert len(survivors) == 50

    def test_corruption_drops_but_stream_survives(self):
        samples = [PowerSample(time_s=float(i), power_w=30.0)
                   for i in range(200)]
        survivors, dropped = roundtrip(samples, corruption_rate=0.1,
                                       seed=3)
        assert dropped > 0
        assert len(survivors) + dropped == 200
        assert len(survivors) > 150

    def test_rejects_bad_rate(self):
        with pytest.raises(PowerMeterError):
            PowerSpyLink(corruption_rate=1.0)

    @given(time_s=st.floats(0, 4_000_000, allow_nan=False),
           power_w=st.floats(0, 4_000_000, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, time_s, power_w):
        sample = PowerSample(time_s=time_s, power_w=power_w)
        decoded = decode_frame(encode_frame(sample))
        assert decoded.time_s == pytest.approx(sample.time_s, abs=1e-3)
        assert decoded.power_w == pytest.approx(sample.power_w, abs=1e-3)

"""Unit tests for cgroups and container-level power aggregation."""

import pytest

from repro.core.cgroup_monitor import (CgroupAggregator, CgroupPowerReport,
                                       InMemoryCgroupReporter)
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.errors import ConfigurationError, ProcessError
from repro.os.cgroups import ROOT, CgroupTree
from repro.os.kernel import SimKernel
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress


class TestCgroupTree:
    def test_root_exists(self):
        tree = CgroupTree()
        assert ROOT in tree.groups()

    def test_create_and_list(self):
        tree = CgroupTree()
        tree.create("web")
        tree.create("batch")
        assert tree.groups() == (ROOT, "batch", "web")

    def test_create_root_rejected(self):
        with pytest.raises(ConfigurationError):
            CgroupTree().create(ROOT)

    def test_attach_implicitly_creates(self):
        tree = CgroupTree()
        tree.attach(100, "web")
        assert tree.group_of(100) == "web"
        assert tree.members("web") == (100,)

    def test_unattached_pid_is_root(self):
        assert CgroupTree().group_of(12345) == ROOT

    def test_move_between_groups(self):
        tree = CgroupTree()
        tree.attach(100, "web")
        tree.attach(100, "batch")
        assert tree.group_of(100) == "batch"
        assert tree.members("web") == ()

    def test_detach_returns_to_root(self):
        tree = CgroupTree()
        tree.attach(100, "web")
        tree.detach(100)
        assert tree.group_of(100) == ROOT

    def test_remove_rehomes_members(self):
        tree = CgroupTree()
        tree.attach(100, "web")
        tree.remove("web")
        assert tree.group_of(100) == ROOT
        assert "web" not in tree.groups()

    def test_remove_root_rejected(self):
        with pytest.raises(ConfigurationError):
            CgroupTree().remove(ROOT)

    def test_negative_pid_rejected(self):
        with pytest.raises(ProcessError):
            CgroupTree().attach(-1, "web")

    def test_members_of_unknown_group(self):
        with pytest.raises(ConfigurationError):
            CgroupTree().members("nope")


@pytest.fixture
def model():
    spec = intel_i3_2120()
    return PowerModel(idle_w=31.48, formulas=[
        FrequencyFormula(f, {"instructions": 3e-9})
        for f in spec.frequencies_hz])


class TestCgroupAggregation:
    def test_container_view_end_to_end(self, model):
        spec = intel_i3_2120()
        kernel = SimKernel(spec, quantum_s=0.02)
        web_a = kernel.spawn(CpuStress(utilization=0.8, duration_s=100.0))
        web_b = kernel.spawn(CpuStress(utilization=0.6, duration_s=100.0))
        batch = kernel.spawn(CpuStress(utilization=0.3, duration_s=100.0))

        tree = CgroupTree()
        tree.attach(web_a, "web")
        tree.attach(web_b, "web")
        tree.attach(batch, "batch")

        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(web_a, web_b, batch).every(0.5).to(InMemoryReporter())
        aggregator = CgroupAggregator(tree, idle_w=model.idle_w)
        reporter = InMemoryCgroupReporter()
        api.system.spawn(aggregator, name="cgroup-agg")
        api.system.spawn(reporter, name="cgroup-rep")
        api.run(3.0)
        api.flush()

        assert reporter.reports
        last = reporter.reports[-1]
        assert set(last.groups()) == {"web", "batch"}
        # web runs 1.4 CPUs worth of work vs batch's 0.3.
        assert last.by_group["web"] > 2 * last.by_group["batch"]
        assert last.total_w == pytest.approx(
            last.idle_w + last.active_w)
        api.shutdown()

    def test_energy_accumulates_per_group(self, model):
        spec = intel_i3_2120()
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        tree = CgroupTree()
        tree.attach(pid, "only")
        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(pid).every(0.5).to(InMemoryReporter())
        aggregator = CgroupAggregator(tree, idle_w=model.idle_w)
        api.system.spawn(aggregator, name="cgroup-agg")
        api.run(2.0)
        api.flush()
        assert aggregator.energy_by_group_j["only"] > 1.0
        api.shutdown()

    def test_unattached_pids_land_in_root(self, model):
        spec = intel_i3_2120()
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        tree = CgroupTree()  # pid never attached
        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(pid).every(0.5).to(InMemoryReporter())
        aggregator = CgroupAggregator(tree, idle_w=model.idle_w)
        reporter = InMemoryCgroupReporter()
        api.system.spawn(aggregator, name="agg")
        api.system.spawn(reporter, name="rep")
        api.run(2.0)
        api.flush()
        assert reporter.reports[-1].groups() == (ROOT,)
        api.shutdown()

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            CgroupAggregator(CgroupTree(), idle_w=-1.0)

    def test_moving_pid_moves_future_power(self, model):
        spec = intel_i3_2120()
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        tree = CgroupTree()
        tree.attach(pid, "before")
        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(pid).every(0.5).to(InMemoryReporter())
        aggregator = CgroupAggregator(tree, idle_w=model.idle_w)
        reporter = InMemoryCgroupReporter()
        api.system.spawn(aggregator, name="agg")
        api.system.spawn(reporter, name="rep")
        api.run(1.0)
        tree.attach(pid, "after")
        api.run(1.0)
        api.flush()
        first = reporter.reports[0]
        last = reporter.reports[-1]
        assert "before" in first.by_group
        assert "after" in last.by_group
        assert "before" not in last.by_group
        api.shutdown()

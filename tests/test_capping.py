"""Unit tests for estimate-driven power capping."""

import pytest

from repro.core.capping import (CappingGovernor, run_capped, solar_budget)
from repro.core.model import FrequencyFormula, PowerModel
from repro.errors import ConfigurationError
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import intel_i3_2120
from repro.simcpu.topology import Topology
from repro.workloads.stress import CpuStress


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def model(spec):
    # A reasonable model for the i3: scales with frequency like the
    # published one.
    formulas = []
    for frequency in spec.frequencies_hz:
        scale = (frequency / spec.max_frequency_hz) ** 3
        formulas.append(FrequencyFormula(frequency, {
            "instructions": 2.8e-9 * scale,
            "cache-references": 3.8e-8 * scale,
            "cache-misses": 3.5e-7 * scale,
        }))
    return PowerModel(idle_w=31.48, formulas=formulas, name="cap-model")


def make_governor(spec, budget, **kwargs):
    topology = Topology(spec)
    domain = FrequencyDomain(spec)
    return CappingGovernor(spec, topology, domain, budget, **kwargs), domain


class TestCappingGovernor:
    def test_starts_at_max_frequency(self, spec):
        governor, domain = make_governor(spec, 45.0)
        governor.update({})
        assert domain.target(0, 0) == spec.max_frequency_hz

    def test_steps_down_when_over_budget(self, spec):
        from repro.core.messages import AggregatedPowerReport
        governor, domain = make_governor(spec, 40.0)
        governor.observe_report(AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 20.0}, idle_w=31.48,
            formula="f"))
        governor.update({})
        assert domain.target(0, 0) < spec.max_frequency_hz

    def test_steps_up_when_far_below_budget(self, spec):
        from repro.core.messages import AggregatedPowerReport
        governor, domain = make_governor(spec, 60.0, headroom_w=2.0)
        # Push it down twice first.
        for _ in range(2):
            governor.observe_report(AggregatedPowerReport(
                time_s=1.0, period_s=1.0, by_pid={1: 40.0}, idle_w=31.48,
                formula="f"))
            governor.update({})
        down = domain.target(0, 0)
        # Stepping back up takes `up_patience` consecutive low readings.
        for step in range(governor.up_patience):
            governor.observe_report(AggregatedPowerReport(
                time_s=3.0 + step, period_s=1.0, by_pid={1: 2.0},
                idle_w=31.48, formula="f"))
            governor.update({})
        assert domain.target(0, 0) > down

    def test_hysteresis_holds_frequency(self, spec):
        from repro.core.messages import AggregatedPowerReport
        governor, domain = make_governor(spec, 40.0, headroom_w=5.0)
        governor.observe_report(AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 20.0}, idle_w=31.48,
            formula="f"))
        governor.update({})
        held = domain.target(0, 0)
        # Estimate inside the [budget - headroom, budget] band: no change.
        governor.observe_report(AggregatedPowerReport(
            time_s=2.0, period_s=1.0, by_pid={1: 6.0}, idle_w=31.48,
            formula="f"))
        governor.update({})
        assert domain.target(0, 0) == held

    def test_never_leaves_ladder(self, spec):
        from repro.core.messages import AggregatedPowerReport
        governor, domain = make_governor(spec, 10.0)
        for step in range(30):
            governor.observe_report(AggregatedPowerReport(
                time_s=float(step), period_s=1.0, by_pid={1: 50.0},
                idle_w=31.48, formula="f"))
            governor.update({})
        assert domain.target(0, 0) == spec.min_frequency_hz

    def test_rejects_negative_headroom(self, spec):
        with pytest.raises(ConfigurationError):
            make_governor(spec, 40.0, headroom_w=-1.0)


class TestRunCapped:
    def test_cap_respected(self, spec, model):
        capped = run_capped(
            spec, model, [CpuStress(utilization=1.0, threads=4,
                                    duration_s=1000.0)],
            budget=45.0, duration_s=20.0, period_s=0.5)
        # After convergence the estimates stay at/under the cap almost
        # always (the first seconds may overshoot while stepping down).
        assert capped.overshoot_fraction(tolerance_w=1.0) < 0.25

    def test_cap_costs_throughput(self, spec, model):
        free = run_capped(
            spec, model, [CpuStress(utilization=1.0, threads=4,
                                    duration_s=1000.0)],
            budget=1000.0, duration_s=15.0, period_s=0.5)
        capped = run_capped(
            spec, model, [CpuStress(utilization=1.0, threads=4,
                                    duration_s=1000.0)],
            budget=42.0, duration_s=15.0, period_s=0.5)
        assert capped.instructions < free.instructions
        assert capped.true_energy_j < free.true_energy_j

    def test_frequency_trace_descends_under_tight_cap(self, spec, model):
        capped = run_capped(
            spec, model, [CpuStress(utilization=1.0, threads=4,
                                    duration_s=1000.0)],
            budget=38.0, duration_s=10.0, period_s=0.5)
        assert capped.frequency_trace_hz[-1] < spec.max_frequency_hz

    def test_rejects_bad_duration(self, spec, model):
        with pytest.raises(ConfigurationError):
            run_capped(spec, model, [CpuStress()], budget=40.0,
                       duration_s=0.0)


class TestSolarBudget:
    def test_oscillates_between_floor_and_peak(self):
        budget = solar_budget(peak_w=60.0, floor_w=35.0, period_s=100.0)
        values = [budget(t) for t in range(0, 100, 5)]
        assert min(values) >= 34.9
        assert max(values) <= 60.1
        assert max(values) - min(values) > 20.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            solar_budget(peak_w=30.0, floor_w=40.0)

    def test_time_varying_cap_followed(self, spec, model):
        budget = solar_budget(peak_w=55.0, floor_w=38.0, period_s=20.0)
        result = run_capped(
            spec, model, [CpuStress(utilization=1.0, threads=4,
                                    duration_s=1000.0)],
            budget=budget, duration_s=30.0, period_s=0.5)
        # The frequency trace must actually move with the budget.
        assert len(set(result.frequency_trace_hz)) >= 3
        assert result.overshoot_fraction(tolerance_w=2.0) < 0.35

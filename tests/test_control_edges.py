"""Edge cases for the closed control loop (repro.control).

The hard corners of cap control: caps no actuation can reach, caps
changed or removed while the loop is mid-escalation, degraded (gap)
periods that must freeze the loop, and the control loop running through
a fault-injection campaign.
"""

import pytest

from repro.core.messages import AggregatedPowerReport
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.os.kernel import SimKernel
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress

pytestmark = pytest.mark.control


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def model(spec):
    formulas = []
    for frequency in spec.frequencies_hz:
        scale = (frequency / spec.max_frequency_hz) ** 3
        formulas.append(FrequencyFormula(frequency, {
            "instructions": 2.8e-9 * scale,
            "cache-references": 3.8e-8 * scale,
            "cache-misses": 3.5e-7 * scale,
        }))
    return PowerModel(idle_w=31.48, formulas=formulas, name="edge-model")


def start(spec, model, cap_w, *, builder_hook=None, threads=4,
          quantum_s=0.02, **cap_kwargs):
    kernel = SimKernel(spec, quantum_s=quantum_s)
    pid = kernel.spawn(CpuStress(utilization=1.0, threads=threads,
                                 duration_s=120), name="workload")
    api = PowerAPI(kernel, model, period_s=0.5)
    memory = InMemoryReporter()
    builder = api.monitor(pid).every(0.5).cap(cap_w, **cap_kwargs)
    if builder_hook is not None:
        builder = builder_hook(builder)
    handle = builder.to(memory)
    return api, kernel, handle, memory


class TestUnattainableCap:
    def test_cap_below_idle_floor_reports_once(self, spec, model):
        # idle_w is 31.48 W: a 20 W cap is below the floor of what any
        # actuation can reach.  The loop must say so once, not actuate
        # and not spam.
        api, _kernel, handle, _memory = start(spec, model, 20.0)
        api.run(15.0)
        api.shutdown()
        actions = [e.action for e in handle.control.events]
        assert actions.count("unattainable") == 1
        assert "step-down" not in actions
        assert "throttle" not in actions
        assert "idle floor" in handle.control.events[0].detail

    def test_unattainable_event_reaches_health_log(self, spec, model):
        api, _kernel, handle, _memory = start(spec, model, 20.0)
        api.run(10.0)
        api.shutdown()
        assert any(event.kind == "cap-unattainable"
                   for event in handle.health)

    def test_exhausted_actuation_reports_unattainable(self, spec, model):
        # A cap a hair above idle: even the frequency floor plus a
        # fully throttled process table still overshoots, so after the
        # ladder and the nice levels run out the loop declares it.
        api, _kernel, handle, _memory = start(
            spec, model, 31.50, grace_periods=0)
        api.run(60.0)
        api.shutdown()
        actions = [e.action for e in handle.control.events]
        assert "unattainable" in actions
        assert actions.count("unattainable") == 1
        # It did try everything first.
        assert "step-down" in actions and "throttle" in actions

    def test_raising_unattainable_cap_recovers(self, spec, model):
        api, _kernel, handle, memory = start(spec, model, 20.0)
        api.run(10.0)
        handle.set_cap(45.0)
        api.run(25.0)
        api.shutdown()
        actions = [e.action for e in handle.control.events]
        assert "unattainable" in actions
        assert "cap-set" in actions
        # The new, reachable cap is then actually held.
        steady = memory.total_series()[-10:]
        assert sum(steady) / len(steady) <= 45.0 * 1.05


class TestMidRunChanges:
    def test_cap_raised_mid_run_releases_pressure(self, spec, model):
        api, _kernel, handle, memory = start(spec, model, 38.0)
        api.run(25.0)
        down_events = [e for e in handle.control.events
                       if e.action == "step-down"]
        assert down_events
        handle.set_cap(60.0)
        api.run(25.0)
        api.shutdown()
        ups = [e for e in handle.control.events if e.action == "step-up"]
        assert ups, "raising the cap must walk the ceiling back up"
        # With 60 W of headroom the workload returns to (near) full
        # power: clearly above what the 38 W regime allowed.
        steady = memory.total_series()[-10:]
        assert sum(steady) / len(steady) > 45.0

    def test_cap_removed_mid_run_restores_uncapped_power(self, spec, model):
        api, kernel, handle, memory = start(spec, model, 38.0)
        api.run(25.0)
        assert type(kernel.governor).__name__ == "CeilingGovernor"
        handle.set_cap(None)
        api.run(15.0)
        api.shutdown()
        # The wrapper came off with the cap (Performance is the
        # kernel's default governor).
        assert type(kernel.governor).__name__ == "PerformanceGovernor"
        assert handle.control.events[-1].action == "cap-removed"
        steady = memory.total_series()[-10:]
        uncapped = sum(steady) / len(steady)
        assert uncapped > 45.0

    def test_lowering_cap_mid_run_escalates_further(self, spec, model):
        api, _kernel, handle, memory = start(spec, model, 48.0)
        api.run(20.0)
        levels_before = handle.control.actuator.level
        handle.set_cap(38.0)
        api.run(20.0)
        # Read the level before shutdown: stopping the actor releases
        # the actuator and resets the ladder.
        assert handle.control.actuator.level < levels_before
        api.shutdown()
        steady = memory.total_series()[-10:]
        assert sum(steady) / len(steady) <= 38.0 * 1.05

    def test_throttled_processes_restored_on_cap_removal(self, spec, model):
        # Force throttling with a cap only reachable by nice pressure,
        # then remove the cap: every touched process must be back at
        # its original nice.
        api, kernel, handle, _memory = start(
            spec, model, 33.0, grace_periods=0)
        api.run(40.0)
        pid = handle.pids[0]
        if not any(e.action == "throttle" for e in handle.control.events):
            pytest.skip("cap never forced throttling in this scenario")
        assert kernel.process(pid).nice > 0
        handle.set_cap(None)
        api.run(1.0)
        api.shutdown()
        assert kernel.process(pid).nice == 0


class TestDegradedMode:
    def test_gap_periods_freeze_the_loop(self, spec, model):
        # Knock the HPC sensor out (no degradation ladder, so the
        # periods in the hole arrive as gap=True reports).  The loop
        # must not actuate on a gap: estimates there say nothing.
        api, _kernel, handle, memory = start(
            spec, model, 500.0,
            builder_hook=lambda b: (b.without_degradation()
                                    .with_faults("hpc-loss@4:6")))
        api.run(12.0)
        api.shutdown()
        assert any(memory.gap_series()), "fault produced no gap periods"
        assert handle.control.events == []

    def test_loop_resumes_after_gap(self, spec, model):
        api, _kernel, handle, memory = start(
            spec, model, 40.0,
            builder_hook=lambda b: (b.without_degradation()
                                    .with_faults("hpc-loss@2:3")))
        api.run(30.0)
        api.shutdown()
        assert any(memory.gap_series())
        # After the sensor comes back the cap is enforced again.
        assert any(e.action == "step-down" for e in handle.control.events)
        steady = memory.total_series()[-10:]
        assert sum(steady) / len(steady) <= 40.0 * 1.05

    def test_degraded_formula_estimates_still_drive_the_loop(self, spec,
                                                             model):
        # With the degradation ladder on, a long HPC outage falls back
        # to the cpu-load formula (gap=False, degraded mode).  Those
        # estimates are real, so control keeps working on them.
        api, _kernel, handle, _memory = start(
            spec, model, 40.0,
            builder_hook=lambda b: (
                b.with_degradation(degrade_after=2, recover_after=4)
                .with_faults("hpc-loss@3:20")))
        api.run(20.0)
        api.shutdown()
        assert any(event.kind == "degraded" for event in handle.health)
        after_degrade = [e for e in handle.control.events if e.time_s > 5.0]
        assert after_degrade, "loop stalled while degraded"


class TestControlWithFaults:
    CAMPAIGN = "starve@4:2;hpc-loss@8:1;meter-dropout@11:1.5"

    def test_cap_held_through_fault_campaign(self, spec, model):
        api, _kernel, handle, memory = start(
            spec, model, 40.0,
            builder_hook=lambda b: b.with_faults(self.CAMPAIGN))
        api.run(30.0)
        api.shutdown()
        kinds = [event.kind for event in handle.health]
        assert "fault-injected" in kinds
        assert any(e.action == "step-down" for e in handle.control.events)
        steady = memory.total_series()[-12:]
        mean = sum(steady) / len(steady)
        assert mean <= 40.0 * 1.05, mean

    def test_campaign_with_control_is_deterministic(self, spec, model):
        def run_once():
            api, _kernel, handle, memory = start(
                spec, model, 40.0,
                builder_hook=lambda b: b.with_faults(self.CAMPAIGN))
            api.run(20.0)
            result = (handle.health.signature(),
                      tuple(memory.total_series()),
                      tuple((e.action, e.time_s, e.level)
                            for e in handle.control.events))
            api.shutdown()
            return result

        assert run_once() == run_once()

    def test_pid_exit_under_cap_control(self, spec, model):
        # The capped workload dies mid-run: the loop must not crash on
        # reports that no longer contain it and de-escalates as power
        # falls to idle.
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                     duration_s=120), name="doomed")
        api = PowerAPI(kernel, model, period_s=0.5)
        memory = InMemoryReporter()
        handle = (api.monitor(pid).every(0.5).cap(40.0)
                  .to(memory))
        api.run(10.0)
        assert any(e.action == "step-down" for e in handle.control.events)
        kernel.kill(pid)
        api.run(10.0)
        api.shutdown()
        assert any(e.action == "step-up" for e in handle.control.events)
        assert memory.total_series()[-1] <= 40.0

"""Unit tests for the sysfs view and the diurnal web-server workload."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.os.kernel import SimKernel
from repro.os.sysfs import SysFs
from repro.simcpu.machine import Machine
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz
from repro.workloads.stress import CpuStress
from repro.workloads.webserver import WebServerWorkload


@pytest.fixture
def machine():
    return Machine(intel_i3_2120())


class TestSysFsCpufreq:
    def test_available_frequencies_khz(self, machine):
        sysfs = SysFs(machine)
        listed = sysfs.scaling_available_frequencies(0).split()
        assert listed[0] == str(ghz(1.6) // 1000)
        assert listed[-1] == str(ghz(3.3) // 1000)

    def test_cur_freq_before_any_step(self, machine):
        sysfs = SysFs(machine)
        assert sysfs.scaling_cur_freq(0) == str(ghz(1.6) // 1000)

    def test_cur_freq_tracks_granted(self, machine):
        machine.set_frequency(ghz(3.3))
        machine.step([], 0.01)
        assert SysFs(machine).scaling_cur_freq(0) == str(ghz(3.3) // 1000)

    def test_min_max(self, machine):
        sysfs = SysFs(machine)
        assert sysfs.scaling_min_freq(0) == str(ghz(1.6) // 1000)
        assert sysfs.scaling_max_freq(0) == str(ghz(3.3) // 1000)

    def test_unknown_cpu_rejected(self, machine):
        with pytest.raises(TopologyError):
            SysFs(machine).scaling_cur_freq(99)


class TestSysFsCpuidleAndThermal:
    def test_residencies_accumulate(self, machine):
        machine.run([], 0.5, dt_s=0.01)
        residency = SysFs(machine).cpuidle_residency_us(0)
        assert residency["C6"] > 0

    def test_state_names(self, machine):
        assert SysFs(machine).cpuidle_state_names(0) == [
            "C0", "C1", "C3", "C6"]

    def test_thermal_zone_warms_under_load(self, machine):
        from repro.simcpu.caches import MemoryProfile
        from repro.simcpu.machine import ThreadAssignment
        from repro.simcpu.pipeline import InstructionMix

        sysfs = SysFs(machine)
        cold = int(sysfs.thermal_zone_temp())
        machine.set_frequency(ghz(3.3))
        assignment = ThreadAssignment(
            pid=1, cpu_id=0, busy_fraction=1.0, mix=InstructionMix(),
            memory=MemoryProfile())
        machine.run([assignment], 30.0, dt_s=0.1)
        hot = int(sysfs.thermal_zone_temp())
        assert hot > cold + 1000  # more than one degree (millidegrees)


class TestSysFsPaths:
    def test_path_reads(self, machine):
        sysfs = SysFs(machine)
        assert sysfs.read("cpu/online") == "0-3"
        assert sysfs.read("cpu/cpu0/cpufreq/scaling_min_freq") == str(
            ghz(1.6) // 1000)
        assert sysfs.read("cpu/cpu0/topology/thread_siblings_list") == "0,2"
        assert sysfs.read("thermal/thermal_zone0/temp").isdigit()

    def test_unknown_path_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            SysFs(machine).read("block/sda/queue/scheduler")

    def test_malformed_cpu_path_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            SysFs(machine).read("cpu/cpuX/cpufreq/scaling_cur_freq")


class TestWebServerWorkload:
    def test_diurnal_cycle_shape(self):
        workload = WebServerWorkload(duration_s=240, day_length_s=240,
                                     seed=1)
        night = workload.diurnal_level(0.0)
        noon = workload.diurnal_level(120.0)
        assert night == pytest.approx(workload.floor_utilization, abs=0.01)
        assert noon == pytest.approx(workload.peak_utilization, abs=0.01)

    def test_demand_bounded(self):
        workload = WebServerWorkload(duration_s=100, seed=2)
        for t in range(100):
            demand = workload.demand(float(t))
            assert workload.floor_utilization <= demand.utilization <= 1.0

    def test_finishes(self):
        workload = WebServerWorkload(duration_s=50)
        assert workload.demand(50.0) is None
        assert workload.total_duration_s() == 50.0

    def test_spikes_hit_peak(self):
        workload = WebServerWorkload(duration_s=240, day_length_s=240,
                                     spike_rate_per_day=20, seed=3)
        spiking = [t / 2 for t in range(480) if workload.in_spike(t / 2)]
        assert spiking
        # During a night-time spike, demand jumps to ~peak.
        night_spikes = [t for t in spiking
                        if workload.diurnal_level(t) < 0.3]
        if night_spikes:
            demand = workload.demand(night_spikes[0])
            assert demand.utilization > 0.5

    def test_deterministic(self):
        a = WebServerWorkload(duration_s=100, seed=5)
        b = WebServerWorkload(duration_s=100, seed=5)
        assert ([a.demand(t).utilization for t in range(0, 100, 7)]
                == [b.demand(t).utilization for t in range(0, 100, 7)])

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            WebServerWorkload(peak_utilization=0.5, floor_utilization=0.6)

    def test_runs_under_kernel(self):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.05)
        kernel.spawn(WebServerWorkload(duration_s=100, seed=6))
        records = kernel.run(5.0)
        assert any(sum(r.cpu_busy.values()) > 0 for r in records)

"""Unit tests for bootstrap statistics and model cross-validation."""

import numpy as np
import pytest

from repro.analysis.stats import (BootstrapResult, bootstrap,
                                  median_ape_interval)
from repro.core.sampling import SamplePoint, SamplingDataset
from repro.core.validation import cross_validate
from repro.errors import ConfigurationError, InsufficientDataError


class TestBootstrap:
    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(1)
        values = rng.normal(10.0, 1.0, size=200)
        result = bootstrap(values)
        assert result.low <= result.estimate <= result.high
        assert result.contains(result.estimate)

    def test_interval_narrows_with_samples(self):
        rng = np.random.default_rng(2)
        small = bootstrap(rng.normal(10, 1, size=20), seed=3)
        large = bootstrap(rng.normal(10, 1, size=2000), seed=3)
        assert large.width < small.width

    def test_deterministic_per_seed(self):
        values = list(range(50))
        a = bootstrap(values, seed=7)
        b = bootstrap(values, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_custom_statistic(self):
        values = [1.0, 2.0, 3.0, 100.0]
        mean_result = bootstrap(values, statistic=np.mean, seed=1)
        median_result = bootstrap(values, statistic=np.median, seed=1)
        assert mean_result.estimate > median_result.estimate

    def test_rejects_tiny_input(self):
        with pytest.raises(ConfigurationError):
            bootstrap([1.0])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            bootstrap([1.0, 2.0], confidence=1.5)

    def test_rejects_too_few_resamples(self):
        with pytest.raises(ConfigurationError):
            bootstrap([1.0, 2.0], resamples=10)

    def test_str_rendering(self):
        result = BootstrapResult(estimate=0.15, low=0.14, high=0.17,
                                 confidence=0.95, resamples=2000)
        assert "[0.14, 0.17]" in str(result)

    def test_median_ape_interval(self):
        measured = [100.0] * 50
        estimated = [110.0] * 25 + [95.0] * 25
        result = median_ape_interval(measured, estimated, seed=4)
        assert 0.05 <= result.estimate <= 0.10
        assert result.low <= result.estimate <= result.high


def make_dataset(noise=0.0, n_per_workload=8, seed=0):
    """Synthetic dataset: power = 30 + 2e-9*i + 1e-7*m (+ noise)."""
    rng = np.random.default_rng(seed)
    points = []
    profiles = {
        "cpu": (8e9, 1e5),
        "mem": (1e9, 5e7),
        "mixed": (4e9, 2e7),
        "light": (5e8, 1e4),
    }
    for workload, (instructions, misses) in profiles.items():
        for _ in range(n_per_workload):
            i = instructions * float(rng.uniform(0.8, 1.2))
            m = misses * float(rng.uniform(0.8, 1.2))
            power = 30.0 + 2e-9 * i + 1e-7 * m
            power += noise * float(rng.standard_normal())
            points.append(SamplePoint(
                frequency_hz=1_000_000_000, workload=workload,
                rates={"instructions": i, "cache-misses": m},
                power_w=power))
    return SamplingDataset(points, ("instructions", "cache-misses"))


class TestCrossValidation:
    def test_learnable_model_validates_well(self):
        report = cross_validate(make_dataset(noise=0.1), idle_w=30.0,
                                frequency_hz=1_000_000_000)
        assert report.pooled_median_ape < 0.05
        assert len(report.folds) == 4

    def test_folds_cover_all_workloads(self):
        report = cross_validate(make_dataset(), idle_w=30.0,
                                frequency_hz=1_000_000_000)
        assert {fold.workload for fold in report.folds} == {
            "cpu", "mem", "mixed", "light"}

    def test_worst_fold_identified(self):
        report = cross_validate(make_dataset(noise=0.5), idle_w=30.0,
                                frequency_hz=1_000_000_000)
        worst = report.worst_fold()
        assert worst.median_ape == max(f.median_ape for f in report.folds)

    def test_noise_raises_error(self):
        clean = cross_validate(make_dataset(noise=0.0), idle_w=30.0,
                               frequency_hz=1_000_000_000)
        noisy = cross_validate(make_dataset(noise=3.0), idle_w=30.0,
                               frequency_hz=1_000_000_000)
        assert noisy.pooled_median_ape > clean.pooled_median_ape

    def test_single_workload_rejected(self):
        points = [SamplePoint(1_000_000_000, "only",
                              {"instructions": float(i)}, 30.0 + i)
                  for i in range(10)]
        dataset = SamplingDataset(points, ("instructions",))
        with pytest.raises(InsufficientDataError):
            cross_validate(dataset, idle_w=30.0,
                           frequency_hz=1_000_000_000)

    def test_wrong_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            cross_validate(make_dataset(), idle_w=30.0, frequency_hz=42)

    def test_real_campaign_generalisation(self):
        """On the real simulator, out-of-sample error exceeds training fit
        but stays in a usable range."""
        from repro.core.sampling import SamplingCampaign
        from repro.simcpu.spec import intel_i3_2120
        from repro.workloads.stress import stress_matrix

        spec = intel_i3_2120()
        campaign = SamplingCampaign(
            spec, workloads=stress_matrix(
                levels=(0.5, 1.0),
                working_sets=(2 * 1024 ** 2, 64 * 1024 ** 2),
                threads=4),
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=3, settle_s=0.25, quantum_s=0.05)
        dataset = campaign.run()
        report = cross_validate(dataset, idle_w=31.48,
                                frequency_hz=spec.max_frequency_hz)
        assert 0.0 < report.pooled_median_ape < 0.35

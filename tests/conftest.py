"""Shared fixtures for the test suite.

Simulation fixtures are deliberately small (few frequencies, coarse
quanta, short durations): unit tests must stay fast.  The benchmark
harness, not the test suite, runs paper-scale campaigns.
"""

from __future__ import annotations

import pytest

from repro.simcpu import (InstructionMix, Machine, MemoryProfile,
                          ThreadAssignment, intel_core2duo_e6600,
                          intel_i3_2120, intel_xeon_smt)


@pytest.fixture
def i3_spec():
    """The paper's Table 1 machine."""
    return intel_i3_2120()


@pytest.fixture
def core2_spec():
    """Simple architecture: 2 cores, no SMT, no turbo."""
    return intel_core2duo_e6600()


@pytest.fixture
def xeon_spec():
    """SMT server part with a turbo ladder."""
    return intel_xeon_smt()


@pytest.fixture
def machine(i3_spec):
    """A fresh i3-2120 machine."""
    return Machine(i3_spec)


@pytest.fixture
def cpu_bound_assignment():
    """A fully busy CPU-bound thread on cpu0."""
    return ThreadAssignment(
        pid=100, cpu_id=0, busy_fraction=1.0,
        mix=InstructionMix(fp_fraction=0.05),
        memory=MemoryProfile(mem_ops_per_instruction=0.15,
                             working_set_bytes=8 * 1024, locality=0.99),
    )


@pytest.fixture
def memory_bound_assignment():
    """A fully busy memory-bound thread on cpu1 (other physical core)."""
    return ThreadAssignment(
        pid=101, cpu_id=1, busy_fraction=1.0,
        mix=InstructionMix(),
        memory=MemoryProfile(mem_ops_per_instruction=0.4,
                             working_set_bytes=64 * 1024 * 1024,
                             locality=0.7),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration scenario")
    config.addinivalue_line(
        "markers", "faults: fault-injection and graceful-degradation "
                   "scenarios")
    config.addinivalue_line(
        "markers", "chaos: crash-recovery and network-fault-injection "
                   "scenarios")

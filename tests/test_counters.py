"""Unit tests for repro.simcpu.counters (HPC bookkeeping)."""

import pytest

from repro.errors import ConfigurationError
from repro.simcpu import counters as ev
from repro.simcpu.counters import (ALL_EVENTS, GENERIC_TRIO, CounterBank,
                                   EventDelta)


class TestEventDelta:
    def test_add_accumulates(self):
        delta = EventDelta()
        delta.add(ev.INSTRUCTIONS, 100)
        delta.add(ev.INSTRUCTIONS, 50)
        assert delta[ev.INSTRUCTIONS] == 150

    def test_add_rejects_negative(self):
        delta = EventDelta()
        with pytest.raises(ConfigurationError):
            delta.add(ev.CYCLES, -1)

    def test_merged_with(self):
        a = EventDelta({ev.CYCLES: 10.0})
        b = {ev.CYCLES: 5.0, ev.INSTRUCTIONS: 3.0}
        merged = a.merged_with(b)
        assert merged[ev.CYCLES] == 15.0
        assert merged[ev.INSTRUCTIONS] == 3.0
        assert a[ev.CYCLES] == 10.0  # original untouched


class TestGenericTrio:
    def test_trio_contents(self):
        assert GENERIC_TRIO == (ev.INSTRUCTIONS, ev.CACHE_REFERENCES,
                                ev.CACHE_MISSES)

    def test_trio_subset_of_all(self):
        assert set(GENERIC_TRIO) <= set(ALL_EVENTS)


class TestCounterBank:
    @pytest.fixture
    def bank(self):
        bank = CounterBank()
        bank.record(100, 0, {ev.INSTRUCTIONS: 1000.0, ev.CYCLES: 2000.0})
        bank.record(100, 1, {ev.INSTRUCTIONS: 500.0})
        bank.record(200, 0, {ev.INSTRUCTIONS: 300.0})
        return bank

    def test_read_pid_cpu(self, bank):
        assert bank.read(ev.INSTRUCTIONS, pid=100, cpu_id=0) == 1000.0

    def test_read_pid_wide(self, bank):
        assert bank.read(ev.INSTRUCTIONS, pid=100) == 1500.0

    def test_read_cpu_wide(self, bank):
        assert bank.read(ev.INSTRUCTIONS, cpu_id=0) == 1300.0

    def test_read_machine_wide(self, bank):
        assert bank.read(ev.INSTRUCTIONS) == 1800.0

    def test_unrecorded_reads_zero(self, bank):
        assert bank.read(ev.CACHE_MISSES, pid=100) == 0.0

    def test_record_rejects_unknown_event(self, bank):
        with pytest.raises(ConfigurationError):
            bank.record(1, 0, {"bogus-event": 1.0})

    def test_read_rejects_unknown_event(self, bank):
        with pytest.raises(ConfigurationError):
            bank.read("bogus-event")

    def test_cpu_only_recording_skips_pid_index(self):
        bank = CounterBank()
        bank.record_cpu_only(0, {ev.REF_CYCLES: 100.0})
        assert bank.read(ev.REF_CYCLES, cpu_id=0) == 100.0
        assert bank.read(ev.REF_CYCLES) == 100.0
        assert bank.pids() == ()

    def test_pids_sorted(self, bank):
        assert bank.pids() == (100, 200)

    def test_machine_totals(self, bank):
        totals = bank.machine_totals([ev.INSTRUCTIONS, ev.CYCLES])
        assert totals == {ev.INSTRUCTIONS: 1800.0, ev.CYCLES: 2000.0}

"""Unit tests for ground-truth per-process power attribution."""

import pytest

from repro.os.kernel import SimKernel
from repro.simcpu.attribution import TrueProcessPower, attribute_power
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.counters import EventDelta
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.pipeline import InstructionMix
from repro.simcpu.power import PowerBreakdown
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz
from repro.workloads.stress import CpuStress, MemoryStress


def assignment(pid, cpu, busy=1.0, ws=8192, mem_ops=0.15, locality=0.99):
    return ThreadAssignment(
        pid=pid, cpu_id=cpu, busy_fraction=busy,
        mix=InstructionMix(),
        memory=MemoryProfile(mem_ops_per_instruction=mem_ops,
                             working_set_bytes=ws, locality=locality))


class TestAttributePower:
    def test_single_process_gets_all_active_power(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(ghz(3.3))
        record = machine.step([assignment(1, 0)], 1.0)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        active = (record.power.cores + record.power.wakeup
                  + record.power.uncore + record.power.dram)
        assert shares[1] == pytest.approx(active, rel=1e-6)

    def test_attribution_sums_to_active_power(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(ghz(3.3))
        record = machine.step(
            [assignment(1, 0), assignment(2, 1, busy=0.5),
             assignment(3, 2, ws=64 * 1024 ** 2, mem_ops=0.4, locality=0.6)],
            1.0)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        active = (record.power.cores + record.power.wakeup
                  + record.power.uncore + record.power.dram)
        assert sum(shares.values()) == pytest.approx(active, rel=1e-6)

    def test_idle_machine_attributes_nothing(self):
        machine = Machine(intel_i3_2120())
        record = machine.step([], 1.0)
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, [])
        assert shares == {}

    def test_busier_process_attributed_more(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(ghz(3.3))
        record = machine.step(
            [assignment(1, 0, busy=1.0), assignment(2, 1, busy=0.25)], 1.0)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        assert shares[1] > 3 * shares[2]

    def test_memory_bound_process_pays_for_dram(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(ghz(3.3))
        record = machine.step(
            [assignment(1, 0),  # cpu-bound
             assignment(2, 1, ws=96 * 1024 ** 2, mem_ops=0.4, locality=0.6)],
            1.0)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        # Process 2 owns virtually all cache misses, hence the DRAM power.
        dram_to_2 = record.power.dram
        assert shares[2] >= dram_to_2 * 0.9

    def test_smt_sibling_attributed_less_than_primary(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(ghz(3.3))
        # pid 1 fully busy on cpu0; pid 2 fully busy on its SMT sibling.
        record = machine.step(
            [assignment(1, 0, busy=1.0), assignment(2, 2, busy=0.6)], 1.0)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        # The sibling pays the SMT discount on top of its lower busy.
        assert shares[2] < shares[1] * 0.5

    def test_shared_cpu_split_by_cycles(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(ghz(3.3))
        record = machine.step(
            [assignment(1, 0, busy=0.6), assignment(2, 0, busy=0.2)], 1.0)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        assert shares[1] == pytest.approx(3 * shares[2], rel=0.05)


class TestTrueProcessPowerOracle:
    def test_oracle_tracks_kernel_workloads(self):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        oracle = TrueProcessPower(kernel.machine)
        heavy = kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        light = kernel.spawn(CpuStress(utilization=0.2, duration_s=100.0))
        kernel.run(5.0)
        assert oracle.duration_s == pytest.approx(5.0)
        assert oracle.energy_j(heavy) > 3 * oracle.energy_j(light)
        assert oracle.pids() == (heavy, light)

    def test_mean_power_consistent_with_energy(self):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        oracle = TrueProcessPower(kernel.machine)
        pid = kernel.spawn(MemoryStress(utilization=1.0, duration_s=100.0))
        kernel.run(4.0)
        assert oracle.mean_power_w(pid) == pytest.approx(
            oracle.energy_j(pid) / 4.0)

    def test_detach_stops_accumulation(self):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        oracle = TrueProcessPower(kernel.machine)
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        kernel.run(1.0)
        before = oracle.energy_j(pid)
        oracle.detach()
        kernel.run(1.0)
        assert oracle.energy_j(pid) == before

    def test_unknown_pid_reads_zero(self):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        oracle = TrueProcessPower(kernel.machine)
        kernel.run(0.1)
        assert oracle.energy_j(424242) == 0.0
        assert oracle.mean_power_w(424242) == 0.0

"""Fault injection and graceful degradation (repro.faults + pipeline).

Covers the fault plan/injector, the degradation ladder
(HPC → cpu-load → gap markers), supervision restart backoff, and the
pipeline-lifecycle regressions fixed alongside: the shared-clock period
conflict, rotation-state pruning under pid churn, idempotent teardown,
and the exited-pid counter isolation.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.actors.actor import Actor
from repro.actors.supervision import RestartStrategy
from repro.core.messages import GapMarker
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.errors import (ConfigurationError, CounterInvalidError,
                          SampleLossError)
from repro.faults import (ActorCrash, FaultPlan, MeterDropout, PidExit,
                          SampleLoss, SlotStarvation)
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.perf.multiplex import MultiplexScheduler
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress
from tests.strategies import default_settings, fault_plans

pytestmark = pytest.mark.faults


@pytest.fixture
def model():
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in intel_i3_2120().frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas, name="fault-model")


@pytest.fixture
def kernel():
    return SimKernel(intel_i3_2120(), quantum_s=0.02)


class GapCollector(Actor):
    """Subscribes to raw GapMarker messages (pre-aggregation)."""

    def __init__(self):
        super().__init__()
        self.markers = []

    def pre_start(self):
        self.context.system.event_bus.subscribe(GapMarker, self.self_ref)

    def receive(self, message):
        if isinstance(message, GapMarker):
            self.markers.append(message)


class TestFaultPlan:
    def test_parse_all_kinds(self):
        plan = FaultPlan.parse(
            "meter-dropout@2:1.5; pid-exit@7:1, starve@4:2:0;"
            "hpc-loss@9; crash@3:formula-0")
        assert [type(e) for e in plan] == [
            MeterDropout, ActorCrash, SlotStarvation, PidExit, SampleLoss]
        assert plan.events[0] == MeterDropout(at_s=2.0, down_s=1.5)
        assert plan.events[1] == ActorCrash(at_s=3.0, actor="formula-0")
        assert plan.events[2] == SlotStarvation(at_s=4.0, duration_s=2.0,
                                                slots=0)
        assert plan.events[3] == PidExit(at_s=7.0, index=1)
        assert plan.events[4] == SampleLoss(at_s=9.0, duration_s=1.0)

    def test_describe_roundtrips(self):
        spec = "meter-dropout@2:1.5;crash@3:formula-0;starve@4:2:0"
        plan = FaultPlan.parse(spec)
        again = FaultPlan.parse(plan.describe())
        assert again.events == plan.events

    def test_events_sorted_stably(self):
        plan = FaultPlan([SampleLoss(at_s=5.0), MeterDropout(at_s=1.0),
                          PidExit(at_s=5.0)])
        assert [type(e) for e in plan] == [MeterDropout, SampleLoss, PidExit]

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([MeterDropout(at_s=-0.1)])

    @pytest.mark.parametrize("bad", [
        "meter-dropout",          # no @time
        "warp-core-breach@3",     # unknown kind
        "meter-dropout@abc",      # unparseable time
        "crash@3",                # crash needs an actor name
        "random:notanint",        # bad seed
    ])
    def test_rejects_malformed_entries(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(bad)

    def test_random_is_seed_deterministic(self):
        assert (FaultPlan.random(42).describe()
                == FaultPlan.random(42).describe())
        assert (FaultPlan.random(42).describe()
                != FaultPlan.random(43).describe())

    def test_parse_random_entry(self):
        plan = FaultPlan.parse("random:7:20")
        assert plan.seed == 7
        assert plan.events == FaultPlan.random(7, duration_s=20.0).events
        assert all(2.0 - 1e-9 <= e.at_s <= 18.0 + 1e-9 for e in plan)

    @given(plan=fault_plans())
    @default_settings
    def test_any_plan_describes_and_reparses(self, plan):
        # describe() is the canonical serialisation: parsing it back
        # must reproduce the same (sorted) event list.
        again = FaultPlan.parse(plan.describe())
        assert again.events == plan.events

    @given(plan=fault_plans())
    @default_settings
    def test_to_spec_round_trips_losslessly(self, plan):
        # to_spec() must be lossless for *any* plan, not just times that
        # happen to print well: repr-based number formatting guarantees
        # parse(to_spec()) == plan exactly.
        again = FaultPlan.parse(plan.to_spec())
        assert again.events == plan.events

    def test_to_spec_keeps_awkward_floats(self):
        plan = FaultPlan([MeterDropout(at_s=0.1 + 0.2, down_s=1e-4)])
        assert FaultPlan.parse(plan.to_spec()).events == plan.events

    def test_parse_error_names_entry_and_position(self):
        with pytest.raises(ConfigurationError,
                           match=r"'warp@3' at position 18"):
            FaultPlan.parse("meter-dropout@2:1;warp@3")

    def test_parse_error_names_bad_argument(self):
        with pytest.raises(ConfigurationError,
                           match=r"'meter-dropout@abc' at position 0.*time"):
            FaultPlan.parse("meter-dropout@abc;crash@3:formula-0")

    def test_parse_error_rejects_extra_arguments(self):
        with pytest.raises(ConfigurationError,
                           match=r"at position 0.*argument"):
            FaultPlan.parse("pid-exit@3:1:9")


class TestMeterDropout:
    def test_dropout_reconnect_and_gap_markers(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        api.attach_meter(PowerSpy(kernel.machine, seed=1), name="meter")
        collector = GapCollector()
        api.system.spawn(collector, name="gap-collector")
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.install_faults(FaultPlan([MeterDropout(at_s=2.0, down_s=1.5)]))
        api.run(7.0)

        kinds = handle.health.kinds()
        assert "meter-dropout" in kinds
        assert "meter-reconnected" in kinds
        down = next(e for e in handle.health if e.kind == "meter-dropout")
        up = next(e for e in handle.health if e.kind == "meter-reconnected")
        # The link stays down for down_s; reconnection happens at the
        # first backoff-scheduled retry after that.
        assert up.time_s >= down.time_s + 1.5 - 1e-9
        meter_gaps = [m for m in collector.markers if m.source == "meter"]
        assert len(meter_gaps) >= 2
        # The HPC path stayed healthy, so no aggregated period is a gap.
        assert handle.reporter.gap_count() == 0

    def test_meter_samples_resume_after_reconnect(self, kernel, model):
        from repro.core.messages import PowerMeterReport

        seen = []

        class Collector(Actor):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PowerMeterReport, self.self_ref)

            def receive(self, message):
                seen.append(message)

        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        api.system.spawn(Collector(), name="collector")
        api.attach_meter(PowerSpy(kernel.machine, seed=1), name="meter")
        api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.install_faults(FaultPlan([MeterDropout(at_s=2.0, down_s=1.0)]))
        api.run(8.0)
        assert seen, "meter reports should resume after the dropout"
        assert max(r.time_s for r in seen) > 4.0


class TestPidExit:
    def test_pid_exit_marks_lost_and_keeps_others(self, kernel, model):
        doomed = kernel.spawn(CpuStress(duration_s=20.0), name="doomed")
        steady = kernel.spawn(CpuStress(duration_s=20.0), name="steady")
        api = PowerAPI(kernel, model)
        handle = api.monitor(doomed, steady).every(0.5).to(InMemoryReporter())
        api.install_faults(FaultPlan([PidExit(at_s=2.0, index=0)]))
        api.run(5.0)

        lost = [e for e in handle.health if e.kind == "pid-lost"]
        assert len(lost) == 1
        assert f"pid {doomed}" in lost[0].detail
        assert doomed not in kernel.live_pids
        # The surviving pid keeps flowing through the pipeline.
        late = [r for r in handle.reporter.aggregated if r.time_s > 3.0]
        assert late
        assert all(r.by_pid.get(steady, 0.0) > 0 for r in late)
        assert all(doomed not in r.by_pid for r in late)

    def test_counter_does_not_accumulate_other_pids_after_exit(self, kernel):
        """Regression: a counter opened on pid A, after A exits, must not
        pick up pid B's events through the ``-1`` wildcard matching path."""
        short = kernel.spawn(CpuStress(duration_s=1.0), name="short")
        kernel.spawn(CpuStress(duration_s=10.0), name="long")
        perf = PerfSession(kernel.machine)
        pinned = perf.open("instructions", pid=short)
        wildcard = perf.open("instructions", pid=-1)

        kernel.run_until_idle(max_duration_s=2.0)  # short exits, long runs on
        assert short not in kernel.live_pids
        raw_at_exit = pinned.read().raw
        wildcard_at_exit = wildcard.read().raw
        assert raw_at_exit > 0

        kernel.run(2.0)
        assert pinned.read().raw == pytest.approx(raw_at_exit)
        assert wildcard.read().raw > wildcard_at_exit  # events did flow
        perf.close()

    def test_invalidate_pid_is_esrch(self, kernel):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        perf = PerfSession(kernel.machine)
        counter = perf.open("instructions", pid=pid)
        kernel.run(0.5)
        assert perf.invalidate_pid(pid) == 1
        with pytest.raises(CounterInvalidError):
            counter.read()
        with pytest.raises(CounterInvalidError):
            perf.open("cache-misses", pid=pid)
        counter.close()  # close stays legal on a dead counter
        perf.close()


class TestSlotStarvation:
    def test_degrades_to_cpu_load_and_recovers(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.install_faults(FaultPlan(
            [SlotStarvation(at_s=1.0, duration_s=3.0, slots=0)]))

        api.run(3.0)
        assert handle.degraded
        assert handle.mode.mode == "cpu-load"
        api.run(3.0)
        assert not handle.degraded

        kinds = handle.health.kinds()
        assert "degraded" in kinds and "recovered" in kinds
        degraded = next(e for e in handle.health if e.kind == "degraded")
        recovered = next(e for e in handle.health if e.kind == "recovered")
        assert degraded.time_s < recovered.time_s
        # While degraded the fallback formula keeps estimates coming.
        during = [r for r in handle.reporter.aggregated
                  if degraded.time_s <= r.time_s < recovered.time_s
                  and not r.gap]
        assert during
        assert all(r.total_w > model.idle_w for r in during)

    def test_without_degradation_gaps_persist(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        handle = (api.monitor(pid).every(0.5).without_degradation()
                  .to(InMemoryReporter()))
        api.install_faults(FaultPlan(
            [SlotStarvation(at_s=1.0, duration_s=3.0, slots=0)]))
        api.run(6.0)
        assert handle.mode is None
        assert "degraded" not in handle.health.kinds()
        gaps = [r for r in handle.reporter.aggregated if r.gap]
        assert len(gaps) >= 4
        assert all(r.formula.startswith("gap:") for r in gaps)
        assert all(not r.by_pid for r in gaps)


class TestSampleLoss:
    def test_short_loss_yields_gaps_without_degrading(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.install_faults(FaultPlan([SampleLoss(at_s=1.0, duration_s=1.0)]))
        api.run(4.0)
        # Two missing periods: marked gaps, but below degrade_after=3.
        assert handle.reporter.gap_count() >= 1
        assert "degraded" not in handle.health.kinds()
        assert not handle.degraded

    def test_sample_loss_error_at_perf_level(self, kernel):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        perf = PerfSession(kernel.machine)
        counter = perf.open("instructions", pid=pid)
        perf.set_sample_loss(True)
        with pytest.raises(SampleLossError):
            counter.read()
        perf.set_sample_loss(False)
        assert counter.read() is not None
        perf.close()


class TestActorCrash:
    def test_backoff_schedule_values(self):
        strategy = RestartStrategy(backoff_base_s=1.0, backoff_factor=2.0,
                                   backoff_max_s=5.0)
        assert strategy.backoff_s(1) == 1.0
        assert strategy.backoff_s(2) == 2.0
        assert strategy.backoff_s(3) == 4.0
        assert strategy.backoff_s(4) == 5.0  # capped
        assert RestartStrategy().backoff_s(3) == 0.0  # default: immediate

    def test_crash_restarts_and_reports_continue(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.install_faults(FaultPlan([ActorCrash(at_s=2.0,
                                                 actor="formula-0")]))
        api.run(5.0)
        kinds = handle.health.kinds()
        assert "fault-injected" in kinds
        assert "actor-restarted" in kinds
        # The restarted formula re-subscribed cleanly: reports keep coming.
        late = [r for r in handle.reporter.aggregated
                if r.time_s > 2.5 and not r.gap]
        assert late

    def test_crash_with_backoff_delays_restart(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        api.system.strategy = RestartStrategy(backoff_base_s=1.0)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.install_faults(FaultPlan([ActorCrash(at_s=2.0,
                                                 actor="formula-0")]))
        api.run(6.0)
        scheduled = next(e for e in handle.health
                         if e.kind == "actor-restart-scheduled")
        restarted = next(e for e in handle.health
                         if e.kind == "actor-restarted")
        assert scheduled.component == "formula-0"
        assert restarted.time_s >= scheduled.time_s + 1.0 - 1e-9
        # Mail queued during suspension is replayed: no periods vanish.
        late = [r for r in handle.reporter.aggregated
                if r.time_s > restarted.time_s and not r.gap]
        assert late

    def test_crash_unknown_actor_is_harmless(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        api.monitor(pid).every(1.0).to(InMemoryReporter())
        injector = api.install_faults(
            FaultPlan([ActorCrash(at_s=1.0, actor="no-such-actor")]))
        api.run(3.0)
        assert injector.exhausted


class TestLifecycleRegressions:
    def test_conflicting_period_raises(self, kernel, model):
        a = kernel.spawn(CpuStress(duration_s=20.0))
        b = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        api.monitor(a).every(1.0).to(InMemoryReporter())
        with pytest.raises(ConfigurationError):
            api.monitor(b).every(0.5).to(InMemoryReporter())
        # The shared clock must not have been silently retuned.
        assert api.clock.period_s == 1.0
        # The same period is fine.
        api.monitor(b).every(1.0).to(InMemoryReporter())

    def test_period_retune_allowed_once_pipelines_stop(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        handle.stop()
        api.monitor(pid).every(0.25).to(InMemoryReporter())
        assert api.clock.period_s == 0.25

    def test_shutdown_and_stop_are_idempotent(self, kernel, model):
        pid = kernel.spawn(CpuStress(duration_s=20.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(2.0)
        handle.stop()
        handle.stop()
        api.shutdown()
        api.shutdown()
        handle.stop()  # after shutdown: still a no-op
        assert api.system.actor_names() == ()
        assert api.perf.closed

    def test_rotation_state_pruned_under_pid_churn(self):
        class Stub:
            def __init__(self, counter_id, pid):
                self.counter_id = counter_id
                self.pid = pid
                self.cpu = -1

        scheduler = MultiplexScheduler(slots=2)
        fds = iter(range(1000))
        generations = [[Stub(next(fds), pid) for _ in range(5)]
                       for pid in range(40)]
        for counters in generations:  # churn: each pid lives one round
            scheduler.schedule(counters)
        assert len(scheduler.rotation_targets()) == 1  # only the last pid
        scheduler.schedule([])
        assert scheduler.rotation_targets() == ()

    def test_slot_override_starves_and_restores(self):
        class Stub:
            def __init__(self, counter_id):
                self.counter_id = counter_id
                self.pid = 1
                self.cpu = -1

        scheduler = MultiplexScheduler(slots=2)
        counters = [Stub(i) for i in range(3)]
        scheduler.slot_override = 0
        assert scheduler.schedule(counters) == set()
        scheduler.slot_override = None
        assert len(scheduler.schedule(counters)) == 2


class TestAcceptanceCampaign:
    SPEC = "meter-dropout@2:1.5;starve@4:2;pid-exit@7:0;hpc-loss@9:1"

    def _run_campaign(self, model):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        doomed = kernel.spawn(CpuStress(duration_s=30.0), name="doomed")
        steady = kernel.spawn(CpuStress(duration_s=30.0), name="steady")
        api = PowerAPI(kernel, model)
        api.attach_meter(PowerSpy(kernel.machine, seed=9), name="meter")
        handle = api.monitor(doomed, steady).every(0.5).to(InMemoryReporter())
        injector = api.install_faults(FaultPlan.parse(self.SPEC))
        api.run(12.0)
        api.flush()
        result = (handle.health.signature(),
                  handle.reporter.total_series(),
                  handle.reporter.gap_series(),
                  injector.exhausted)
        api.shutdown()
        return result

    def test_campaign_survives_with_marked_gaps(self, model):
        signature, series, gaps, exhausted = self._run_campaign(model)
        assert exhausted
        assert len(series) >= 20  # the pipeline never stalled
        assert any(gaps)  # holes are marked, not silent
        kinds = [entry[2] for entry in signature]
        assert "fault-injected" in kinds
        assert "meter-dropout" in kinds
        assert "meter-reconnected" in kinds
        assert "degraded" in kinds
        assert "recovered" in kinds
        assert "pid-lost" in kinds

    def test_same_seed_reproduces_identical_health_log(self, model):
        first = self._run_campaign(model)
        second = self._run_campaign(model)
        assert first[0] == second[0]  # health signatures byte-identical
        assert first[1] == second[1]  # and the power series too


class TestExponentialBackoff:
    """The shared retry schedule, including the fleet-jitter extension."""

    def _backoff(self, **kwargs):
        from repro.faults.backoff import ExponentialBackoff
        return ExponentialBackoff(**kwargs)

    def test_cap_saturation(self):
        backoff = self._backoff(base_s=0.5, factor=2.0, max_s=3.0)
        delays = [backoff.next_delay_s() for _ in range(6)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0, 3.0]
        assert backoff.attempts == 6

    def test_reset_restarts_the_schedule(self):
        backoff = self._backoff(base_s=1.0, factor=2.0, max_s=8.0)
        backoff.next_delay_s()
        backoff.next_delay_s()
        backoff.reset()
        assert backoff.attempts == 0
        assert backoff.next_delay_s() == 1.0

    def test_stateless_delay_matches_stateful(self):
        backoff = self._backoff(base_s=0.1, factor=3.0, max_s=10.0)
        assert [backoff.delay_s(n) for n in (1, 2, 3)] == \
            [backoff.next_delay_s() for _ in range(3)]
        assert backoff.delay_s(0) == 0.0

    def test_jitter_deterministic_under_seed(self):
        first = self._backoff(base_s=1.0, max_s=30.0, jitter=0.5, seed=42)
        second = self._backoff(base_s=1.0, max_s=30.0, jitter=0.5, seed=42)
        a = [first.next_delay_s() for _ in range(8)]
        b = [second.next_delay_s() for _ in range(8)]
        assert a == b
        other = self._backoff(base_s=1.0, max_s=30.0, jitter=0.5, seed=7)
        assert a != [other.next_delay_s() for _ in range(8)]

    def test_jitter_stays_within_band(self):
        backoff = self._backoff(base_s=1.0, factor=2.0, max_s=64.0,
                                jitter=0.25, seed=1)
        for attempt in range(1, 8):
            nominal = backoff.delay_s(attempt)
            jittered = backoff.next_delay_s()
            assert 0.75 * nominal <= jittered <= 1.25 * nominal

    def test_zero_jitter_is_exact(self):
        backoff = self._backoff(base_s=1.0, jitter=0.0, seed=99)
        assert backoff.next_delay_s() == 1.0

    def test_reset_does_not_rewind_the_rng(self):
        backoff = self._backoff(base_s=1.0, max_s=30.0, jitter=0.5, seed=3)
        first = backoff.next_delay_s()
        backoff.reset()
        # Same attempt number, fresh draw: almost surely different.
        assert backoff.next_delay_s() != first

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._backoff(base_s=0.0)
        with pytest.raises(ConfigurationError):
            self._backoff(factor=0.5)
        with pytest.raises(ConfigurationError):
            self._backoff(base_s=2.0, max_s=1.0)
        with pytest.raises(ConfigurationError):
            self._backoff(jitter=1.5)
        with pytest.raises(ConfigurationError):
            self._backoff(jitter=-0.1)


class TestBoundedHealthLog:
    """The health log's bound: cap, exact counts, digested evictions."""

    def _event(self, index, kind="degraded"):
        from repro.core.messages import HealthEvent
        return HealthEvent(time_s=float(index), component="sensor",
                           kind=kind, detail=f"event-{index}")

    def _log(self, cap):
        from repro.faults.health import HealthLog
        return HealthLog(cap=cap)

    def test_cap_validation(self):
        with pytest.raises(ConfigurationError):
            self._log(0)

    def test_retains_only_newest_cap_events(self):
        log = self._log(3)
        for index in range(10):
            log.record(self._event(index))
        assert len(log) == 10  # total keeps counting
        assert log.evicted == 7
        assert [event.detail for event in log] == [
            "event-7", "event-8", "event-9"]

    def test_counts_exact_past_cap(self):
        log = self._log(2)
        for index in range(5):
            log.record(self._event(index, kind="degraded"))
        log.record(self._event(5, kind="recovered"))
        assert log.count("degraded") == 5
        assert log.count("recovered") == 1
        assert log.count("unknown") == 0
        assert log.kinds() == ["degraded", "recovered"]  # retained only

    def test_signature_fingerprints_complete_history(self):
        small, large = self._log(2), self._log(100)
        for index in range(8):
            small.record(self._event(index))
            large.record(self._event(index))
        # Identical histories at different caps: the small log's
        # signature folds evictions into one digest entry.
        assert small.signature()[0][0] == "evicted"
        assert small.signature()[0][1] == "6"
        assert small.signature()[1:] == large.signature()[-2:]
        # Diverging histories diverge even when the divergent event
        # has already been evicted.
        other = self._log(2)
        for index in range(8):
            other.record(self._event(
                index, kind="recovered" if index == 0 else "degraded"))
        assert other.signature() != small.signature()

    def test_signature_unchanged_within_cap(self):
        log = self._log(100)
        for index in range(3):
            log.record(self._event(index))
        signature = log.signature()
        assert len(signature) == 3
        assert all(entry[1] == "sensor" for entry in signature)
        assert signature[0][2] == "degraded"

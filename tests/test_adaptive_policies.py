"""Unit tests for the adaptive scheduler and conservative governor."""

import pytest

from repro.errors import FrequencyError, SchedulerError
from repro.os.governor import ConservativeGovernor, OndemandGovernor
from repro.os.kernel import SimKernel
from repro.os.scheduler import (EnergyAwareScheduler, PackScheduler,
                                SpreadScheduler)
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import intel_i3_2120
from repro.simcpu.topology import Topology
from repro.workloads.stress import CpuStress


@pytest.fixture
def spec():
    return intel_i3_2120()


class TestEnergyAwareScheduler:
    def test_low_load_packs(self, spec):
        kernel = SimKernel(spec, scheduler_factory=EnergyAwareScheduler,
                           quantum_s=0.01)
        kernel.spawn(CpuStress(utilization=0.4, duration_s=10.0))
        record = kernel.run(0.05)[-1]
        assert kernel.scheduler.mode == "pack"
        busy = {cpu for cpu, value in record.cpu_busy.items() if value > 0}
        assert busy <= {0, 2}  # core 0's hyperthreads only

    def test_high_load_spreads(self, spec):
        kernel = SimKernel(spec, scheduler_factory=EnergyAwareScheduler,
                           quantum_s=0.01)
        for _ in range(3):
            kernel.spawn(CpuStress(utilization=1.0, duration_s=10.0))
        record = kernel.run(0.05)[-1]
        assert kernel.scheduler.mode == "spread"
        cores = {Topology(spec).cpu(cpu).core_id
                 for cpu, value in record.cpu_busy.items() if value > 0}
        assert len(cores) == 2

    def test_mode_adapts_as_load_changes(self, spec):
        kernel = SimKernel(spec, scheduler_factory=EnergyAwareScheduler,
                           quantum_s=0.01)
        kernel.spawn(CpuStress(utilization=0.3, duration_s=100.0))
        kernel.run(0.05)
        assert kernel.scheduler.mode == "pack"
        for _ in range(3):
            kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        kernel.run(0.05)
        assert kernel.scheduler.mode == "spread"

    def test_saves_energy_at_low_load_vs_spread(self, spec):
        def energy_with(scheduler_factory):
            kernel = SimKernel(spec, scheduler_factory=scheduler_factory,
                               quantum_s=0.02)
            kernel.spawn(CpuStress(utilization=0.5, duration_s=100.0))
            kernel.spawn(CpuStress(utilization=0.4, duration_s=100.0))
            kernel.run(5.0)
            return kernel.machine.energy_j

        adaptive = energy_with(EnergyAwareScheduler)
        spread = energy_with(SpreadScheduler)
        assert adaptive < spread

    def test_keeps_throughput_at_high_load_vs_pack(self, spec):
        def work_with(scheduler_factory):
            kernel = SimKernel(spec, scheduler_factory=scheduler_factory,
                               quantum_s=0.02)
            for _ in range(4):
                kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
            kernel.run(5.0)
            return kernel.machine.counters.read("instructions")

        adaptive = work_with(EnergyAwareScheduler)
        packed = work_with(PackScheduler)
        assert adaptive >= packed * 0.99

    def test_rejects_bad_threshold(self, spec):
        with pytest.raises(SchedulerError):
            EnergyAwareScheduler(Topology(spec), pack_threshold=0.0)


class TestConservativeGovernor:
    def _make(self, spec, **kwargs):
        topology = Topology(spec)
        domain = FrequencyDomain(spec)
        return ConservativeGovernor(spec, topology, domain, **kwargs), domain

    def test_starts_at_minimum(self, spec):
        governor, domain = self._make(spec)
        governor.update({0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.min_frequency_hz

    def test_steps_up_one_at_a_time(self, spec):
        governor, domain = self._make(spec)
        governor.update({0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.frequencies_hz[1]
        governor.update({0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.frequencies_hz[2]

    def test_reaches_max_under_sustained_load(self, spec):
        governor, domain = self._make(spec)
        for _ in range(len(spec.frequencies_hz) + 2):
            governor.update({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        assert domain.target(0, 0) == spec.max_frequency_hz

    def test_steps_down_when_idle(self, spec):
        governor, domain = self._make(spec)
        for _ in range(4):
            governor.update({0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0})
        raised = domain.target(0, 0)
        governor.update({0: 0.1, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) < raised

    def test_holds_in_dead_band(self, spec):
        governor, domain = self._make(spec)
        governor.update({0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0})
        held = domain.target(0, 0)
        governor.update({0: 0.5, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == held

    def test_slower_than_ondemand_on_burst(self, spec):
        topology = Topology(spec)
        conservative, conservative_domain = self._make(spec)
        ondemand = OndemandGovernor(spec, topology, FrequencyDomain(spec))
        burst = {0: 0.95, 1: 0.0, 2: 0.0, 3: 0.0}
        conservative.update(burst)
        ondemand.update(burst)
        assert (conservative_domain.target(0, 0)
                < ondemand.domain.target(0, 0))

    def test_rejects_inverted_thresholds(self, spec):
        with pytest.raises(FrequencyError):
            self._make(spec, up_threshold=0.3, down_threshold=0.8)

    def test_registered(self):
        from repro.os.governor import GOVERNORS
        assert "conservative" in GOVERNORS

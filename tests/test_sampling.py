"""Unit tests for repro.core.sampling and calibration.

Campaigns here are deliberately tiny (one or two frequencies, one or two
workloads, short windows); the paper-scale campaign runs in the benchmark
harness.
"""

import pytest

from repro.core.calibration import calibrate_idle_power
from repro.core.sampling import (SamplePoint, SamplingCampaign,
                                 SamplingDataset, learn_power_model)
from repro.errors import ConfigurationError, InsufficientDataError
from repro.simcpu.counters import GENERIC_TRIO
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz
from repro.workloads.stress import CpuStress, MemoryStress


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def tiny_campaign(spec):
    return SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=4),
                   MemoryStress(utilization=1.0, threads=4,
                                working_set_bytes=32 * 1024 ** 2),
                   CpuStress(utilization=0.5, threads=2)],
        frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=0.5, windows_per_run=3, settle_s=0.25, quantum_s=0.05)


@pytest.fixture(scope="module")
def dataset(tiny_campaign):
    return tiny_campaign.run()


class TestCampaign:
    def test_rejects_bad_window(self, spec):
        with pytest.raises(ConfigurationError):
            SamplingCampaign(spec, window_s=0.0)

    def test_rejects_unknown_frequency(self, spec):
        with pytest.raises(Exception):
            SamplingCampaign(spec, frequencies_hz=[12345])

    def test_point_count(self, dataset):
        # 2 frequencies x 3 workloads x 3 windows.
        assert len(dataset) == 18

    def test_frequencies_recorded(self, dataset, spec):
        assert dataset.frequencies_hz == (spec.min_frequency_hz,
                                          spec.max_frequency_hz)

    def test_rates_cover_trio(self, dataset):
        for point in dataset.points:
            assert set(point.rates) == set(GENERIC_TRIO)

    def test_memory_workload_has_more_misses(self, dataset):
        cpu_points = [p for p in dataset.points if "cpu" in p.workload]
        mem_points = [p for p in dataset.points if "mem" in p.workload]
        cpu_misses = max(p.rates["cache-misses"] for p in cpu_points)
        mem_misses = min(p.rates["cache-misses"] for p in mem_points)
        assert mem_misses > cpu_misses

    def test_higher_frequency_higher_power(self, dataset, spec):
        slow = [p.power_w for p in dataset.at_frequency(spec.min_frequency_hz)
                if p.workload == "stress-cpu-100"]
        fast = [p.power_w for p in dataset.at_frequency(spec.max_frequency_hz)
                if p.workload == "stress-cpu-100"]
        assert min(fast) > max(slow)

    def test_feature_matrix_shapes(self, dataset, spec):
        features, targets = dataset.feature_matrix(spec.max_frequency_hz)
        assert len(features) == len(targets) == 9

    def test_default_grid_includes_thread_sweep(self, spec):
        campaign = SamplingCampaign(spec)
        grid = campaign._workloads()
        thread_counts = {threads for _w, threads in grid}
        assert thread_counts == {1, 2, 4}


class TestCalibration:
    def test_idle_close_to_spec(self, spec):
        idle = calibrate_idle_power(spec, duration_s=5.0, quantum_s=0.05)
        assert idle == pytest.approx(spec.power.idle_w, rel=0.02)

    def test_deterministic_per_seed(self, spec):
        a = calibrate_idle_power(spec, duration_s=3.0, seed=1)
        b = calibrate_idle_power(spec, duration_s=3.0, seed=1)
        assert a == b


class TestLearning:
    @pytest.fixture(scope="class")
    def report(self, spec, tiny_campaign):
        return learn_power_model(spec, campaign=tiny_campaign,
                                 idle_duration_s=5.0)

    def test_model_has_formula_per_frequency(self, report, spec):
        assert report.model.frequencies_hz == (spec.min_frequency_hz,
                                               spec.max_frequency_hz)

    def test_idle_near_published_constant(self, report):
        assert report.model.idle_w == pytest.approx(31.48, rel=0.03)

    def test_nnls_coefficients_nonnegative(self, report):
        for frequency in report.model.frequencies_hz:
            formula = report.model.formula(frequency)
            assert all(v >= 0 for v in formula.coefficients.values())

    def test_regression_diagnostics_present(self, report):
        assert set(report.regressions) == set(report.model.frequencies_hz)

    def test_model_predicts_training_power(self, report, spec, dataset):
        # On training-like data the model should be accurate.
        point = dataset.at_frequency(spec.max_frequency_hz)[0]
        estimate = report.model.predict_total(point.frequency_hz, point.rates)
        assert estimate == pytest.approx(point.power_w, rel=0.25)

    def test_instructions_coefficient_order_of_magnitude(self, report, spec):
        # The paper's published coefficient is 2.22e-9 W per instruction/s.
        coefficient = report.model.formula(
            spec.max_frequency_hz).coefficients["instructions"]
        assert 1e-10 < coefficient < 1e-8

    def test_insufficient_data_raises(self, spec):
        campaign = SamplingCampaign(
            spec, workloads=[CpuStress(utilization=1.0)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=2, settle_s=0.0, quantum_s=0.05)
        with pytest.raises(InsufficientDataError):
            learn_power_model(spec, campaign=campaign, idle_duration_s=2.0)


class TestDatasetContainer:
    def test_at_frequency_filters(self):
        points = [SamplePoint(1, "w", {"instructions": 1.0}, 30.0),
                  SamplePoint(2, "w", {"instructions": 2.0}, 31.0)]
        dataset = SamplingDataset(points, ("instructions",))
        assert len(dataset.at_frequency(1)) == 1
        assert dataset.feature_matrix(2) == ([{"instructions": 2.0}], [31.0])

"""API-surface regression tests.

Downstream users import from the package roots; these tests pin the
public surface so a refactor cannot silently drop an export, and verify
that ``__all__`` matches what is actually importable.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.actors",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.os",
    "repro.perf",
    "repro.powermeter",
    "repro.simcpu",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    module = importlib.import_module(package)
    exported = list(getattr(module, "__all__", []))
    assert exported == sorted(exported), f"{package}.__all__ not sorted"


class TestKeyEntryPoints:
    """The imports every README/tutorial snippet relies on."""

    def test_learning_entry_points(self):
        from repro.core import (SamplingCampaign, learn_power_model,
                                calibrate_idle_power, published_i3_2120_model)
        assert callable(learn_power_model)
        assert callable(calibrate_idle_power)
        assert published_i3_2120_model().idle_w == pytest.approx(31.48)
        del SamplingCampaign

    def test_monitoring_entry_points(self):
        from repro.core import PowerAPI, InMemoryReporter, PowerModel
        from repro.os import SimKernel
        from repro.simcpu import intel_i3_2120
        from repro.workloads import SpecJbbWorkload
        assert all(callable(x) for x in (PowerAPI, InMemoryReporter,
                                         PowerModel, SimKernel,
                                         intel_i3_2120, SpecJbbWorkload))

    def test_extension_entry_points(self):
        from repro.core import (run_capped, measure_energy,
                                assert_energy_within, cross_validate,
                                ModelRegistry, estimate_from_csv)
        from repro.os import VirtualMachine, CgroupTree, SysFs
        from repro.simcpu import TrueProcessPower
        from repro.analysis import bootstrap, rank_consumers
        assert all(callable(x) for x in (
            run_capped, measure_energy, assert_energy_within,
            cross_validate, ModelRegistry, estimate_from_csv,
            VirtualMachine, CgroupTree, SysFs, TrueProcessPower,
            bootstrap, rank_consumers))

    def test_baseline_entry_points(self):
        from repro.baselines import (learn_bertran_model,
                                     learn_cpu_load_model,
                                     learn_happy_model, run_windows,
                                     score_model)
        assert all(callable(x) for x in (
            learn_bertran_model, learn_cpu_load_model, learn_happy_model,
            run_windows, score_model))

    def test_version_is_exposed(self):
        import repro
        assert repro.__version__ == "1.0.0"

"""Unit tests for repro.os.governor (cpufreq policies)."""

import pytest

from repro.errors import ConfigurationError, FrequencyError
from repro.os.governor import (GOVERNORS, ConservativeGovernor,
                               OndemandGovernor, PerformanceGovernor,
                               PowersaveGovernor, UserspaceGovernor)
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import intel_i3_2120, intel_xeon_smt
from repro.simcpu.topology import Topology
from repro.units import ghz


def make(governor_class, spec=None, **kwargs):
    spec = spec or intel_i3_2120()
    topology = Topology(spec)
    domain = FrequencyDomain(spec)
    return governor_class(spec, topology, domain, **kwargs), domain, spec


class TestPerformanceGovernor:
    def test_pins_max_frequency(self):
        governor, domain, spec = make(PerformanceGovernor)
        governor.update({0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.max_frequency_hz

    def test_uses_turbo_when_available(self):
        governor, domain, spec = make(PerformanceGovernor,
                                      spec=intel_xeon_smt())
        governor.update({cpu: 1.0 for cpu in range(8)})
        assert domain.target(0, 0) == spec.turbo_frequencies_hz[-1]


class TestPowersaveGovernor:
    def test_pins_min_frequency(self):
        governor, domain, spec = make(PowersaveGovernor)
        governor.update({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        assert domain.target(0, 0) == spec.min_frequency_hz


class TestUserspaceGovernor:
    def test_pins_requested(self):
        governor, domain, _spec = make(UserspaceGovernor,
                                       frequency_hz=ghz(2.4))
        governor.update({0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5})
        assert domain.target(0, 0) == ghz(2.4)
        assert domain.target(0, 1) == ghz(2.4)

    def test_set_frequency_changes_pin(self):
        governor, domain, _spec = make(UserspaceGovernor,
                                       frequency_hz=ghz(2.4))
        governor.set_frequency(ghz(1.6))
        governor.update({})
        assert domain.target(0, 0) == ghz(1.6)

    def test_rejects_unsupported(self):
        # Out-of-table pins are a user configuration mistake and raise
        # ConfigurationError (not the internal FrequencyError).
        with pytest.raises(ConfigurationError):
            make(UserspaceGovernor, frequency_hz=ghz(9.9))

    def test_rejects_unsupported_on_repin(self):
        governor, _domain, _spec = make(UserspaceGovernor,
                                        frequency_hz=ghz(2.4))
        with pytest.raises(ConfigurationError):
            governor.set_frequency(ghz(9.9))
        # The previous pin survives a rejected change.
        governor.update({})
        assert governor._frequency_hz == ghz(2.4)


class TestOndemandGovernor:
    def test_busy_core_jumps_to_max(self):
        governor, domain, spec = make(OndemandGovernor)
        governor.update({0: 0.95, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.max_frequency_hz

    def test_idle_core_drops_to_min(self):
        governor, domain, spec = make(OndemandGovernor)
        governor.update({0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.min_frequency_hz

    def test_moderate_load_scales_proportionally(self):
        governor, domain, spec = make(OndemandGovernor)
        governor.update({0: 0.4, 1: 0.0, 2: 0.0, 3: 0.0})
        target = domain.target(0, 0)
        assert spec.min_frequency_hz < target < spec.max_frequency_hz

    def test_per_core_independence(self):
        governor, domain, spec = make(OndemandGovernor)
        governor.update({0: 0.95, 1: 0.0, 2: 0.0, 3: 0.0})
        # cpu0/cpu2 are core 0; cpu1/cpu3 are core 1.
        assert domain.target(0, 0) == spec.max_frequency_hz
        assert domain.target(0, 1) == spec.min_frequency_hz

    def test_smt_sibling_counts_toward_core(self):
        governor, domain, spec = make(OndemandGovernor)
        governor.update({0: 0.0, 1: 0.0, 2: 0.9, 3: 0.0})
        assert domain.target(0, 0) == spec.max_frequency_hz

    def test_rejects_bad_threshold(self):
        with pytest.raises(FrequencyError):
            make(OndemandGovernor, up_threshold=1.5)

    def test_exact_threshold_jumps_to_max(self):
        # The up-transition is inclusive: util == up_threshold already
        # counts as busy.
        governor, domain, spec = make(OndemandGovernor, up_threshold=0.80)
        governor.update({0: 0.80, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.max_frequency_hz

    def test_just_below_threshold_scales(self):
        # Below the threshold the proportional branch runs.  The wanted
        # frequency quantises *up* the ladder, so the highest util that
        # still lands below max is the one whose wanted frequency fits
        # under the second-highest rung (0.775 -> 3.197 GHz -> 3.2 GHz
        # on the i3's ladder); anything closer to the threshold rounds
        # to max even though the busy branch was not taken.
        governor, domain, spec = make(OndemandGovernor, up_threshold=0.80)
        governor.update({0: 0.775, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.frequencies_hz[-2]
        assert domain.target(0, 0) < spec.max_frequency_hz


class TestConservativeGovernor:
    def test_exact_up_threshold_steps_one_rung(self):
        governor, domain, spec = make(ConservativeGovernor,
                                      up_threshold=0.80,
                                      down_threshold=0.30)
        governor.update({0: 0.80, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.frequencies_hz[1]

    def test_exact_down_threshold_steps_back(self):
        governor, domain, spec = make(ConservativeGovernor,
                                      up_threshold=0.80,
                                      down_threshold=0.30)
        governor.update({0: 0.80, 1: 0.0, 2: 0.0, 3: 0.0})
        governor.update({0: 0.30, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == spec.frequencies_hz[0]

    def test_between_thresholds_holds_hysteresis(self):
        # Load strictly between the thresholds must not move the rung
        # in either direction — the hysteresis band.
        governor, domain, spec = make(ConservativeGovernor,
                                      up_threshold=0.80,
                                      down_threshold=0.30)
        governor.update({0: 0.80, 1: 0.0, 2: 0.0, 3: 0.0})
        for _ in range(5):
            governor.update({0: 0.55, 1: 0.0, 2: 0.0, 3: 0.0})
            assert domain.target(0, 0) == spec.frequencies_hz[1]

    def test_floor_and_ceiling_are_sticky(self):
        governor, domain, spec = make(ConservativeGovernor)
        ladder = spec.frequencies_hz
        for _ in range(len(ladder) + 3):
            governor.update({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        assert domain.target(0, 0) == ladder[-1]
        for _ in range(len(ladder) + 3):
            governor.update({0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert domain.target(0, 0) == ladder[0]

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(FrequencyError):
            make(ConservativeGovernor, up_threshold=0.3, down_threshold=0.8)


class TestRegistry:
    def test_known_governors(self):
        assert set(GOVERNORS) == {"performance", "powersave", "ondemand",
                                  "conservative"}

"""Unit tests for the workload library."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import (ConstantWorkload, Phase, PhasedWorkload,
                                  cpu_demand, memory_demand)
from repro.workloads.idle import BackgroundNoise, IdleWorkload
from repro.workloads.mix import RandomWorkload, colocated_pair
from repro.workloads.speccpu import (APP_NAMES, spec_cpu_app, spec_cpu_suite)
from repro.workloads.specjbb import RT_CURVE_STEPS, SpecJbbWorkload
from repro.workloads.stress import (CpuStress, MemoryStress, MixedStress,
                                    stress_matrix)


class TestPhasedWorkload:
    def test_requires_phases(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload([])

    def test_phase_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            Phase(0.0, cpu_demand())

    def test_walks_phases_in_order(self):
        workload = PhasedWorkload([
            Phase(1.0, cpu_demand(utilization=0.2)),
            Phase(1.0, cpu_demand(utilization=0.8)),
        ])
        assert workload.demand(0.5).utilization == 0.2
        assert workload.demand(1.5).utilization == 0.8

    def test_finishes_after_last_phase(self):
        workload = PhasedWorkload([Phase(1.0, cpu_demand())])
        assert workload.demand(1.0) is None

    def test_repeat_wraps(self):
        workload = PhasedWorkload([Phase(1.0, cpu_demand(utilization=0.3))],
                                  repeat=True)
        assert workload.demand(5.4).utilization == 0.3
        assert workload.total_duration_s() is None

    def test_total_duration(self):
        workload = PhasedWorkload([Phase(1.0, cpu_demand()),
                                   Phase(2.5, cpu_demand())])
        assert workload.total_duration_s() == pytest.approx(3.5)


class TestConstantWorkload:
    def test_open_ended(self):
        workload = ConstantWorkload(cpu_demand())
        assert workload.demand(1e6) is not None
        assert workload.total_duration_s() is None

    def test_time_limited(self):
        workload = ConstantWorkload(cpu_demand(), duration_s=2.0)
        assert workload.demand(1.9) is not None
        assert workload.demand(2.0) is None


class TestDemandHelpers:
    def test_cpu_demand_is_cache_friendly(self):
        demand = cpu_demand()
        assert demand.memory.working_set_bytes <= 64 * 1024

    def test_memory_demand_is_cache_hostile(self):
        demand = memory_demand()
        assert demand.memory.working_set_bytes >= 1024 ** 2
        assert demand.memory.mem_ops_per_instruction > 0.3


class TestStress:
    def test_cpu_stress_name_encodes_level(self):
        assert CpuStress(utilization=0.75).name == "stress-cpu-75"

    def test_memory_stress_name_encodes_working_set(self):
        workload = MemoryStress(working_set_bytes=2 * 1024 ** 2)
        assert workload.name == "stress-mem-2048k"

    def test_mixed_rejects_extreme_fp(self):
        with pytest.raises(ConfigurationError):
            MixedStress(fp_fraction=0.9)

    def test_matrix_covers_dimensions(self):
        workloads = stress_matrix(levels=(0.5, 1.0),
                                  working_sets=(1024, 1024 ** 2))
        names = [w.name for w in workloads]
        assert any("cpu" in name for name in names)
        assert any("mem" in name for name in names)
        assert any("mixed" in name for name in names)
        # 2 cpu + 2x2 memory + 2 mixed.
        assert len(workloads) == 8

    def test_matrix_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            stress_matrix(levels=(0.0,))


class TestSpecJbb:
    def test_deterministic_for_seed(self):
        a = SpecJbbWorkload(duration_s=100, seed=7)
        b = SpecJbbWorkload(duration_s=100, seed=7)
        times = [0.0, 10.0, 55.5, 99.0]
        assert ([a.demand(t).utilization for t in times]
                == [b.demand(t).utilization for t in times])

    def test_different_seeds_differ(self):
        a = SpecJbbWorkload(duration_s=100, seed=7)
        b = SpecJbbWorkload(duration_s=100, seed=8)
        times = [20.0, 40.0, 60.0, 80.0]
        assert ([a.demand(t).utilization for t in times]
                != [b.demand(t).utilization for t in times])

    def test_ramp_grows(self):
        workload = SpecJbbWorkload(duration_s=1000, jitter=0.0)
        assert (workload.base_utilization(10.0)
                < workload.base_utilization(100.0))

    def test_staircase_visits_levels(self):
        workload = SpecJbbWorkload(duration_s=1000, jitter=0.0)
        ramp_end = 0.12 * 1000
        steady = 1000 - ramp_end
        step = steady / len(RT_CURVE_STEPS)
        seen = {workload.base_utilization(ramp_end + step * (i + 0.5))
                for i in range(len(RT_CURVE_STEPS))}
        assert seen == set(RT_CURVE_STEPS)

    def test_finishes(self):
        workload = SpecJbbWorkload(duration_s=50)
        assert workload.demand(50.0) is None
        assert workload.total_duration_s() == 50.0

    def test_gc_bursts_occur(self):
        workload = SpecJbbWorkload(duration_s=500, seed=3)
        gc_seconds = [t / 10 for t in range(5000)
                      if workload.in_gc(t / 10)]
        assert gc_seconds  # at least one burst fires

    def test_gc_demand_is_memory_heavy(self):
        workload = SpecJbbWorkload(duration_s=500, seed=3)
        gc_time = next(t / 10 for t in range(5000) if workload.in_gc(t / 10))
        demand = workload.demand(gc_time)
        assert demand.utilization == 1.0
        assert demand.memory.locality < 0.8

    def test_rejects_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            SpecJbbWorkload(jitter=0.9)

    def test_multithreaded_demand(self):
        workload = SpecJbbWorkload(threads=4)
        assert workload.demand(100.0).threads == 4


class TestSpecCpu:
    def test_six_apps(self):
        assert len(APP_NAMES) == 6
        assert len(spec_cpu_suite()) == 6

    def test_unknown_app_raises(self):
        with pytest.raises(ConfigurationError):
            spec_cpu_app("gcc")

    def test_apps_have_distinct_profiles(self):
        demands = [app.phases[0].demand for app in spec_cpu_suite()]
        working_sets = {d.memory.working_set_bytes for d in demands}
        assert len(working_sets) >= 4

    def test_mcf_is_memory_bound(self):
        demand = spec_cpu_app("mcf").phases[0].demand
        assert demand.memory.working_set_bytes > 32 * 1024 ** 2
        assert demand.memory.locality < 0.7

    def test_namd_is_fp_heavy(self):
        demand = spec_cpu_app("namd").phases[0].demand
        assert demand.mix.fp_fraction > 0.3

    def test_duration_override(self):
        app = spec_cpu_app("bzip2", duration_s=5.0)
        assert app.total_duration_s() == 5.0
        assert app.demand(5.0) is None


class TestIdle:
    def test_idle_demands_nothing(self):
        workload = IdleWorkload()
        assert workload.demand(100.0).utilization == 0.0

    def test_idle_with_duration_finishes(self):
        workload = IdleWorkload(duration_s=1.0)
        assert workload.demand(1.0) is None

    def test_background_noise_is_light(self):
        workload = BackgroundNoise()
        assert workload.demand(0.0).utilization <= 0.05


class TestMix:
    def test_random_workload_deterministic(self):
        a = RandomWorkload(duration_s=30, seed=5)
        b = RandomWorkload(duration_s=30, seed=5)
        times = [1.0, 10.0, 25.0]
        assert ([a.demand(t).utilization for t in times]
                == [b.demand(t).utilization for t in times])

    def test_random_workload_covers_duration(self):
        workload = RandomWorkload(duration_s=30, seed=5)
        assert workload.demand(29.9) is not None
        assert workload.demand(30.1) is None

    def test_random_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            RandomWorkload(duration_s=0)

    def test_colocated_pair_asymmetric(self):
        compute, memory = colocated_pair(duration_s=10)
        compute_demand = compute.demand(1.0)
        memory_demand_ = memory.demand(1.0)
        assert (compute_demand.memory.working_set_bytes
                < memory_demand_.memory.working_set_bytes)
        assert compute_demand.mix.fp_fraction > memory_demand_.mix.fp_fraction

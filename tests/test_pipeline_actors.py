"""Unit tests for the PowerAPI actor pipeline: messages, sensors,
formulas, aggregators, reporters."""

import io

import pytest

from repro.actors.clock import ClockTick
from repro.actors.system import ActorSystem
from repro.core.aggregators import (FlushAggregates, PidAggregator,
                                    PidEnergyReport, TimestampAggregator)
from repro.core.formula import CpuLoadFormula, HpcFormula
from repro.core.messages import (AggregatedPowerReport, HpcReport,
                                 PowerReport, ProcFsReport)
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.reporters import (CallbackReporter, ConsoleReporter,
                                  CsvReporter, InMemoryReporter)
from repro.errors import ConfigurationError
from repro.units import ghz


@pytest.fixture
def system():
    return ActorSystem()


@pytest.fixture
def model():
    return PowerModel(idle_w=30.0, formulas=[
        FrequencyFormula(ghz(3.3), {"instructions": 1e-9}),
        FrequencyFormula(ghz(1.6), {"instructions": 5e-10}),
    ], name="test-model")


def hpc_report(time_s=1.0, pid=100, instructions=2e9, frequency=ghz(3.3)):
    return HpcReport(time_s=time_s, period_s=1.0, pid=pid,
                     counters={"instructions": instructions},
                     frequency_hz=frequency)


class TestMessages:
    def test_hpc_rates(self):
        report = HpcReport(time_s=2.0, period_s=2.0, pid=1,
                           counters={"instructions": 4e9}, frequency_hz=1)
        assert report.rates()["instructions"] == pytest.approx(2e9)

    def test_report_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            HpcReport(time_s=0.0, period_s=0.0, pid=1)

    def test_power_report_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PowerReport(time_s=0, period_s=1, pid=1, power_w=-1, formula="x")

    def test_aggregated_totals(self):
        report = AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 5.0, 2: 3.0},
            idle_w=30.0, formula="f")
        assert report.active_w == 8.0
        assert report.total_w == 38.0
        assert report.pids() == (1, 2)


class TestHpcFormula:
    def test_applies_model_at_frequency(self, system, model):
        reports = []

        class Collector(InMemoryReporter):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PowerReport, self.self_ref)

            def receive(self, message):
                reports.append(message)

        system.spawn(Collector(), "collector")
        system.spawn(HpcFormula(model), "formula")
        system.event_bus.publish(hpc_report(instructions=2e9,
                                            frequency=ghz(3.3)))
        system.dispatch()
        assert len(reports) == 1
        assert reports[0].power_w == pytest.approx(2.0)
        assert reports[0].formula == "test-model"

    def test_nearest_frequency_used(self, system, model):
        reports = []

        class Collector(InMemoryReporter):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PowerReport, self.self_ref)

            def receive(self, message):
                reports.append(message)

        system.spawn(Collector(), "collector")
        system.spawn(HpcFormula(model), "formula")
        system.event_bus.publish(hpc_report(instructions=2e9,
                                            frequency=ghz(1.8)))
        system.dispatch()
        assert reports[0].power_w == pytest.approx(1.0)  # 1.6 GHz formula


class TestCpuLoadFormula:
    def test_share_of_range(self, system):
        reports = []

        class Collector(InMemoryReporter):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PowerReport, self.self_ref)

            def receive(self, message):
                reports.append(message)

        system.spawn(Collector(), "collector")
        system.spawn(CpuLoadFormula(active_range_w=40.0, num_cpus=4),
                     "formula")
        system.event_bus.publish(ProcFsReport(
            time_s=1.0, period_s=1.0, pid=1, cpu_time_delta_s=1.0,
            machine_load=0.25))
        system.dispatch()
        # One CPU fully busy of four: a quarter of the range.
        assert reports[0].power_w == pytest.approx(10.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            CpuLoadFormula(active_range_w=-1, num_cpus=4)
        with pytest.raises(ConfigurationError):
            CpuLoadFormula(active_range_w=10, num_cpus=0)


class TestTimestampAggregator:
    def test_groups_by_timestamp(self, system):
        reporter = InMemoryReporter()
        system.spawn(TimestampAggregator(idle_w=30.0), "agg")
        system.spawn(reporter, "rep")
        for pid in (1, 2):
            system.event_bus.publish(PowerReport(
                time_s=1.0, period_s=1.0, pid=pid, power_w=5.0, formula="f"))
        # Next timestamp flushes the previous one.
        system.event_bus.publish(PowerReport(
            time_s=2.0, period_s=1.0, pid=1, power_w=7.0, formula="f"))
        system.dispatch()
        assert len(reporter.aggregated) == 1
        first = reporter.aggregated[0]
        assert first.time_s == 1.0
        assert first.by_pid == {1: 5.0, 2: 5.0}
        assert first.total_w == pytest.approx(40.0)

    def test_flush_emits_pending(self, system):
        reporter = InMemoryReporter()
        system.spawn(TimestampAggregator(idle_w=30.0), "agg")
        system.spawn(reporter, "rep")
        system.event_bus.publish(PowerReport(
            time_s=1.0, period_s=1.0, pid=1, power_w=5.0, formula="f"))
        system.event_bus.publish(FlushAggregates())
        system.dispatch()
        assert len(reporter.aggregated) == 1

    def test_same_pid_same_timestamp_sums(self, system):
        reporter = InMemoryReporter()
        system.spawn(TimestampAggregator(idle_w=0.0), "agg")
        system.spawn(reporter, "rep")
        for _ in range(2):
            system.event_bus.publish(PowerReport(
                time_s=1.0, period_s=1.0, pid=1, power_w=2.0, formula="f"))
        system.event_bus.publish(FlushAggregates())
        system.dispatch()
        assert reporter.aggregated[0].by_pid == {1: 4.0}


class TestPidAggregator:
    def test_integrates_energy(self, system):
        aggregator = PidAggregator()
        system.spawn(aggregator, "agg")
        for t in (1.0, 2.0, 3.0):
            system.event_bus.publish(PowerReport(
                time_s=t, period_s=1.0, pid=7, power_w=4.0, formula="f"))
        system.dispatch()
        assert aggregator.energy_by_pid_j == {7: pytest.approx(12.0)}

    def test_flush_publishes_summary(self, system):
        summaries = []

        class Collector(InMemoryReporter):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PidEnergyReport, self.self_ref)

            def receive(self, message):
                summaries.append(message)

        system.spawn(Collector(), "collector")
        system.spawn(PidAggregator(), "agg")
        system.event_bus.publish(PowerReport(
            time_s=1.0, period_s=1.0, pid=7, power_w=4.0, formula="f"))
        system.event_bus.publish(FlushAggregates())
        system.dispatch()
        assert summaries[0].energy_by_pid_j == {7: pytest.approx(4.0)}
        assert summaries[0].total_j() == pytest.approx(4.0)


class TestReporters:
    def test_in_memory_series(self, system):
        reporter = InMemoryReporter()
        system.spawn(reporter, "rep")
        system.event_bus.publish(AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 5.0}, idle_w=30.0,
            formula="f"))
        system.dispatch()
        assert reporter.total_series() == [35.0]
        assert reporter.time_series() == [1.0]
        assert reporter.pid_series(1) == [5.0]
        assert reporter.pid_series(99) == [0.0]

    def test_console_reporter_writes_lines(self, system):
        stream = io.StringIO()
        reporter = ConsoleReporter(stream=stream)
        system.spawn(reporter, "rep")
        system.event_bus.publish(AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 5.0}, idle_w=30.0,
            formula="f"))
        system.dispatch()
        output = stream.getvalue()
        assert "total= 35.00W" in output
        assert "pid1" in output
        assert reporter.lines_written == 1

    def test_csv_reporter(self, system, tmp_path):
        path = tmp_path / "power.csv"
        reporter = CsvReporter(path, pids=[1, 2])
        ref = system.spawn(reporter, "rep")
        system.event_bus.publish(AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 5.0}, idle_w=30.0,
            formula="f"))
        system.dispatch()
        system.stop(ref)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time_s,total_w,idle_w,pid_1_w,pid_2_w,gap"
        assert lines[1].startswith("1.000,35.0000,30.0000,5.0000,0.0000,0")

    def test_callback_reporter(self, system):
        seen = []
        system.spawn(CallbackReporter(seen.append), "rep")
        system.event_bus.publish(AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={}, idle_w=30.0, formula="f"))
        system.dispatch()
        assert len(seen) == 1

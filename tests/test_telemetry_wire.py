"""Wire-protocol codec tests: round-trip identity, strict rejection of
corrupt streams, and version negotiation."""

import json

import pytest
from hypothesis import given

from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import WireProtocolError
from repro.telemetry import wire
from repro.telemetry.wire import (Frame, FrameDecoder, FrameKind,
                                  GapTelemetry, Heartbeat, HealthTelemetry,
                                  ReportEvent, decode_event, encode_frame,
                                  negotiate_version)
from tests.strategies import (aggregated_reports, chunkings,
                              default_settings, header_corruptions)
from hypothesis import strategies as st

pytestmark = pytest.mark.telemetry


def decode_all(data, **kwargs):
    return FrameDecoder(**kwargs).feed(data)


class TestEncodeDecode:
    def test_roundtrip_identity(self):
        payload = {"a": 1, "b": [1.5, "x"], "nested": {"k": True}}
        frames = decode_all(encode_frame(FrameKind.REPORT, payload))
        assert frames == [Frame(FrameKind.REPORT, payload)]

    def test_empty_payload(self):
        frames = decode_all(encode_frame(FrameKind.HEARTBEAT))
        assert frames == [Frame(FrameKind.HEARTBEAT, {})]

    def test_concatenated_frames_decode_in_order(self):
        data = b"".join(encode_frame(FrameKind.REPORT, {"seq": i})
                        for i in range(10))
        frames = decode_all(data)
        assert [frame.payload["seq"] for frame in frames] == list(range(10))

    def test_byte_stable_encoding(self):
        payload = {"z": 1, "a": 2}
        assert (encode_frame(FrameKind.REPORT, payload)
                == encode_frame(FrameKind.REPORT, {"a": 2, "z": 1}))

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(WireProtocolError):
            encode_frame(200, {})

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(WireProtocolError, match="exceeds"):
            encode_frame(FrameKind.REPORT,
                         {"blob": "x" * (wire.MAX_PAYLOAD_BYTES + 1)})


class TestStreamingDecode:
    def test_single_byte_feeding(self):
        data = b"".join(encode_frame(FrameKind.REPORT, {"seq": i})
                        for i in range(3))
        decoder = FrameDecoder()
        frames = []
        for index in range(len(data)):
            frames.extend(decoder.feed(data[index:index + 1]))
        assert [frame.payload["seq"] for frame in frames] == [0, 1, 2]
        assert decoder.buffered_bytes == 0

    def test_truncated_frame_stays_pending(self):
        data = encode_frame(FrameKind.REPORT, {"seq": 1})
        decoder = FrameDecoder()
        assert decoder.feed(data[:-1]) == []
        assert decoder.buffered_bytes == len(data) - 1
        assert decoder.feed(data[-1:])[0].payload == {"seq": 1}

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(FrameKind.REPORT, {}))
        data[0] = ord("X")
        with pytest.raises(WireProtocolError, match="magic"):
            decode_all(bytes(data))

    def test_unknown_kind_rejected_on_decode(self):
        data = bytearray(encode_frame(FrameKind.REPORT, {}))
        data[3] = 99
        with pytest.raises(WireProtocolError, match="unknown frame kind"):
            decode_all(bytes(data))

    def test_oversized_length_rejected(self):
        data = bytearray(encode_frame(FrameKind.REPORT, {}))
        data[4:8] = (wire.MAX_PAYLOAD_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(WireProtocolError, match="limit"):
            decode_all(bytes(data))

    def test_non_json_payload_rejected(self):
        header = encode_frame(FrameKind.REPORT, {})[:4]
        body = b"\xff\xfe\x00garbage!"
        data = header + len(body).to_bytes(4, "big") + body
        with pytest.raises(WireProtocolError, match="JSON"):
            decode_all(data)

    def test_non_object_payload_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        data = (encode_frame(FrameKind.REPORT, {})[:4]
                + len(body).to_bytes(4, "big") + body)
        with pytest.raises(WireProtocolError, match="JSON object"):
            decode_all(data)

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder()
        bad = bytearray(encode_frame(FrameKind.REPORT, {}))
        bad[0] = 0
        with pytest.raises(WireProtocolError):
            decoder.feed(bytes(bad))
        with pytest.raises(WireProtocolError, match="poisoned"):
            decoder.feed(encode_frame(FrameKind.REPORT, {}))


class TestVersioning:
    def test_unsupported_version_rejected(self):
        data = bytearray(encode_frame(FrameKind.REPORT, {}))
        data[2] = 9
        with pytest.raises(WireProtocolError, match="version 9"):
            decode_all(bytes(data))

    def test_hello_at_floor_version_always_accepted(self):
        # A decoder restricted to a hypothetical v2 still reads v1 hellos.
        data = encode_frame(FrameKind.HELLO, {"versions": [1, 2]})
        frames = decode_all(data, accept_versions=(2,))
        assert frames[0].kind is FrameKind.HELLO

    def test_negotiate_picks_highest_common(self):
        assert negotiate_version([1, 2, 9], ours=(1, 2)) == 2
        assert negotiate_version([1], ours=(1,)) == 1

    def test_negotiate_no_common_version(self):
        with pytest.raises(WireProtocolError, match="no common"):
            negotiate_version([3, 4], ours=(1, 2))

    def test_negotiate_malformed_versions_list(self):
        # Garbage from the peer must surface as a protocol error, not
        # an unhandled TypeError/ValueError killing the handler thread.
        with pytest.raises(WireProtocolError, match="malformed"):
            negotiate_version(["abc"], ours=(1, 2))
        with pytest.raises(WireProtocolError, match="malformed"):
            negotiate_version(42, ours=(1, 2))
        with pytest.raises(WireProtocolError, match="malformed"):
            negotiate_version([None], ours=(1, 2))

    def test_hello_payload_shape(self):
        payload = wire.hello_payload("me", chosen=1)
        assert payload == {"agent": "me", "versions": [1, 2], "version": 1}


class TestBatchFrames:
    def test_roundtrip_preserves_order_and_payloads(self):
        inner = [encode_frame(FrameKind.REPORT, {"seq": i})
                 for i in range(5)]
        frames = decode_all(wire.encode_batch(inner))
        assert [frame.payload["seq"] for frame in frames] == list(range(5))
        assert all(frame.kind is FrameKind.REPORT for frame in frames)

    def test_mixed_kinds_in_one_batch(self):
        inner = [encode_frame(FrameKind.REPORT, {"seq": 0}),
                 encode_frame(FrameKind.GAP, {"seq": 1}),
                 encode_frame(FrameKind.HEALTH, {"seq": 2})]
        frames = decode_all(wire.encode_batch(inner))
        assert [frame.kind for frame in frames] == [
            FrameKind.REPORT, FrameKind.GAP, FrameKind.HEALTH]

    def test_batch_interleaves_with_bare_frames(self):
        data = (encode_frame(FrameKind.REPORT, {"seq": 0})
                + wire.encode_batch(
                    [encode_frame(FrameKind.REPORT, {"seq": 1}),
                     encode_frame(FrameKind.REPORT, {"seq": 2})])
                + encode_frame(FrameKind.REPORT, {"seq": 3}))
        frames = decode_all(data)
        assert [frame.payload["seq"] for frame in frames] == [0, 1, 2, 3]

    def test_chunked_batch_decodes_incrementally(self):
        data = wire.encode_batch(
            [encode_frame(FrameKind.REPORT, {"seq": i}) for i in range(4)])
        decoder = FrameDecoder()
        frames = []
        for offset in range(0, len(data), 7):
            frames.extend(decoder.feed(data[offset:offset + 7]))
        assert [frame.payload["seq"] for frame in frames] == [0, 1, 2, 3]

    def test_empty_batch_rejected_on_encode(self):
        with pytest.raises(WireProtocolError, match=">= 1 frame"):
            wire.encode_batch([])

    def test_batch_below_floor_version_rejected_on_encode(self):
        inner = [encode_frame(FrameKind.REPORT, {})]
        with pytest.raises(WireProtocolError, match="version >= 2"):
            wire.encode_batch(inner, version=1)

    def test_v1_only_decoder_rejects_batch(self):
        # A PR-5-era subscriber that never negotiated v2 must treat a
        # BATCH envelope as a protocol violation, not silently skip it.
        data = wire.encode_batch([encode_frame(FrameKind.REPORT, {})])
        with pytest.raises(WireProtocolError, match="version 2"):
            decode_all(data, accept_versions=(1,))

    def test_nested_batch_rejected(self):
        inner = wire.encode_batch([encode_frame(FrameKind.REPORT, {})])
        with pytest.raises(WireProtocolError, match="nested"):
            decode_all(wire.encode_batch([inner]))

    def test_truncated_inner_frame_poisons_decoder(self):
        inner = encode_frame(FrameKind.REPORT, {"seq": 1})
        clipped = inner[:-3]
        body = encode_frame(FrameKind.REPORT, {"seq": 0}) + clipped
        data = (wire._HEADER.pack(wire.MAGIC, wire.BATCH_VERSION,
                                  int(FrameKind.BATCH), len(body)) + body)
        decoder = FrameDecoder()
        with pytest.raises(WireProtocolError, match="truncated inner"):
            decoder.feed(data)
        with pytest.raises(WireProtocolError):
            decoder.feed(encode_frame(FrameKind.REPORT, {}))

    def test_corrupt_inner_magic_rejected(self):
        inner = bytearray(encode_frame(FrameKind.REPORT, {"seq": 0}))
        inner[0] ^= 0xFF
        data = (wire._HEADER.pack(wire.MAGIC, wire.BATCH_VERSION,
                                  int(FrameKind.BATCH), len(inner))
                + bytes(inner))
        with pytest.raises(WireProtocolError, match="magic"):
            decode_all(data)

    def test_oversized_batch_rejected_on_encode(self):
        blob = encode_frame(FrameKind.REPORT,
                            {"blob": "x" * (wire.MAX_PAYLOAD_BYTES // 2)})
        with pytest.raises(WireProtocolError, match="exceeds"):
            wire.encode_batch([blob, blob, blob])


class TestOriginIdentity:
    def test_report_event_identity_prefers_origin(self):
        report = AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={1: 2.0}, idle_w=20.0,
            formula="hpc")
        payload = dict(report.to_wire())
        payload.update(host="edge-1", seq=7,
                       origin_seq=3, origin_epoch="abc")
        frame = encode_frame(FrameKind.REPORT, payload)
        event = wire.decode_event(decode_all(frame)[0])
        assert event.origin_seq == 3 and event.origin_epoch == "abc"
        assert event.identity() == ("edge-1", "abc", 3)

    def test_report_event_identity_falls_back_to_hop_seq(self):
        report = AggregatedPowerReport(
            time_s=1.0, period_s=1.0, by_pid={}, idle_w=20.0,
            formula="hpc", gap=True)
        frame = wire.report_frame(report, host="edge-1", seq=7)
        event = wire.decode_event(decode_all(frame)[0])
        assert event.origin_seq is None and event.origin_epoch is None
        assert event.identity() == ("edge-1", None, 7)


class TestSubscribePayload:
    def test_defaults(self):
        assert wire.subscribe_payload() == {"downsample": 1}

    def test_filters(self):
        payload = wire.subscribe_payload(pids=[3, 1], kinds=["gap", "report"],
                                         downsample=4)
        assert payload == {"downsample": 4, "pids": [1, 3],
                           "kinds": ["gap", "report"]}

    def test_bad_kind_fails_eagerly(self):
        with pytest.raises(WireProtocolError, match="unknown event kind"):
            wire.subscribe_payload(kinds=["bogus"])

    def test_bad_downsample(self):
        with pytest.raises(WireProtocolError):
            wire.subscribe_payload(downsample=0)


class TestTypedEvents:
    def test_report_roundtrip(self):
        report = AggregatedPowerReport(
            time_s=2.0, period_s=1.0, by_pid={7: 2.5, 9: 1.0},
            idle_w=31.48, formula="hpc", gap=False)
        frames = decode_all(wire.report_frame(report, host="m0", seq=41))
        event = decode_event(frames[0])
        assert isinstance(event, ReportEvent)
        assert event.report == report
        assert event.host == "m0" and event.seq == 41

    def test_gap_report_roundtrip(self):
        report = AggregatedPowerReport(
            time_s=5.0, period_s=1.0, by_pid={}, idle_w=31.48,
            formula="hpc", gap=True)
        event = decode_event(decode_all(wire.report_frame(report))[0])
        assert event.report.gap is True and event.report.by_pid == {}

    def test_health_roundtrip(self):
        health = HealthEvent(time_s=3.0, component="hpc-sensor-0",
                             kind="degraded", detail="3 silent periods")
        event = decode_event(decode_all(wire.health_frame(health,
                                                          host="m1"))[0])
        assert isinstance(event, HealthTelemetry)
        assert event.event == health and event.host == "m1"

    def test_gap_marker_roundtrip(self):
        marker = GapMarker(time_s=4.0, period_s=1.0, pid=12, source="hpc")
        event = decode_event(decode_all(wire.gap_frame(marker))[0])
        assert isinstance(event, GapTelemetry)
        assert event.marker == marker

    def test_heartbeat_roundtrip(self):
        event = decode_event(decode_all(
            wire.heartbeat_frame(5, 12.5, host="m0"))[0])
        assert event == Heartbeat(seq=5, time_s=12.5, host="m0")

    def test_malformed_heartbeat_rejected(self):
        frame = Frame(FrameKind.HEARTBEAT, {"seq": "not-a-number"})
        with pytest.raises(WireProtocolError, match="malformed"):
            decode_event(frame)

    def test_handshake_frames_stay_raw(self):
        frame = Frame(FrameKind.HELLO, {"versions": [1]})
        assert decode_event(frame) is frame


class TestSeededFuzz:
    """Generative round-trips and corruption rejection (shared
    strategies from tests.strategies)."""

    @given(report=aggregated_reports(), seq=st.integers(0, (1 << 31) - 1))
    @default_settings
    def test_random_report_roundtrips(self, report, seq):
        event = decode_event(decode_all(
            wire.report_frame(report, host="fuzz", seq=seq))[0])
        assert event.report == report and event.seq == seq

    @given(data=st.data())
    @default_settings
    def test_random_chunking_never_changes_frames(self, data):
        frames_in = [Frame(FrameKind.REPORT, {"seq": i, "w": i * 0.5})
                     for i in range(20)]
        stream = b"".join(encode_frame(f.kind, f.payload)
                          for f in frames_in)
        cuts = data.draw(chunkings(len(stream)))
        decoder = FrameDecoder()
        out = []
        offset = 0
        for cut in cuts:
            out.extend(decoder.feed(stream[offset:cut]))
            offset = cut
        assert out == frames_in

    @given(corruption=header_corruptions)
    @default_settings
    def test_random_single_byte_corruption_rejected_or_detected(
            self, corruption):
        """Flipping any single header byte must raise, not mis-decode.

        Payload corruption may still be valid JSON (flipping a digit),
        so the guarantee under test is header strictness: magic,
        version, kind and length are all validated.
        """
        index, flip = corruption
        corrupt = bytearray(encode_frame(FrameKind.REPORT,
                                         {"seq": 1, "w": 2.5}))
        corrupt[index] ^= flip
        decoder = FrameDecoder()
        try:
            frames = decoder.feed(bytes(corrupt))
        except WireProtocolError:
            return  # rejected: the desired outcome
        # The only tolerated header change is a shorter length field,
        # which just leaves the decoder waiting for more bytes — never
        # a wrongly decoded frame.
        assert all(frame.payload.get("seq") == 1 for frame in frames) \
            or frames == []

    def test_truncation_at_every_boundary_never_yields_frames(self):
        data = encode_frame(FrameKind.HEALTH, {"kind": "degraded"})
        for cut in range(1, len(data)):
            assert decode_all(data[:cut]) == []

"""Unit tests for repro.simcpu.caches (analytic cache model)."""

import pytest

from repro.errors import ConfigurationError
from repro.simcpu.caches import CacheBehaviour, CacheModel, MemoryProfile
from repro.simcpu.spec import intel_i3_2120
from repro.units import kib, mib


@pytest.fixture
def model():
    return CacheModel(intel_i3_2120())


class TestMemoryProfile:
    def test_defaults_valid(self):
        profile = MemoryProfile()
        assert 0 < profile.locality <= 1

    def test_rejects_bad_mem_ops(self):
        with pytest.raises(ConfigurationError):
            MemoryProfile(mem_ops_per_instruction=1.5)

    def test_rejects_negative_working_set(self):
        with pytest.raises(ConfigurationError):
            MemoryProfile(working_set_bytes=-1)

    def test_rejects_zero_locality(self):
        with pytest.raises(ConfigurationError):
            MemoryProfile(locality=0.0)


class TestCacheBehaviourInvariants:
    def test_misses_cannot_exceed_references(self):
        with pytest.raises(ConfigurationError):
            CacheBehaviour(l1_references=1, l1_misses=0.5,
                           llc_references=0.1, llc_misses=0.2,
                           stall_cycles=1.0)


class TestHitRates:
    def test_l1_resident_produces_few_llc_references(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.3,
                                working_set_bytes=kib(16), locality=0.99)
        behaviour = model.behaviour(profile)
        assert behaviour.llc_references < 0.01

    def test_dram_bound_produces_many_misses(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.4,
                                working_set_bytes=256 * mib(1) // mib(1) * mib(1),
                                locality=0.6)
        behaviour = model.behaviour(profile)
        assert behaviour.llc_misses > 0.1

    def test_l3_resident_hits_llc(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.3,
                                working_set_bytes=mib(2), locality=0.95)
        behaviour = model.behaviour(profile)
        # References reach the LLC (missed L1/L2) but mostly hit there.
        assert behaviour.llc_references > 0.01
        assert behaviour.llc_misses < behaviour.llc_references * 0.5

    def test_zero_mem_ops_is_all_zero(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.0)
        behaviour = model.behaviour(profile)
        assert behaviour.llc_references == 0.0
        assert behaviour.stall_cycles == 0.0

    def test_larger_working_set_more_misses(self, model):
        small = model.behaviour(MemoryProfile(working_set_bytes=mib(1)))
        large = model.behaviour(MemoryProfile(working_set_bytes=mib(64)))
        assert large.llc_misses > small.llc_misses

    def test_lower_locality_more_misses(self, model):
        tight = model.behaviour(MemoryProfile(working_set_bytes=mib(8),
                                              locality=0.95))
        loose = model.behaviour(MemoryProfile(working_set_bytes=mib(8),
                                              locality=0.55))
        assert loose.llc_misses > tight.llc_misses

    def test_stall_cycles_grow_with_working_set(self, model):
        small = model.behaviour(MemoryProfile(working_set_bytes=kib(8)))
        large = model.behaviour(MemoryProfile(working_set_bytes=mib(64)))
        assert large.stall_cycles > small.stall_cycles


class TestSharedCacheContention:
    def test_coresident_sets_increase_misses(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.3,
                                working_set_bytes=mib(2), locality=0.9)
        alone = model.behaviour(profile)
        contended = model.behaviour(profile, coresident_sets=[mib(8)])
        assert contended.llc_misses > alone.llc_misses

    def test_contention_only_affects_shared_levels(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.3,
                                working_set_bytes=kib(16), locality=0.99)
        alone = model.behaviour(profile)
        contended = model.behaviour(profile, coresident_sets=[mib(64)])
        # L1-resident working set: private L1 unaffected.
        assert contended.l1_misses == pytest.approx(alone.l1_misses)

    def test_equal_share_floor(self, model):
        # One co-resident giant must not squeeze us below a half share.
        profile = MemoryProfile(mem_ops_per_instruction=0.3,
                                working_set_bytes=mib(1), locality=0.9)
        huge = model.behaviour(profile, coresident_sets=[mib(512)])
        # Half of the 3 MB L3 still covers the 1 MB working set.
        assert huge.llc_misses < huge.llc_references * 0.5


class TestDramTraffic:
    def test_bytes_per_instruction(self, model):
        profile = MemoryProfile(mem_ops_per_instruction=0.4,
                                working_set_bytes=mib(64), locality=0.6)
        behaviour = model.behaviour(profile)
        expected = behaviour.llc_misses * 64
        assert model.dram_bytes_per_instruction(behaviour) == pytest.approx(
            expected)

"""Unit tests for repro.core.selection (counter ranking)."""

import numpy as np
import pytest

from repro.core.sampling import SamplePoint, SamplingDataset
from repro.core.selection import rank_counters, select_counters
from repro.errors import ConfigurationError
from repro.simcpu import counters as ev


def make_dataset(n=200, seed=1):
    """Synthetic dataset where power = f(instructions) strongly,
    cache-misses weakly, branches not at all."""
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n):
        instructions = float(rng.uniform(1e8, 1e10))
        misses = float(rng.uniform(1e5, 1e7))
        branches = float(rng.uniform(1e6, 1e8))
        # Monotone but non-linear in instructions: Spearman-friendly.
        power = 30 + (instructions / 1e9) ** 1.7 + 1.0 * misses / 1e6
        points.append(SamplePoint(
            frequency_hz=3_300_000_000, workload="synthetic",
            rates={ev.INSTRUCTIONS: instructions, ev.CACHE_MISSES: misses,
                   ev.BRANCHES: branches},
            power_w=power))
    return SamplingDataset(points, (ev.INSTRUCTIONS, ev.CACHE_MISSES,
                                    ev.BRANCHES))


class TestRanking:
    def test_strongest_event_first(self):
        ranking = rank_counters(make_dataset(), method="spearman")
        assert ranking.ranked[0][0] == ev.INSTRUCTIONS

    def test_uncorrelated_event_last(self):
        ranking = rank_counters(make_dataset(), method="spearman")
        assert ranking.ranked[-1][0] == ev.BRANCHES

    def test_scores_within_unit_interval(self):
        ranking = rank_counters(make_dataset())
        for _event, score in ranking.ranked:
            assert 0.0 <= score <= 1.0

    def test_spearman_beats_pearson_on_monotone_nonlinear(self):
        dataset = make_dataset()
        spearman = rank_counters(dataset, method="spearman")
        pearson = rank_counters(dataset, method="pearson")
        assert (spearman.score(ev.INSTRUCTIONS)
                >= pearson.score(ev.INSTRUCTIONS))

    def test_constant_column_scores_zero(self):
        points = [SamplePoint(
            frequency_hz=1, workload="w",
            rates={ev.INSTRUCTIONS: 5.0, ev.CACHE_MISSES: float(i)},
            power_w=30.0 + i) for i in range(10)]
        dataset = SamplingDataset(points, (ev.INSTRUCTIONS, ev.CACHE_MISSES))
        ranking = rank_counters(dataset)
        assert ranking.score(ev.INSTRUCTIONS) == 0.0
        assert ranking.score(ev.CACHE_MISSES) > 0.9

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            rank_counters(make_dataset(), method="kendall")

    def test_too_few_samples(self):
        dataset = make_dataset(n=2)
        with pytest.raises(ConfigurationError):
            rank_counters(dataset)

    def test_portable_filter_drops_intel_only(self):
        points = [SamplePoint(
            frequency_hz=1, workload="w",
            rates={ev.REF_CYCLES: float(i), ev.INSTRUCTIONS: float(i)},
            power_w=30.0 + i) for i in range(10)]
        dataset = SamplingDataset(points, (ev.REF_CYCLES, ev.INSTRUCTIONS))
        ranking = rank_counters(dataset, portable_only=True)
        names = [name for name, _score in ranking.ranked]
        assert ev.REF_CYCLES not in names
        unrestricted = rank_counters(dataset, portable_only=False)
        assert ev.REF_CYCLES in [n for n, _s in unrestricted.ranked]

    def test_score_of_absent_event(self):
        ranking = rank_counters(make_dataset())
        assert ranking.score(ev.BUS_CYCLES) == 0.0


class TestSelection:
    def test_top_k(self):
        selected = select_counters(make_dataset(), k=2)
        assert len(selected) == 2
        assert selected[0] == ev.INSTRUCTIONS

    def test_k_must_be_positive(self):
        ranking = rank_counters(make_dataset())
        with pytest.raises(ConfigurationError):
            ranking.top(0)

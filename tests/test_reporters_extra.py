"""Unit tests for the JSONL and Prometheus reporters."""

import json

import pytest

from repro.actors.system import ActorSystem
from repro.core.messages import AggregatedPowerReport
from repro.core.reporters import JsonlReporter, PrometheusReporter


def publish(system, time_s=1.0, by_pid=None):
    system.event_bus.publish(AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid=by_pid if by_pid is not None else {100: 5.5},
        idle_w=31.48, formula="test"))
    system.dispatch()


class TestJsonlReporter:
    def test_one_record_per_report(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        system = ActorSystem()
        reporter = JsonlReporter(path)
        ref = system.spawn(reporter, "jsonl")
        publish(system, time_s=1.0)
        publish(system, time_s=2.0)
        system.stop(ref)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert reporter.records_written == 2

    def test_records_parse_and_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        system = ActorSystem()
        ref = system.spawn(JsonlReporter(path), "jsonl")
        publish(system, time_s=1.0, by_pid={7: 2.25, 9: 1.0})
        system.stop(ref)
        record = json.loads(path.read_text().strip())
        assert record["time_s"] == 1.0
        assert record["total_w"] == pytest.approx(31.48 + 3.25)
        assert record["by_pid"] == {"7": 2.25, "9": 1.0}

    def test_file_closed_on_stop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        system = ActorSystem()
        reporter = JsonlReporter(path)
        ref = system.spawn(reporter, "jsonl")
        system.stop(ref)
        assert reporter._file is None


class TestPrometheusReporter:
    def test_exposition_format(self, tmp_path):
        path = tmp_path / "powerapi.prom"
        system = ActorSystem()
        system.spawn(PrometheusReporter(path), "prom")
        publish(system, by_pid={100: 5.5, 200: 1.25})
        text = path.read_text()
        assert "# TYPE powerapi_machine_watts gauge" in text
        assert "powerapi_machine_watts 38.2300" in text
        assert 'powerapi_process_watts{pid="100"} 5.5000' in text
        assert 'powerapi_process_watts{pid="200"} 1.2500' in text

    def test_latest_report_wins(self, tmp_path):
        path = tmp_path / "powerapi.prom"
        system = ActorSystem()
        system.spawn(PrometheusReporter(path), "prom")
        publish(system, time_s=1.0, by_pid={100: 5.0})
        publish(system, time_s=2.0, by_pid={100: 9.0})
        text = path.read_text()
        assert 'powerapi_process_watts{pid="100"} 9.0000' in text
        assert "5.0000" not in text

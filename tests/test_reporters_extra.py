"""Unit tests for the JSONL and Prometheus reporters."""

import json

import pytest

from repro.actors.system import ActorSystem
from repro.core.messages import AggregatedPowerReport
from repro.core.reporters import JsonlReporter, PrometheusReporter


def publish(system, time_s=1.0, by_pid=None):
    system.event_bus.publish(AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid=by_pid if by_pid is not None else {100: 5.5},
        idle_w=31.48, formula="test"))
    system.dispatch()


class TestJsonlReporter:
    def test_one_record_per_report(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        system = ActorSystem()
        reporter = JsonlReporter(path)
        ref = system.spawn(reporter, "jsonl")
        publish(system, time_s=1.0)
        publish(system, time_s=2.0)
        system.stop(ref)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert reporter.records_written == 2

    def test_records_parse_and_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        system = ActorSystem()
        ref = system.spawn(JsonlReporter(path), "jsonl")
        publish(system, time_s=1.0, by_pid={7: 2.25, 9: 1.0})
        system.stop(ref)
        record = json.loads(path.read_text().strip())
        assert record["time_s"] == 1.0
        assert record["total_w"] == pytest.approx(31.48 + 3.25)
        assert record["by_pid"] == {"7": 2.25, "9": 1.0}

    def test_file_closed_on_stop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        system = ActorSystem()
        reporter = JsonlReporter(path)
        ref = system.spawn(reporter, "jsonl")
        system.stop(ref)
        assert reporter._file is None


class TestPrometheusReporter:
    def test_exposition_format(self, tmp_path):
        path = tmp_path / "powerapi.prom"
        system = ActorSystem()
        system.spawn(PrometheusReporter(path), "prom")
        publish(system, by_pid={100: 5.5, 200: 1.25})
        text = path.read_text()
        assert "# TYPE powerapi_machine_watts gauge" in text
        assert "powerapi_machine_watts 38.2300" in text
        assert 'powerapi_process_watts{pid="100"} 5.5000' in text
        assert 'powerapi_process_watts{pid="200"} 1.2500' in text

    def test_latest_report_wins(self, tmp_path):
        path = tmp_path / "powerapi.prom"
        system = ActorSystem()
        system.spawn(PrometheusReporter(path), "prom")
        publish(system, time_s=1.0, by_pid={100: 5.0})
        publish(system, time_s=2.0, by_pid={100: 9.0})
        text = path.read_text()
        assert 'powerapi_process_watts{pid="100"} 9.0000' in text
        assert "5.0000" not in text


class TestAppendResume:
    """Restart-safe file reporters: an interrupted run's successor
    appends to the same file instead of truncating it or doubling the
    header."""

    def test_csv_resumes_without_duplicate_header(self, tmp_path):
        from repro.core.reporters import CsvReporter
        path = tmp_path / "run.csv"
        first_session = ActorSystem()
        first = CsvReporter(path, pids=[100])
        ref = first_session.spawn(first, "csv")
        publish(first_session, time_s=1.0)
        first_session.stop(ref)
        assert not first.resumed

        second_session = ActorSystem()
        second = CsvReporter(path, pids=[100])
        ref = second_session.spawn(second, "csv")
        publish(second_session, time_s=2.0)
        second_session.stop(ref)
        assert second.resumed

        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # one header + two data rows
        assert lines[0].startswith("time_s,")
        assert sum(1 for line in lines if line.startswith("time_s,")) == 1
        assert lines[1].startswith("1.000,")
        assert lines[2].startswith("2.000,")

    def test_csv_empty_file_gets_header(self, tmp_path):
        from repro.core.reporters import CsvReporter
        path = tmp_path / "run.csv"
        path.touch()  # exists but empty: not a resume
        system = ActorSystem()
        reporter = CsvReporter(path, pids=[100])
        ref = system.spawn(reporter, "csv")
        publish(system, time_s=1.0)
        system.stop(ref)
        assert not reporter.resumed
        assert path.read_text().startswith("time_s,")

    def test_jsonl_resumes_appending(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for time_s in (1.0, 2.0):
            system = ActorSystem()
            reporter = JsonlReporter(path)
            ref = system.spawn(reporter, "jsonl")
            publish(system, time_s=time_s)
            system.stop(ref)
        records = [json.loads(line)
                   for line in path.read_text().strip().splitlines()]
        assert [record["time_s"] for record in records] == [1.0, 2.0]

    def test_fsync_reporters_flush_durably(self, tmp_path):
        from repro.core.reporters import CsvReporter
        system = ActorSystem()
        csv_reporter = CsvReporter(tmp_path / "run.csv", pids=[100],
                                   fsync=True)
        jsonl_reporter = JsonlReporter(tmp_path / "run.jsonl", fsync=True)
        system.spawn(csv_reporter, "csv")
        system.spawn(jsonl_reporter, "jsonl")
        publish(system, time_s=1.0)
        # Every flush point fsyncs; the files are already complete on
        # disk without stop() being called.
        assert (tmp_path / "run.csv").read_text().count("\n") == 2
        assert (tmp_path / "run.jsonl").read_text().count("\n") == 1
        csv_reporter.flush()
        jsonl_reporter.flush()
        system.shutdown()

    def test_flush_every_batches_with_fsync(self, tmp_path):
        from repro.core.reporters import CsvReporter
        system = ActorSystem()
        reporter = CsvReporter(tmp_path / "run.csv", pids=[100],
                               flush_every=3, fsync=True)
        ref = system.spawn(reporter, "csv")
        publish(system, time_s=1.0)
        publish(system, time_s=2.0)
        # Below the batch size nothing is guaranteed on disk yet;
        # stopping flushes and fsyncs the remainder.
        system.stop(ref)
        lines = (tmp_path / "run.csv").read_text().strip().splitlines()
        assert len(lines) == 3

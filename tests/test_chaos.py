"""Crash-recovery chaos tests: sequence/resume replay, eviction gaps,
spooled crash-restart, fault-injected streams and backward compatibility
with pre-RESUME clients.

All assertions are condition-driven (collect exactly N events, then
check invariants) — nothing here depends on scheduler timing.  The
long seeded soak lives in ``benchmarks/test_chaos_soak.py``; this file
is the deterministic tier-1 slice of the same guarantees.
"""

import socket
import threading

import pytest

from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import ConfigurationError
from repro.faults import (ByteCorruption, CircuitBreaker, ConnectionReset,
                          NetworkFaultInjector, NetworkFaultPlan)
from repro.telemetry import wire
from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.server import ReplayBuffer, TelemetryServer
from repro.telemetry.spool import Spool
from repro.telemetry.wire import (FrameKind, GapTelemetry, HealthTelemetry,
                                  ReportEvent)

pytestmark = [pytest.mark.telemetry, pytest.mark.chaos]


def report(time_s=1.0, by_pid=None):
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid=by_pid if by_pid is not None else {100: 5.5},
        idle_w=31.48, formula="hpc", gap=False)


@pytest.fixture
def server():
    srv = TelemetryServer(port=0, queue_capacity=64,
                          replay_window=128).start()
    yield srv
    srv.stop()


def make_client(server, **kwargs):
    client = TelemetryClient("127.0.0.1", server.port,
                             read_timeout_s=10.0, **kwargs)
    client.connect()
    return client


class TestReplayBuffer:
    """The ring's since() answers, unit-tested without I/O."""

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(0)

    def test_everything_held_no_eviction(self):
        ring = ReplayBuffer(8)
        for seq in range(4):
            ring.append(seq, FrameKind.REPORT, b"%d" % seq)
        frames, evicted = ring.since(1)
        assert [item[0] for item in frames] == [2, 3]
        assert evicted is None

    def test_eviction_detected(self):
        ring = ReplayBuffer(2)
        for seq in range(5):  # ring holds seqs 3, 4
            ring.append(seq, FrameKind.REPORT, b"%d" % seq)
        frames, evicted = ring.since(0)
        assert [item[0] for item in frames] == [3, 4]
        assert evicted == 2  # seqs 1..2 scrolled out

    def test_fully_evicted(self):
        ring = ReplayBuffer(2)
        for seq in range(10):  # holds 8, 9
            ring.append(seq, FrameKind.REPORT, b"%d" % seq)
        frames, evicted = ring.since(9)
        assert frames == [] and evicted is None  # nothing was missed

    def test_empty_ring(self):
        frames, evicted = ReplayBuffer(4).since(0)
        assert frames == [] and evicted is None


class TestResumeReplay:
    """RESUME handshake against a live server."""

    def test_sequence_numbers_on_stream_frames(self, server):
        client = make_client(server)
        server.wait_for(lambda: server.subscriber_count == 1)
        server.publish_report(report(time_s=1.0))
        server.publish_health(HealthEvent(
            time_s=1.5, component="sensor", kind="degraded", detail=""))
        server.publish_gap(GapMarker(time_s=2.0, pid=-1, period_s=1.0,
                                     source="sensor"))
        events = client.collect(3)
        assert [event.seq for event in events] == [0, 1, 2]
        assert client.last_seq == 2  # dedup armed even without a spool
        client.close()

    def test_reconnect_resumes_and_replays(self, server, tmp_path):
        """A crashed consumer reconnects and receives exactly the frames
        published while it was gone — no loss, no duplicates."""
        first = make_client(server, spool=tmp_path)
        server.wait_for(lambda: server.subscriber_count == 1)
        server.publish_report(report(time_s=1.0))
        server.publish_report(report(time_s=2.0))
        assert [e.report.time_s for e in first.collect(2)] == [1.0, 2.0]
        first.close()  # crash: the spool file survives

        for time_s in (3.0, 4.0, 5.0):  # published while it was down
            server.publish_report(report(time_s=time_s))

        second = make_client(server, spool=tmp_path)
        events = second.collect(3)
        assert [e.report.time_s for e in events] == [3.0, 4.0, 5.0]
        assert [e.seq for e in events] == [2, 3, 4]
        assert second.resumes_sent == 1
        assert second.duplicates_dropped == 0
        stats = server.stats()
        assert stats["resumes_served"] == 1
        assert stats["frames_replayed"] == 3
        assert stats["replay_evictions"] == 0
        second.close()

    def test_eviction_yields_explicit_gap(self, tmp_path):
        """Frames that scrolled out of the replay window surface as one
        explicit replay-eviction gap, never as silence."""
        server = TelemetryServer(port=0, replay_window=2).start()
        try:
            first = make_client(server, spool=tmp_path)
            server.wait_for(lambda: server.subscriber_count == 1)
            server.publish_report(report(time_s=1.0))
            first.collect(1)
            first.close()

            for time_s in (2.0, 3.0, 4.0, 5.0):  # window keeps the last 2
                server.publish_report(report(time_s=time_s))

            second = make_client(server, spool=tmp_path)
            events = second.collect(3)
            gap, late1, late2 = events
            assert isinstance(gap, GapTelemetry)
            assert gap.marker.source == "replay-eviction"
            assert gap.evicted_from == 1 and gap.evicted_through == 2
            assert [late1.report.time_s, late2.report.time_s] == [4.0, 5.0]
            assert server.stats()["replay_evictions"] == 1
            second.close()
        finally:
            server.stop()

    def test_replay_respects_pid_filter(self, server, tmp_path):
        """Regression: replayed frames used to bypass the subscription
        filters — a pid-scoped consumer resuming after a crash received
        every frame in the window, including other pids' reports."""
        first = make_client(server, spool=tmp_path, pids=[100])
        server.wait_for(lambda: server.subscriber_count == 1)
        server.publish_report(report(time_s=1.0))  # seq 0, pid 100
        assert first.collect(1)[0].seq == 0
        first.close()

        # Published while the consumer was down: two frames it must
        # NOT see on resume, one it must.
        server.publish_report(report(time_s=2.0, by_pid={200: 1.0}))
        server.publish_report(report(time_s=3.0, by_pid={200: 2.0}))
        server.publish_report(report(time_s=4.0,
                                     by_pid={100: 9.0, 200: 1.0}))

        second = make_client(server, spool=tmp_path, pids=[100])
        events = second.collect(1)
        assert events[0].report.time_s == 4.0
        assert events[0].seq == 3
        # The replayed payload is narrowed exactly like a live one.
        assert set(events[0].report.by_pid) == {100}
        stats = server.stats()
        assert stats["resumes_served"] == 1
        assert stats["frames_replayed"] == 1
        second.close()

    def test_replay_respects_kind_filter(self, server, tmp_path):
        first = make_client(server, spool=tmp_path, kinds=["report"])
        server.wait_for(lambda: server.subscriber_count == 1)
        server.publish_report(report(time_s=1.0))  # seq 0
        assert first.collect(1)[0].seq == 0
        first.close()

        server.publish_health(HealthEvent(  # seq 1: filtered on resume
            time_s=1.5, component="sensor", kind="degraded", detail=""))
        server.publish_report(report(time_s=2.0))  # seq 2

        second = make_client(server, spool=tmp_path, kinds=["report"])
        events = second.collect(1)
        assert isinstance(events[0], ReportEvent)
        assert events[0].seq == 2 and events[0].report.time_s == 2.0
        assert server.stats()["frames_replayed"] == 1
        second.close()

    def test_replay_respects_downsample_cadence(self, server, tmp_path):
        """Replay applies the same every-Nth predicate as the live
        path: the reconnected subscription's counter starts fresh, so
        the replayed window is downsampled exactly like a live stream
        would be for this connection — not delivered wholesale."""
        first = make_client(server, spool=tmp_path, downsample=2)
        server.wait_for(lambda: server.subscriber_count == 1)
        server.publish_report(report(time_s=1.0))  # index 0: delivered
        assert first.collect(1)[0].seq == 0
        first.close()

        for time_s in (2.0, 3.0, 4.0, 5.0):  # published while away
            server.publish_report(report(time_s=time_s))

        second = make_client(server, spool=tmp_path, downsample=2)
        events = second.collect(2)
        # Replay indexes 0 and 2 of this connection fall on the
        # cadence; the frames between them are skipped, not queued.
        assert [e.report.time_s for e in events] == [2.0, 4.0]
        assert server.stats()["frames_replayed"] == 2
        second.close()

    def test_resume_rejected_across_server_restart(self, tmp_path):
        """A seq from another server's epoch must not be replayed."""
        first_server = TelemetryServer(port=0, replay_window=16).start()
        client = make_client(first_server, spool=tmp_path)
        first_server.wait_for(lambda: first_server.subscriber_count == 1)
        first_server.publish_report(report(time_s=1.0))
        first_server.publish_report(report(time_s=2.0))
        client.collect(2)
        client.close()
        first_server.stop()
        assert Spool(tmp_path / "telemetry.spool").last_seq() == 1

        second_server = TelemetryServer(port=0, replay_window=16).start()
        try:
            second = make_client(second_server, spool=tmp_path)
            second_server.wait_for(
                lambda: second_server.subscriber_count == 1)
            second_server.publish_report(report(time_s=9.0))
            events = second.collect(1)
            # Seq 0 of the new epoch is delivered, not deduplicated
            # against the old epoch's seq 1.
            assert events[0].seq == 0
            assert events[0].report.time_s == 9.0
            assert second_server.stats()["resumes_rejected"] == 1
            second.close()
        finally:
            second_server.stop()

    def test_bad_resume_payload_refused(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO, wire.hello_payload(agent="bad-resume")))
            sock.sendall(wire.encode_frame(
                FrameKind.RESUME, {"last_seq": "not-a-number"}))
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE, wire.subscribe_payload()))
            sock.settimeout(5.0)
            frames = wire.FrameDecoder().feed(sock.recv(65536))
            assert frames and frames[0].kind is FrameKind.ERROR
            assert "RESUME" in frames[0].payload["reason"]


class TestBackwardCompatibility:

    def test_pre_resume_client_still_streams(self, server):
        """A PR-4-era client (plain HELLO + SUBSCRIBE, no RESUME, no
        feature awareness) completes the handshake and receives frames."""
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.settimeout(10.0)
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO, wire.hello_payload(agent="old-client")))
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE, wire.subscribe_payload()))
            decoder = wire.FrameDecoder()
            frames = []
            while not frames:
                frames = decoder.feed(sock.recv(65536))
            reply = frames.pop(0)
            assert reply.kind is FrameKind.HELLO
            # New fields ride along; an old client simply ignores them.
            assert reply.payload["features"] == ["resume"]
            server.wait_for(lambda: server.subscriber_count == 1)
            server.publish_report(report(time_s=1.0))
            while not frames:
                frames = decoder.feed(sock.recv(65536))
            event = wire.decode_event(frames[0])
            assert isinstance(event, ReportEvent)
            assert event.report.time_s == 1.0

    def test_client_against_featureless_reply_sends_no_resume(self):
        """A client that learned the server lacks RESUME never sends one
        (kind 8 must not reach old servers)."""
        client = TelemetryClient("127.0.0.1", 1, spool=None)
        assert client._resume_supported is None
        client.server_features = ()
        client._resume_supported = False
        client.last_seq = 7
        # The guard in connect(): resume only when not explicitly
        # unsupported.  (Asserting the predicate keeps this free of
        # sockets; the live path is covered above.)
        assert not (client.last_seq is not None
                    and client._resume_supported is not False)
        client.close()


class TestChaoticStream:
    """Fault-injected end-to-end sessions, driven by a fake plan clock."""

    def _publish_all(self, server, count, start=0):
        for index in range(start, start + count):
            server.publish_report(report(time_s=float(index + 1)))

    def test_soak_lite_no_loss_no_duplicates(self, tmp_path):
        """Resets + mid-stream corruption + a consumer crash-restart:
        every published report is delivered exactly once, in order."""
        clock = [0.0]
        plan = NetworkFaultPlan([
            ConnectionReset(10.0), ConnectionReset(10.0),
            ByteCorruption(20.0, nbytes=3),
            ConnectionReset(30.0),
        ])
        injector = NetworkFaultInjector(plan, clock=lambda: clock[0],
                                        sleep=lambda _s: None)
        server = TelemetryServer(port=0, replay_window=256).start()
        received = []
        try:
            client = TelemetryClient(
                "127.0.0.1", server.port, read_timeout_s=10.0,
                reconnect=ReconnectPolicy(base_s=0.005, max_s=0.02),
                spool=tmp_path, transport=injector.wrap,
                breaker=CircuitBreaker(failure_threshold=50,
                                       reset_timeout_s=0.05))
            client.connect()
            server.wait_for(lambda: server.subscriber_count == 1)

            self._publish_all(server, 10)          # seqs 0..9, clean
            received += client.collect(10)

            clock[0] = 10.0                        # two resets due
            self._publish_all(server, 10, start=10)
            received += client.collect(10)
            assert client.reconnects >= 1

            clock[0] = 20.0                        # corruption due
            self._publish_all(server, 10, start=20)
            received += client.collect(10)

            # Consumer crash: drop the client, keep the spool.
            client.close()
            self._publish_all(server, 10, start=30)

            clock[0] = 30.0                        # reset during redial
            restarted = TelemetryClient(
                "127.0.0.1", server.port, read_timeout_s=10.0,
                reconnect=ReconnectPolicy(base_s=0.005, max_s=0.02),
                spool=tmp_path, transport=injector.wrap)
            received += restarted.collect(10)
            restarted.close()

            # The invariants: zero loss, zero duplicates, in order.
            times = [event.report.time_s for event in received
                     if isinstance(event, ReportEvent)]
            assert times == [float(index + 1) for index in range(40)]
            assert not any(isinstance(event, GapTelemetry)
                           for event in received)
            assert injector.resets_injected >= 2
            assert injector.corruptions_injected == 1
        finally:
            server.stop()

    def test_corruption_recovery_counts_stream_error(self, tmp_path):
        """One corrupted chunk poisons the decoder; the client redials,
        resumes, and the stream continues without loss."""
        clock = [0.0]
        injector = NetworkFaultInjector(
            NetworkFaultPlan([ByteCorruption(5.0, nbytes=1)]),
            clock=lambda: clock[0], sleep=lambda _s: None)
        server = TelemetryServer(port=0, replay_window=64).start()
        try:
            client = TelemetryClient(
                "127.0.0.1", server.port, read_timeout_s=10.0,
                reconnect=ReconnectPolicy(base_s=0.005, max_s=0.02),
                spool=tmp_path, transport=injector.wrap)
            client.connect()
            server.wait_for(lambda: server.subscriber_count == 1)
            server.publish_report(report(time_s=1.0))
            assert client.collect(1)[0].report.time_s == 1.0

            clock[0] = 5.0  # next recv chunk is corrupted
            server.publish_report(report(time_s=2.0))
            server.publish_report(report(time_s=3.0))
            events = client.collect(2)
            assert [e.report.time_s for e in events] == [2.0, 3.0]
            assert client.stream_errors >= 1
            assert client.reconnects >= 1
            assert client.duplicates_dropped == 0
            client.close()
        finally:
            server.stop()

    def test_breaker_opens_against_dead_server(self):
        """A hard-down server trips the breaker; re-dials are refused
        without burning sockets until the reset timeout."""
        server = TelemetryServer(port=0).start()
        port = server.port
        server.stop()  # nothing listens here any more
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.05)
        client = TelemetryClient(
            "127.0.0.1", port, connect_timeout_s=0.2,
            reconnect=ReconnectPolicy(base_s=0.001, max_s=0.002,
                                      max_attempts=6),
            breaker=breaker)
        from repro.errors import TelemetryConnectionError
        with pytest.raises(TelemetryConnectionError, match="gave up"):
            list(client.events(max_events=1))
        assert breaker.state == "open"
        assert breaker.opens >= 1
        assert breaker.refusals >= 1  # attempts refused, not dialed
        client.close()

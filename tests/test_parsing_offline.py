"""Unit tests for perf-output parsing and offline estimation."""

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.offline import (CounterLogWriter, estimate_from_csv,
                                estimate_from_log)
from repro.errors import ConfigurationError, PerfError, UnknownEventError
from repro.perf.parsing import (parse_counter_log, parse_perf_stat_csv,
                                parse_perf_stat_text)
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz


PERF_CSV = """\
# started on Wed Jul  8 10:00:00 2026
12345678901,,instructions,1000000,100.00,,
2345678,,cache-references,1000000,100.00,,
345678,,cache-misses,1000000,100.00,,
<not counted>,,branches,0,0.00,,
98765,,some-vendor-thing,1000000,100.00,,
"""

PERF_TEXT = """\
 Performance counter stats for 'stress --cpu 4':

     12,345,678,901      instructions              #    1.02  insn per cycle
          2,345,678      cache-references
            345,678      cache-misses              #   14.74 % of all cache refs
     <not counted>       branches
       1.234567890 seconds time elapsed
"""


class TestPerfStatCsv:
    def test_parses_values(self):
        result = parse_perf_stat_csv(PERF_CSV)
        assert result["instructions"] == 12345678901
        assert result["cache-references"] == 2345678
        assert result["cache-misses"] == 345678

    def test_not_counted_maps_to_none(self):
        result = parse_perf_stat_csv(PERF_CSV)
        assert result["branches"] is None

    def test_unknown_events_skipped_by_default(self):
        result = parse_perf_stat_csv(PERF_CSV)
        assert "some-vendor-thing" not in result

    def test_strict_raises_on_unknown(self):
        with pytest.raises(UnknownEventError):
            parse_perf_stat_csv(PERF_CSV, strict=True)

    def test_comments_ignored(self):
        result = parse_perf_stat_csv("# just a comment\n")
        assert result == {}

    def test_vendor_spelling_resolved(self):
        result = parse_perf_stat_csv("1000,,INST_RETIRED:ANY_P,1,100,,\n")
        assert result["instructions"] == 1000


class TestPerfStatText:
    def test_parses_table(self):
        result = parse_perf_stat_text(PERF_TEXT)
        assert result["instructions"] == 12345678901
        assert result["cache-misses"] == 345678

    def test_commentary_after_hash_ignored(self):
        result = parse_perf_stat_text(
            "  100      instructions   # whatever 1,2,3\n")
        assert result["instructions"] == 100

    def test_not_counted(self):
        result = parse_perf_stat_text(PERF_TEXT)
        assert result["branches"] is None

    def test_non_counter_lines_skipped(self):
        result = parse_perf_stat_text(PERF_TEXT)
        # "1.234567890 seconds ..." must not be mistaken for an event.
        assert len(result) == 4


class TestCounterLog:
    def test_roundtrip(self):
        text = ("time_s,instructions,cache-misses\n"
                "1.0,1000,10\n"
                "2.0,2000,20\n")
        rows = parse_counter_log(text)
        assert rows == [(1.0, {"instructions": 1000.0,
                               "cache-misses": 10.0}),
                        (2.0, {"instructions": 2000.0,
                               "cache-misses": 20.0})]

    def test_requires_time_column(self):
        with pytest.raises(PerfError):
            parse_counter_log("instructions\n100\n")

    def test_rejects_ragged_rows(self):
        with pytest.raises(PerfError):
            parse_counter_log("time_s,instructions\n1.0,1,2\n")

    def test_rejects_unsorted_times(self):
        with pytest.raises(PerfError):
            parse_counter_log("time_s,instructions\n2.0,1\n1.0,2\n")

    def test_empty_rejected(self):
        with pytest.raises(PerfError):
            parse_counter_log("")


@pytest.fixture
def model():
    return PowerModel(idle_w=31.48, formulas=[
        FrequencyFormula(ghz(3.3), {"instructions": 1e-9,
                                    "cache-misses": 1e-7}),
        FrequencyFormula(ghz(1.6), {"instructions": 5e-10,
                                    "cache-misses": 5e-8}),
    ])


class TestEstimateFromLog:
    def test_replay_produces_power_trace(self, model):
        rows = [(1.0, {"instructions": 1e9, "cache-misses": 1e7}),
                (2.0, {"instructions": 2e9, "cache-misses": 1e7})]
        trace = estimate_from_log(model, rows, frequency_hz=ghz(3.3))
        assert len(trace) == 2
        assert trace.powers_w[0] == pytest.approx(31.48 + 1.0 + 1.0)
        assert trace.powers_w[1] == pytest.approx(31.48 + 2.0 + 1.0)

    def test_defaults_to_highest_frequency(self, model):
        rows = [(1.0, {"instructions": 1e9}), (2.0, {"instructions": 1e9})]
        default = estimate_from_log(model, rows)
        explicit = estimate_from_log(model, rows, frequency_hz=ghz(3.3))
        assert default.powers_w == explicit.powers_w

    def test_single_row_rejected(self, model):
        with pytest.raises(ConfigurationError):
            estimate_from_log(model, [(1.0, {"instructions": 1e9})])

    def test_non_increasing_times_rejected(self, model):
        rows = [(1.0, {"instructions": 1e9}), (1.0, {"instructions": 1e9})]
        with pytest.raises(ConfigurationError):
            estimate_from_log(model, rows)


class TestEndToEndOfflineWorkflow:
    def test_record_then_replay_matches_live(self, model, tmp_path):
        """The offline replay of a recorded run equals live estimation."""
        spec = intel_i3_2120()
        machine = Machine(spec)
        machine.set_frequency(spec.max_frequency_hz)
        writer = CounterLogWriter(
            machine, events=("instructions", "cache-misses"))
        assignment = ThreadAssignment(
            pid=1, cpu_id=0, busy_fraction=1.0, mix=InstructionMix(),
            memory=MemoryProfile(working_set_bytes=8192, locality=0.99))
        live_powers = []
        for _second in range(5):
            machine.run([assignment], 1.0, dt_s=0.05)
            deltas = writer.sample()
            rates = {event: delta / 1.0 for event, delta in deltas.items()}
            live_powers.append(model.predict_total(
                spec.max_frequency_hz, rates))
        writer.close()

        path = tmp_path / "counters.csv"
        writer.write_to(path)
        trace = estimate_from_csv(model, path,
                                  frequency_hz=spec.max_frequency_hz)
        assert list(trace.powers_w) == pytest.approx(live_powers, rel=1e-4)

    def test_writer_requires_events(self):
        machine = Machine(intel_i3_2120())
        with pytest.raises(ConfigurationError):
            CounterLogWriter(machine, events=())

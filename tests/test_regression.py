"""Unit tests for repro.core.regression."""

import numpy as np
import pytest

from repro.core.regression import (METHODS, fit, fit_nnls, fit_ols,
                                   fit_ridge)
from repro.errors import ConfigurationError, InsufficientDataError


def make_linear_data(coefficients, intercept, n=50, seed=0, noise=0.0):
    """Samples drawn from a known linear model."""
    rng = np.random.default_rng(seed)
    features = sorted(coefficients)
    samples = []
    targets = []
    for _ in range(n):
        row = {name: float(rng.uniform(0, 10)) for name in features}
        value = intercept + sum(coefficients[k] * row[k] for k in features)
        value += noise * float(rng.standard_normal())
        samples.append(row)
        targets.append(value)
    return samples, targets, features


class TestOls:
    def test_recovers_exact_model(self):
        truth = {"a": 2.0, "b": -1.5}
        samples, targets, features = make_linear_data(truth, 4.0)
        result = fit_ols(samples, targets, features)
        assert result.coefficients["a"] == pytest.approx(2.0)
        assert result.coefficients["b"] == pytest.approx(-1.5)
        assert result.intercept == pytest.approx(4.0)
        assert result.r2 == pytest.approx(1.0)

    def test_noise_degrades_r2(self):
        truth = {"a": 2.0}
        samples, targets, features = make_linear_data(truth, 0.0, noise=3.0)
        result = fit_ols(samples, targets, features)
        assert result.r2 < 1.0

    def test_without_intercept(self):
        truth = {"a": 3.0}
        samples, targets, features = make_linear_data(truth, 0.0)
        result = fit_ols(samples, targets, features, fit_intercept=False)
        assert result.intercept == 0.0
        assert result.coefficients["a"] == pytest.approx(3.0)

    def test_predict(self):
        truth = {"a": 2.0}
        samples, targets, features = make_linear_data(truth, 1.0)
        result = fit_ols(samples, targets, features)
        assert result.predict({"a": 5.0}) == pytest.approx(11.0)

    def test_predict_missing_feature_treated_as_zero(self):
        truth = {"a": 2.0}
        samples, targets, features = make_linear_data(truth, 1.0)
        result = fit_ols(samples, targets, features)
        assert result.predict({}) == pytest.approx(1.0)


class TestRidge:
    def test_zero_alpha_matches_ols(self):
        truth = {"a": 2.0, "b": 0.5}
        samples, targets, features = make_linear_data(truth, 1.0)
        ols = fit_ols(samples, targets, features)
        ridge = fit_ridge(samples, targets, features, alpha=0.0)
        assert ridge.coefficients["a"] == pytest.approx(
            ols.coefficients["a"], rel=1e-6)

    def test_alpha_shrinks_coefficients(self):
        truth = {"a": 5.0}
        samples, targets, features = make_linear_data(truth, 0.0)
        free = fit_ridge(samples, targets, features, alpha=0.0)
        shrunk = fit_ridge(samples, targets, features, alpha=1000.0)
        assert abs(shrunk.coefficients["a"]) < abs(free.coefficients["a"])

    def test_intercept_not_penalised(self):
        truth = {"a": 0.001}
        samples, targets, features = make_linear_data(truth, 50.0)
        result = fit_ridge(samples, targets, features, alpha=100.0)
        assert result.intercept == pytest.approx(50.0, rel=0.05)

    def test_rejects_negative_alpha(self):
        samples, targets, features = make_linear_data({"a": 1.0}, 0.0)
        with pytest.raises(ConfigurationError):
            fit_ridge(samples, targets, features, alpha=-1.0)


class TestNnls:
    def test_recovers_nonnegative_model(self):
        truth = {"a": 2.0, "b": 0.5}
        samples, targets, features = make_linear_data(truth, 3.0)
        result = fit_nnls(samples, targets, features)
        assert result.coefficients["a"] == pytest.approx(2.0, rel=1e-4)
        assert result.intercept == pytest.approx(3.0, rel=1e-3)

    def test_clamps_negative_truth_to_zero(self):
        truth = {"a": 2.0, "b": -1.0}
        samples, targets, features = make_linear_data(truth, 10.0)
        result = fit_nnls(samples, targets, features)
        assert result.coefficients["b"] == 0.0

    def test_all_coefficients_nonnegative(self):
        rng = np.random.default_rng(3)
        samples = [{"a": float(rng.uniform()), "b": float(rng.uniform())}
                   for _ in range(30)]
        targets = [float(rng.uniform()) for _ in range(30)]
        result = fit_nnls(samples, targets, ["a", "b"])
        assert all(v >= 0 for v in result.coefficients.values())
        assert result.intercept >= 0


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(InsufficientDataError):
            fit_ols([{"a": 1.0}], [1.0], ["a"])

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            fit_ols([{"a": 1.0}] * 3, [1.0] * 2, ["a"])

    def test_no_features(self):
        with pytest.raises(ConfigurationError):
            fit_ols([{"a": 1.0}] * 3, [1.0] * 3, [])

    def test_registry_dispatch(self):
        truth = {"a": 1.0}
        samples, targets, features = make_linear_data(truth, 0.0)
        for method in METHODS:
            result = fit(samples, targets, features, method=method)
            assert result.method == method

    def test_unknown_method(self):
        samples, targets, features = make_linear_data({"a": 1.0}, 0.0)
        with pytest.raises(ConfigurationError):
            fit(samples, targets, features, method="deep-learning")

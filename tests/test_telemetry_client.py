"""Telemetry client tests: iteration, reconnect across a server
restart, and the shared backoff idiom."""

import threading

import pytest

from repro.core.messages import AggregatedPowerReport
from repro.errors import (ConfigurationError, TelemetryConnectionError,
                          TelemetryError)
from repro.faults.backoff import ExponentialBackoff
from repro.telemetry import wire
from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.server import TelemetryServer

pytestmark = pytest.mark.telemetry


def report(time_s=1.0, watts=5.5):
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0, by_pid={100: watts},
        idle_w=31.48, formula="hpc")


class TestExponentialBackoff:
    def test_schedule_doubles_and_caps(self):
        backoff = ExponentialBackoff(base_s=0.1, factor=2.0, max_s=0.5)
        assert [backoff.next_delay_s() for _ in range(5)] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4),
            pytest.approx(0.5), pytest.approx(0.5)]
        assert backoff.attempts == 5

    def test_reset(self):
        backoff = ExponentialBackoff(base_s=1.0)
        backoff.next_delay_s()
        backoff.next_delay_s()
        backoff.reset()
        assert backoff.attempts == 0
        assert backoff.next_delay_s() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(base_s=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(base_s=2.0, max_s=1.0)


class TestClientBasics:
    def test_context_manager_and_counters(self):
        server = TelemetryServer(port=0).start()
        try:
            with TelemetryClient("127.0.0.1", server.port) as client:
                assert server.wait_for_subscribers(1)
                server.publish_report(report(time_s=1.0))
                (event,) = client.collect(1)
                assert event.report.by_pid == {100: 5.5}
                assert client.frames_received == 1
                assert client.reconnects == 0
        finally:
            server.stop()

    def test_closed_client_cannot_reconnect(self):
        server = TelemetryServer(port=0).start()
        try:
            client = TelemetryClient("127.0.0.1", server.port).connect()
            client.close()
            with pytest.raises(TelemetryError, match="closed"):
                client.connect()
        finally:
            server.stop()

    def test_iteration_without_reconnect_ends_on_server_stop(self):
        server = TelemetryServer(port=0).start()
        client = TelemetryClient("127.0.0.1", server.port).connect()
        assert server.wait_for_subscribers(1)
        server.publish_report(report(time_s=1.0))
        events = client.events()
        assert next(events).report.time_s == 1.0
        server.stop()
        assert list(events) == []  # clean end, not an error
        client.close()


class TestEventBatching:
    def test_max_events_mid_batch_keeps_decoded_tail(self):
        # Regression: when max_events was reached partway through a
        # decoded batch, the remaining frames were discarded instead of
        # stashed back into _pending — a later events()/collect() call
        # silently lost events already received off the wire.
        client = TelemetryClient("127.0.0.1", 1)
        client._sock = object()  # "connected"; only _pending is drained
        client._pending = wire.FrameDecoder().feed(b"".join(
            wire.report_frame(report(time_s=float(index)), host="h",
                              seq=index)
            for index in range(3)))
        (first,) = list(client.events(max_events=1))
        assert first.report.time_s == 0.0
        assert len(client._pending) == 2  # decoded tail survives the cap
        second, third = list(client.events(max_events=2))
        assert (second.report.time_s, third.report.time_s) == (1.0, 2.0)
        assert client.frames_received == 3


class TestReconnect:
    def test_resumes_across_server_restart(self):
        server1 = TelemetryServer(port=0).start()
        port = server1.port
        sleeps = []
        client = TelemetryClient(
            "127.0.0.1", port,
            reconnect=ReconnectPolicy(base_s=0.01, max_s=0.05),
            sleep=lambda s: sleeps.append(s))
        events = client.events()
        # The client connects lazily on first next(); force the dial.
        client.connect()
        assert server1.wait_for_subscribers(1)
        server1.publish_report(report(time_s=1.0, watts=1.0))
        assert next(events).report.time_s == 1.0

        server1.stop()
        server2 = TelemetryServer(port=port).start()
        try:
            # Publish as soon as the re-subscription lands; next(events)
            # meanwhile drives the reconnect loop.
            publisher = threading.Thread(target=lambda: (
                server2.wait_for_subscribers(1, timeout=10.0)
                and server2.publish_report(report(time_s=2.0, watts=2.0))),
                daemon=True)
            publisher.start()
            event = next(events)
            publisher.join(timeout=10.0)
            assert event.report.time_s == 2.0
            assert client.reconnects == 1
            assert client.negotiated_version == wire.PROTOCOL_VERSION
            # The backoff schedule was consulted, not a busy loop.
            assert sleeps and all(delay <= 0.05 for delay in sleeps)
        finally:
            client.close()
            server2.stop()

    def test_gives_up_after_max_attempts(self):
        server = TelemetryServer(port=0).start()
        port = server.port
        client = TelemetryClient(
            "127.0.0.1", port,
            reconnect=ReconnectPolicy(base_s=0.001, max_s=0.002,
                                      max_attempts=3),
            sleep=lambda s: None)
        events = client.events()
        client.connect()
        assert server.wait_for_subscribers(1)
        server.publish_report(report(time_s=1.0))
        assert next(events).report.time_s == 1.0
        server.stop()  # nothing ever comes back on this port
        with pytest.raises(TelemetryConnectionError, match="gave up"):
            next(events)
        assert client.reconnects == 0
        client.close()

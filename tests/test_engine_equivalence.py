"""Equivalence of the struct-of-arrays engine against dict-based references.

Three layers of the bit-identity contract the batched engine
(:mod:`repro.simcpu.engine`) makes:

* :class:`CounterBank` — the struct-of-arrays columns (and the
  ``accumulation_cells`` replay path the engine uses) must read exactly
  what a plain dict accumulator folding the same deltas in the same
  order reads,
* batched vs tick-at-a-time — ``Machine.run_batch`` (the column-wise,
  no-observer replay) must leave counters, residencies, thermal state,
  energy and time bit-identical to N façade ``step`` calls,
* engine vs reference tick loop — the engine-driven machine must match
  a dict-based reimplementation of the pre-engine step (the original
  per-tick derivation, preserved here as an executable specification).

All comparisons are exact float equality, never ``approx``: the golden
learned datasets depend on it.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcpu import counters as ev
from repro.simcpu.counters import ALL_EVENTS, CounterBank
from repro.simcpu.machine import Machine
from repro.simcpu.power import CoreActivity
from repro.simcpu.spec import intel_i3_2120, intel_xeon_smt
from tests.strategies import assignment_lists, dts, event_deltas, schedules

SPEC = intel_i3_2120()
SMT_SPEC = intel_xeon_smt()

pids = st.integers(1, 6)
cpus = st.integers(0, SPEC.num_threads - 1)


class DictCounterReference:
    """Plain-dict accumulator mirroring CounterBank's fold order."""

    def __init__(self):
        self.totals = defaultdict(float)        # (pid, cpu, event)
        self.cpu_totals = defaultdict(float)    # (cpu, event)
        self.slot_order = []                    # first-seen (pid, cpu)
        self.cpu_slot_order = []                # first-seen cpu

    def record(self, pid, cpu_id, delta):
        if (pid, cpu_id) not in self.slot_order:
            self.slot_order.append((pid, cpu_id))
        for event, count in delta.items():
            self.totals[(pid, cpu_id, event)] += count

    def record_cpu_only(self, cpu_id, delta):
        if cpu_id not in self.cpu_slot_order:
            self.cpu_slot_order.append(cpu_id)
        for event, count in delta.items():
            self.cpu_totals[(cpu_id, event)] += count

    def read(self, event, pid=-1, cpu_id=-1):
        """Aggregate in the bank's refresh order (slot insertion order)."""
        if pid >= 0 and cpu_id >= 0:
            return self.totals.get((pid, cpu_id, event), 0.0)
        if pid >= 0:
            total = 0.0
            for slot_pid, slot_cpu in self.slot_order:
                if slot_pid == pid:
                    total += self.totals[(slot_pid, slot_cpu, event)]
            return total
        if cpu_id >= 0:
            total = 0.0
            for slot_pid, slot_cpu in self.slot_order:
                if slot_cpu == cpu_id:
                    total += self.totals[(slot_pid, slot_cpu, event)]
            return total + self.cpu_totals.get((cpu_id, event), 0.0)
        total = 0.0
        for slot_pid, slot_cpu in self.slot_order:
            total += self.totals[(slot_pid, slot_cpu, event)]
        for slot_cpu in self.cpu_slot_order:
            total += self.cpu_totals.get((slot_cpu, event), 0.0)
        return total


class TestCounterBankEquivalence:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["record", "cells", "cpu"]),
                  pids, cpus, event_deltas()),
        min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_soa_columns_match_dict_reference(self, ops):
        bank = CounterBank()
        reference = DictCounterReference()
        for mode, pid, cpu_id, delta in ops:
            if mode == "record":
                bank.record(pid, cpu_id, delta)
                reference.record(pid, cpu_id, delta)
            elif mode == "cells":
                # The engine path: compile cells once, replay them once.
                for column, slot, addend in bank.accumulation_cells(
                        pid, cpu_id, delta):
                    column[slot] += addend
                bank.mark_dirty()
                reference.record(pid, cpu_id, delta)
            else:
                bank.record_cpu_only(cpu_id, delta)
                reference.record_cpu_only(cpu_id, delta)
        for event in ALL_EVENTS:
            assert bank.read(event) == reference.read(event)
            for pid in range(1, 7):
                assert (bank.read(event, pid=pid)
                        == reference.read(event, pid=pid))
                for cpu_id in range(SPEC.num_threads):
                    assert (bank.read(event, pid=pid, cpu_id=cpu_id)
                            == reference.read(event, pid=pid, cpu_id=cpu_id))
            for cpu_id in range(SPEC.num_threads):
                assert (bank.read(event, cpu_id=cpu_id)
                        == reference.read(event, cpu_id=cpu_id))

    @given(pid=pids, cpu_id=cpus, delta=event_deltas())
    @settings(max_examples=40, deadline=None)
    def test_accumulation_cells_replay_equals_record(self, pid, cpu_id, delta):
        recorded = CounterBank()
        replayed = CounterBank()
        recorded.record(pid, cpu_id, delta)
        for column, slot, addend in replayed.accumulation_cells(
                pid, cpu_id, delta):
            column[slot] += addend
        replayed.mark_dirty()
        for event in delta:
            assert (recorded.read(event, pid=pid, cpu_id=cpu_id)
                    == replayed.read(event, pid=pid, cpu_id=cpu_id))


def _assert_machines_identical(left, right, pids_seen):
    assert left.time_s == right.time_s
    assert left.energy_j == right.energy_j
    assert left.thermal.temperature_c == right.thermal.temperature_c
    for event in ALL_EVENTS:
        assert left.counters.read(event) == right.counters.read(event)
        for pid in pids_seen:
            assert (left.counters.read(event, pid=pid)
                    == right.counters.read(event, pid=pid))
    for cpu_id in range(left.spec.num_threads):
        assert (left.cstates.current_state(cpu_id)
                == right.cstates.current_state(cpu_id))
        for state in left.spec.cstates:
            assert (left.cstates.residency(cpu_id, state)
                    == right.cstates.residency(cpu_id, state))


class TestBatchedEquivalence:
    @given(schedule=schedules(SPEC), dt=dts)
    @settings(max_examples=40, deadline=None)
    def test_run_batch_matches_step_loop(self, schedule, dt):
        stepped = Machine(SPEC)
        batched = Machine(SPEC)
        pids_seen = set()
        for assignments, n_ticks in schedule:
            pids_seen.update(a.pid for a in assignments)
            last = None
            for _ in range(n_ticks):
                last = stepped.step(assignments, dt)
            record = batched.run_batch(assignments, n_ticks, dt)
            assert record.time_s == last.time_s
            assert record.wall_power_w == last.wall_power_w
            assert record.machine_events() == last.machine_events()
            assert dict(record.cpu_busy) == dict(last.cpu_busy)
        _assert_machines_identical(stepped, batched, pids_seen)

    @given(schedule=schedules(SPEC, max_segments=3, max_ticks=8), dt=dts)
    @settings(max_examples=20, deadline=None)
    def test_observer_path_matches_column_path(self, schedule, dt):
        """Attaching an observer switches replay strategy, not results."""
        observed = Machine(SPEC)
        seen = []
        observed.add_observer(seen.append)
        silent = Machine(SPEC)
        pids_seen = set()
        total_ticks = 0
        for assignments, n_ticks in schedule:
            pids_seen.update(a.pid for a in assignments)
            total_ticks += n_ticks
            observed.run_batch(assignments, n_ticks, dt)
            silent.run_batch(assignments, n_ticks, dt)
        assert len(seen) == total_ticks  # one record per tick, in order
        assert [r.time_s for r in seen] == sorted(r.time_s for r in seen)
        _assert_machines_identical(observed, silent, pids_seen)

    @given(assignments=assignment_lists(SMT_SPEC),
           n_ticks=st.integers(2, 20))
    @settings(max_examples=15, deadline=None)
    def test_smt_turbo_spec_batches_identically(self, assignments, n_ticks):
        dt = 0.01
        stepped = Machine(SMT_SPEC)
        batched = Machine(SMT_SPEC)
        for machine in (stepped, batched):
            machine.set_frequency(SMT_SPEC.all_frequencies_hz[-1])
        for _ in range(n_ticks):
            stepped.step(assignments, dt)
        batched.run_batch(assignments, n_ticks, dt)
        _assert_machines_identical(stepped, batched,
                                   {a.pid for a in assignments})


class ReferenceTickLoop:
    """Dict-based reimplementation of the pre-engine ``Machine.step``.

    Drives a :class:`Machine`'s pure helpers (`_execute`, frequency
    arbitration, the power and thermal models) exactly as the original
    tick loop did — per-tick dict folds, `cstates.account` side effects,
    `thermal.step` inside `wall_power` — while keeping its own dict
    counter totals.  The engine must match this, float for float.
    """

    def __init__(self, spec):
        self.machine = Machine(spec)  # engine never invoked on this one
        self.counters = DictCounterReference()
        self.time_s = 0.0
        self.energy_j = 0.0

    def step(self, assignments, dt_s):
        machine = self.machine
        cpu_busy = machine._validate_occupancy(assignments)
        machine._current_assignments = assignments
        core_freqs = machine._effective_frequencies(cpu_busy)
        events = {}
        llc_refs = 0.0
        dram_bytes = 0.0
        core_weights = {}
        for assignment in assignments:
            if assignment.busy_fraction == 0.0:
                continue
            core_key = machine._cpu_core_key[assignment.cpu_id]
            delta = machine._execute(assignment, cpu_busy,
                                     core_freqs[core_key], dt_s)
            key = (assignment.pid, assignment.cpu_id)
            events[key] = (delta if key not in events
                           else events[key].merged_with(delta))
            self.counters.record(assignment.pid, assignment.cpu_id, delta)
            llc_refs += delta.get(ev.CACHE_REFERENCES, 0.0)
            dram_bytes += (delta.get(ev.CACHE_MISSES, 0.0)
                           * machine._line_bytes_cached)
            core_weights.setdefault(core_key, []).append(
                (assignment.busy_fraction, assignment.mix.power_weight()))

        activities = []
        for core_key in machine._cores:
            core_cpus = machine._core_cpus[core_key]
            thread_busy = tuple(cpu_busy[cpu_id] for cpu_id in core_cpus)
            weights = core_weights.get(core_key, [])
            total_busy = sum(busy for busy, _weight in weights)
            weight = (sum(busy * w for busy, w in weights) / total_busy
                      if total_busy > 0 else 1.0)
            busiest = max(thread_busy, default=0.0)
            expected_idle_s = (1.0 - busiest) * dt_s
            idle_fraction = machine.cstates.idle_power_fraction(
                expected_idle_s)
            for cpu_id in core_cpus:
                machine.cstates.account(cpu_id, cpu_busy[cpu_id], dt_s,
                                        expected_idle_s)
            activities.append(CoreActivity(
                frequency_hz=core_freqs[core_key],
                thread_busy=thread_busy,
                power_weight=weight,
                idle_power_fraction=idle_fraction,
            ))
        breakdown = machine.power_model.wall_power(
            activities,
            llc_references_per_s=llc_refs / dt_s,
            dram_bytes_per_s=dram_bytes / dt_s,
            thermal=machine.thermal,
            dt_s=dt_s,
        )
        machine._current_assignments = ()
        self.time_s += dt_s
        self.energy_j += breakdown.total * dt_s
        return breakdown, events


class TestEngineMatchesReferenceLoop:
    @given(schedule=schedules(SPEC, max_segments=3, max_ticks=6), dt=dts)
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_dict_reference(self, schedule, dt):
        engine_machine = Machine(SPEC)
        reference = ReferenceTickLoop(SPEC)
        pids_seen = set()
        for assignments, n_ticks in schedule:
            pids_seen.update(a.pid for a in assignments)
            for _ in range(n_ticks):
                record = engine_machine.step(assignments, dt)
                breakdown, events = reference.step(assignments, dt)
                assert record.wall_power_w == breakdown.total
                assert record.power.leakage == breakdown.leakage
                assert dict(record.events) == events
        assert engine_machine.time_s == reference.time_s
        assert engine_machine.energy_j == reference.energy_j
        assert (engine_machine.thermal.temperature_c
                == reference.machine.thermal.temperature_c)
        for event in ALL_EVENTS:
            for pid in pids_seen:
                for cpu_id in range(SPEC.num_threads):
                    assert (engine_machine.counters.read(
                                event, pid=pid, cpu_id=cpu_id)
                            == reference.counters.read(
                                event, pid=pid, cpu_id=cpu_id))
        for cpu_id in range(SPEC.num_threads):
            for state in SPEC.cstates:
                assert (engine_machine.cstates.residency(cpu_id, state)
                        == reference.machine.cstates.residency(
                            cpu_id, state))

"""Generators for durable-spool records and torn-write scenarios."""

from hypothesis import strategies as st

#: One spool record: non-empty, bounded well under MAX_RECORD_BYTES so
#: lists of them stay fast to write.
spool_payloads = st.binary(min_size=1, max_size=256)

#: A journal's worth of records.
spool_payload_lists = st.lists(spool_payloads, min_size=1, max_size=12)


@st.composite
def torn_journals(draw):
    """Records plus a truncation fraction in [0, 1) of the file size."""
    payloads = draw(spool_payload_lists)
    fraction = draw(st.floats(0.0, 1.0, exclude_max=True,
                              allow_nan=False))
    return payloads, fraction

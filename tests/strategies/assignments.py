"""Generators for machine occupancies, schedules and counter deltas."""

from hypothesis import strategies as st

from repro.simcpu.caches import MemoryProfile
from repro.simcpu.counters import ALL_EVENTS, EventDelta
from repro.simcpu.machine import ThreadAssignment
from repro.simcpu.pipeline import InstructionMix

_fractions = st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False, allow_infinity=False)


@st.composite
def instruction_mixes(draw):
    fp = draw(st.floats(0.0, 0.5, allow_nan=False))
    branch = draw(st.floats(0.0, min(0.4, 1.0 - fp), allow_nan=False))
    return InstructionMix(fp_fraction=fp, branch_fraction=branch)


@st.composite
def memory_profiles(draw):
    return MemoryProfile(
        mem_ops_per_instruction=draw(_fractions),
        working_set_bytes=draw(st.integers(0, 256 * 1024 ** 2)),
        locality=draw(st.floats(0.01, 1.0, allow_nan=False)),
    )


@st.composite
def thread_assignments(draw, spec, cpu_id=None, max_busy=1.0, pids=None):
    """One assignment on a valid CPU with busy fraction <= *max_busy*."""
    if cpu_id is None:
        cpu_id = draw(st.integers(0, spec.num_threads - 1))
    pid = draw(pids if pids is not None else st.integers(1, 50))
    return ThreadAssignment(
        pid=pid,
        cpu_id=cpu_id,
        busy_fraction=draw(st.floats(0.0, max_busy, allow_nan=False)),
        mix=draw(instruction_mixes()),
        memory=draw(memory_profiles()),
    )


@st.composite
def assignment_lists(draw, spec, pids=None):
    """A non-oversubscribed occupancy: per CPU, up to two assignments
    whose busy fractions sum to at most 1."""
    assignments = []
    for cpu_id in range(spec.num_threads):
        count = draw(st.integers(0, 2))
        headroom = 1.0
        for _ in range(count):
            assignment = draw(thread_assignments(
                spec, cpu_id=cpu_id, max_busy=headroom, pids=pids))
            headroom -= assignment.busy_fraction
            assignments.append(assignment)
    return assignments


#: Tick durations spanning calibration-fine to soak-coarse resolutions.
dts = st.sampled_from([0.001, 0.005, 0.01, 0.02, 0.05, 0.1])


@st.composite
def schedules(draw, spec, max_segments=4, max_ticks=12):
    """(assignments, n_ticks) segments with pid churn across segments."""
    segments = []
    for _ in range(draw(st.integers(1, max_segments))):
        segments.append((
            draw(assignment_lists(spec)),
            draw(st.integers(1, max_ticks)),
        ))
    return segments


@st.composite
def event_deltas(draw, max_events=6):
    """A valid EventDelta over a random subset of the known events."""
    events = draw(st.lists(st.sampled_from(ALL_EVENTS), min_size=1,
                           max_size=max_events, unique=True))
    delta = EventDelta()
    for event in events:
        delta.add(event, draw(st.floats(0.0, 1e9, allow_nan=False)))
    return delta

"""Generators for declarative pipeline specs (PipelineSpec and parts).

Produces specs that pass ``PipelineSpec.validate()`` against the
default registry, so round-trip and builder property tests exercise
realistic configurations — including [control] sections.
"""

from hypothesis import strategies as st

from repro.core.pipeline import (ControlSpec, DegradationSpec,
                                 PipelineSpec, StageSpec)

_pids = st.lists(st.integers(1, 65_535), min_size=1, max_size=4,
                 unique=True).map(tuple)


@st.composite
def control_specs(draw):
    policy = draw(st.sampled_from(["deadband", "pi"]))
    params = {}
    if policy == "deadband":
        if draw(st.booleans()):
            params["band_w"] = draw(st.floats(0.5, 10.0, allow_nan=False))
        if draw(st.booleans()):
            params["up_patience"] = draw(st.integers(1, 5))
    else:
        if draw(st.booleans()):
            params["kp"] = draw(st.floats(0.05, 2.0, allow_nan=False))
        if draw(st.booleans()):
            params["max_step"] = draw(st.integers(1, 4))
    return ControlSpec(
        cap_w=draw(st.floats(1.0, 200.0, allow_nan=False)),
        policy=StageSpec(policy, params),
        grace_periods=draw(st.integers(0, 4)),
        throttle=draw(st.booleans()),
    )


@st.composite
def reporter_specs(draw):
    name = draw(st.sampled_from(["memory", "console"]))
    return StageSpec(name)


@st.composite
def pipeline_specs(draw):
    """A registry-valid PipelineSpec with optional extras."""
    if draw(st.booleans()):
        sensor, formula = StageSpec("hpc"), StageSpec("hpc")
        degradation = draw(st.one_of(
            st.none(),
            st.builds(DegradationSpec,
                      degrade_after=st.integers(1, 5),
                      recover_after=st.integers(1, 5))))
    else:
        sensor, formula = StageSpec("procfs"), StageSpec("cpu-load")
        degradation = None
    return PipelineSpec(
        pids=draw(_pids),
        period_s=draw(st.one_of(
            st.none(), st.sampled_from([0.1, 0.5, 1.0, 2.0]))),
        sensor=sensor,
        formula=formula,
        reporters=tuple(draw(st.lists(reporter_specs(), min_size=1,
                                      max_size=2))),
        degradation=degradation,
        control=draw(st.one_of(st.none(), control_specs())),
    )

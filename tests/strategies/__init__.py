"""Shared hypothesis strategies for simulator-level property tests.

The ROADMAP calls for one home for the generators every property suite
needs — instruction mixes, memory profiles, valid (non-oversubscribed)
assignment lists, dt values and multi-segment schedules with pid churn —
so each new test file stops growing its own slightly different copies.
The telemetry wire frames, spool records, pipeline specs and fault
plans that the streaming/chaos suites fuzz live here too.

``default_settings`` is the shared profile: bounded example counts and
no deadline (the simulator's first tick can dominate a single example's
wall-time and trip hypothesis's per-example deadline heuristics).
"""

from hypothesis import HealthCheck, settings

from tests.strategies.assignments import (assignment_lists, dts,
                                          event_deltas, instruction_mixes,
                                          memory_profiles, schedules,
                                          thread_assignments)
from tests.strategies.faultplans import fault_events, fault_plans
from tests.strategies.matrices import (invariant_configs, matrix_specs,
                                       net_fault_events, net_fault_plans,
                                       pipeline_variants)
from tests.strategies.pipelines import (control_specs, pipeline_specs,
                                        reporter_specs)
from tests.strategies.spool import (spool_payload_lists, spool_payloads,
                                    torn_journals)
from tests.strategies.telemetry import (aggregated_reports, chunkings,
                                        frame_payloads,
                                        header_corruptions, report_frames)

#: The shared profile property suites decorate with.
default_settings = settings(max_examples=50, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])

__all__ = [
    "default_settings",
    # simulator occupancies
    "assignment_lists", "dts", "event_deltas", "instruction_mixes",
    "memory_profiles", "schedules", "thread_assignments",
    # telemetry wire
    "aggregated_reports", "chunkings", "frame_payloads",
    "header_corruptions", "report_frames",
    # durable spool
    "spool_payload_lists", "spool_payloads", "torn_journals",
    # declarative pipelines
    "control_specs", "pipeline_specs", "reporter_specs",
    # fault plans
    "fault_events", "fault_plans",
    # scenario matrices
    "invariant_configs", "matrix_specs", "net_fault_events",
    "net_fault_plans", "pipeline_variants",
]

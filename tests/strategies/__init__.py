"""Shared hypothesis strategies for simulator-level property tests.

The ROADMAP calls for one home for the generators every property suite
needs — instruction mixes, memory profiles, valid (non-oversubscribed)
assignment lists, dt values and multi-segment schedules with pid churn —
so each new test file stops growing its own slightly different copies.
"""

from tests.strategies.assignments import (assignment_lists, dts,
                                          event_deltas, instruction_mixes,
                                          memory_profiles, schedules,
                                          thread_assignments)

__all__ = [
    "assignment_lists", "dts", "event_deltas", "instruction_mixes",
    "memory_profiles", "schedules", "thread_assignments",
]

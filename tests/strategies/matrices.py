"""Generators for scenario matrices (axes, cells, invariant suites).

Everything stays on the 0.25 s time grid used by the fault-plan
strategies so plan specs survive ``to_spec()`` round-trips unchanged,
and every generated :class:`MatrixSpec` is valid by construction —
network-fault windows are kept inside the run by deriving the matrix
duration from the latest window end.
"""

from hypothesis import strategies as st

from repro.faults.network import (ByteCorruption, ConnectionReset,
                                  NetworkFaultPlan, Partition, SlowReader,
                                  TruncatedFrame)
from repro.matrix import (DEFAULT_SUITE, GOVERNOR_NAMES, WORKLOAD_NAMES,
                          InvariantConfig, MatrixSpec, PipelineVariant)
from tests.strategies.faultplans import fault_plans

_times = st.integers(0, 240).map(lambda n: n / 4.0)
_durations = st.integers(1, 40).map(lambda n: n / 4.0)


@st.composite
def net_fault_events(draw):
    kind = draw(st.sampled_from(
        ["partition", "reset", "corrupt", "truncate", "slow"]))
    at_s = draw(_times)
    if kind == "partition":
        return Partition(at_s=at_s, duration_s=draw(_durations))
    if kind == "reset":
        return ConnectionReset(at_s=at_s)
    if kind == "corrupt":
        return ByteCorruption(at_s=at_s)
    if kind == "truncate":
        return TruncatedFrame(at_s=at_s)
    return SlowReader(at_s=at_s, duration_s=draw(_durations))


@st.composite
def net_fault_plans(draw):
    """A NetworkFaultPlan of 1-6 events (sorted internally)."""
    return NetworkFaultPlan(draw(st.lists(net_fault_events(), min_size=1,
                                          max_size=6)))


@st.composite
def pipeline_variants(draw):
    name = draw(st.sampled_from(
        ["sim", "durable", "no-replay", "tiny-ring"]))
    window = draw(st.sampled_from([None, 0, 4, 256]))
    return PipelineVariant(name=name, replay_window=window)


@st.composite
def invariant_configs(draw):
    """A valid InvariantConfig over a subset of the built-in suite."""
    suite = tuple(draw(st.sets(st.sampled_from(DEFAULT_SUITE))))
    return InvariantConfig(
        suite=suite,
        cap_tolerance_pct=draw(st.integers(0, 80)) / 4.0,
        cap_settle_periods=draw(st.integers(0, 8)),
        gap_window_s=draw(st.integers(0, 16)) / 4.0,
        rerun=draw(st.booleans()))


def _axis(values, max_size):
    return st.lists(st.sampled_from(values), min_size=1,
                    max_size=max_size, unique=True)


@st.composite
def matrix_specs(draw):
    """A valid MatrixSpec: unique axis values, net windows inside the
    run, 1-2 values per axis (expansion stays small enough to count)."""
    faults = draw(st.lists(fault_plans().map(lambda p: p.to_spec()),
                           min_size=1, max_size=2, unique=True))
    net_plans = draw(st.lists(net_fault_plans(), min_size=0, max_size=1))
    nets = [""] + [plan.to_spec() for plan in net_plans]
    # Windows must end inside the run and one-shots must fire before
    # its end; pad past the latest event so the spec always validates.
    latest = max((event.at_s + getattr(event, "duration_s", 0.0)
                  for plan in net_plans for event in plan), default=0.0)
    duration_s = latest + draw(st.integers(1, 32)) / 4.0
    variants = draw(st.lists(pipeline_variants(), min_size=1, max_size=2,
                             unique_by=lambda v: v.name))
    return MatrixSpec(
        name=draw(st.sampled_from(["m", "campaign", "nightly"])),
        seed=draw(st.integers(0, 2 ** 16)),
        duration_s=duration_s,
        period_s=0.25,
        cpus=("i3-2120",),
        governors=draw(_axis(GOVERNOR_NAMES, 2)),
        workloads=draw(_axis(WORKLOAD_NAMES, 2)),
        faults=faults,
        net_faults=nets,
        pipelines=variants,
        caps_w=draw(st.lists(st.sampled_from([0.0, 40.0, 55.0]),
                             min_size=1, max_size=2, unique=True)),
        invariants=draw(invariant_configs()),
        xfail=draw(st.lists(st.sampled_from(
            ["*pipe=no-replay*", "*gov=ondemand*", "cpu=*"]),
            max_size=2, unique=True)))

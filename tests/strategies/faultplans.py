"""Generators for fault plans (kernel faults and network chaos)."""

from hypothesis import strategies as st

from repro.faults import (ActorCrash, FaultPlan, MeterDropout, PidExit,
                          SampleLoss, SlotStarvation)

# Times on a 0.25 s grid: exact in binary and short to print, so they
# survive FaultPlan.describe()'s float formatting unchanged.
_times = st.integers(0, 240).map(lambda n: n / 4.0)
_durations = st.integers(1, 40).map(lambda n: n / 4.0)


@st.composite
def fault_events(draw):
    kind = draw(st.sampled_from(
        ["meter-dropout", "crash", "starve", "pid-exit", "hpc-loss"]))
    at_s = draw(_times)
    if kind == "meter-dropout":
        return MeterDropout(at_s=at_s, down_s=draw(_durations))
    if kind == "crash":
        actor = draw(st.sampled_from(
            ["formula-0", "sensor-0", "timestamp-aggregator"]))
        return ActorCrash(at_s=at_s, actor=actor)
    if kind == "starve":
        return SlotStarvation(at_s=at_s, duration_s=draw(_durations),
                              slots=draw(st.integers(0, 3)))
    if kind == "pid-exit":
        return PidExit(at_s=at_s, index=draw(st.integers(0, 3)))
    return SampleLoss(at_s=at_s, duration_s=draw(_durations))


@st.composite
def fault_plans(draw):
    """A FaultPlan of 1-6 events (sorted internally by the plan)."""
    return FaultPlan(draw(st.lists(fault_events(), min_size=1,
                                   max_size=6)))

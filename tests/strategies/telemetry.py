"""Generators for telemetry wire traffic: reports, frames, chunkings.

The seeded-rng loops the wire-protocol fuzz tests grew are migrated
here as proper hypothesis strategies, so every suite fuzzing the frame
codec draws from the same distribution (and shrinks on failure instead
of replaying a fixed seed).
"""

from hypothesis import strategies as st

from repro.core.messages import AggregatedPowerReport
from repro.telemetry import wire
from repro.telemetry.wire import FrameKind

_times = st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False)
_watts = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
_seqs = st.integers(0, (1 << 31) - 1)


@st.composite
def aggregated_reports(draw):
    """A valid AggregatedPowerReport; gap reports have empty by_pid."""
    gap = draw(st.booleans())
    by_pid = {} if gap else draw(st.dictionaries(
        st.integers(1, 10_000), _watts, max_size=8))
    return AggregatedPowerReport(
        time_s=draw(_times),
        period_s=draw(st.floats(0.01, 10.0, allow_nan=False)),
        by_pid=by_pid,
        idle_w=draw(st.floats(0.0, 80.0, allow_nan=False)),
        formula=draw(st.sampled_from(["hpc", "cpu-load"])),
        gap=gap,
    )


@st.composite
def report_frames(draw):
    """An encoded REPORT frame with its (report, seq) provenance."""
    report = draw(aggregated_reports())
    seq = draw(_seqs)
    return wire.report_frame(report, host="fuzz", seq=seq), report, seq


#: Payloads for hand-built frames (JSON-object shaped).
frame_payloads = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(st.integers(-1000, 1000),
              st.floats(-1e3, 1e3, allow_nan=False),
              st.text(max_size=20), st.booleans()),
    max_size=6)


@st.composite
def chunkings(draw, length, max_step=64):
    """Cut points splitting *length* bytes into arbitrary-size reads."""
    cuts = []
    offset = 0
    while offset < length:
        step = draw(st.integers(1, max_step))
        offset += step
        cuts.append(min(offset, length))
    return cuts


#: A single-byte corruption of a frame header: (byte index, xor mask).
header_corruptions = st.tuples(st.integers(0, wire.HEADER_SIZE - 1),
                               st.integers(1, 255))

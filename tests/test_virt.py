"""Unit tests for VM power estimation (repro.os.virt)."""

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.errors import ConfigurationError
from repro.os.kernel import SimKernel
from repro.os.virt import VirtualMachine, split_vm_power
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.base import ConstantWorkload, cpu_demand, memory_demand
from repro.workloads.stress import CpuStress, MemoryStress


@pytest.fixture
def spec():
    return intel_i3_2120()


@pytest.fixture
def model(spec):
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in spec.frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas)


class TestVirtualMachineDemand:
    def test_requires_vcpus_and_guests(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine("vm", vcpus=0, guests=[CpuStress()])
        with pytest.raises(ConfigurationError):
            VirtualMachine("vm", vcpus=2, guests=[])

    def test_single_guest_passthrough(self):
        vm = VirtualMachine("vm", vcpus=2, guests=[CpuStress(utilization=0.5)])
        demand = vm.demand(0.0)
        assert demand.threads == 1
        assert demand.utilization == pytest.approx(0.5)

    def test_guests_aggregate_onto_vcpus(self):
        vm = VirtualMachine("vm", vcpus=2,
                            guests=[CpuStress(utilization=1.0),
                                    CpuStress(utilization=1.0)])
        demand = vm.demand(0.0)
        assert demand.threads == 2
        assert demand.utilization == pytest.approx(1.0)

    def test_oversubscription_throttles(self):
        vm = VirtualMachine("vm", vcpus=1,
                            guests=[CpuStress(utilization=1.0),
                                    CpuStress(utilization=1.0)])
        demand = vm.demand(0.0)
        # Two full guests on one vCPU: the VM itself demands one thread.
        assert demand.threads == 1
        assert demand.utilization == pytest.approx(1.0)
        usage = vm.guest_usage()
        assert sum(entry.utilization for entry in usage) == pytest.approx(1.0)

    def test_blended_mix_reflects_guests(self):
        fp_guest = ConstantWorkload(cpu_demand(), name="int")
        mem_guest = ConstantWorkload(memory_demand(), name="mem")
        vm = VirtualMachine("vm", vcpus=2, guests=[fp_guest, mem_guest])
        demand = vm.demand(0.0)
        # Blend sits between the two guests' mem intensity.
        low = cpu_demand().memory.mem_ops_per_instruction
        high = memory_demand().memory.mem_ops_per_instruction
        assert low < demand.memory.mem_ops_per_instruction < high

    def test_finishes_when_all_guests_finish(self):
        vm = VirtualMachine("vm", vcpus=2,
                            guests=[CpuStress(duration_s=1.0),
                                    CpuStress(duration_s=2.0)])
        assert vm.demand(0.5) is not None
        assert vm.demand(1.5) is not None  # one guest still alive
        assert vm.demand(2.5) is None
        assert vm.total_duration_s() == 2.0

    def test_sleeping_guests_keep_vm_alive(self):
        from repro.workloads.idle import IdleWorkload
        vm = VirtualMachine("vm", vcpus=1, guests=[IdleWorkload()])
        demand = vm.demand(10.0)
        assert demand is not None
        assert demand.utilization == 0.0


class TestVmPowerEstimation:
    def test_vm_estimated_like_a_process(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        vm = VirtualMachine("webapp-vm", vcpus=2,
                            guests=[CpuStress(utilization=1.0,
                                              duration_s=100.0)])
        pid = kernel.spawn(vm, name=vm.name)
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.run(4.0)
        vm_power = handle.reporter.pid_series(pid)
        assert all(power > 1.0 for power in vm_power)
        api.shutdown()

    def test_two_vms_ranked_by_load(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        busy_vm = VirtualMachine("busy", vcpus=2,
                                 guests=[CpuStress(utilization=1.0,
                                                   duration_s=100.0)] * 2)
        lazy_vm = VirtualMachine("lazy", vcpus=2,
                                 guests=[CpuStress(utilization=0.2,
                                                   duration_s=100.0)])
        busy = kernel.spawn(busy_vm, name="busy")
        lazy = kernel.spawn(lazy_vm, name="lazy")
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = api.monitor(busy, lazy).every(0.5).to(InMemoryReporter())
        api.run(4.0)
        busy_mean = sum(handle.reporter.pid_series(busy)) / 8
        lazy_mean = sum(handle.reporter.pid_series(lazy)) / 8
        assert busy_mean > 3 * lazy_mean
        api.shutdown()


class TestGuestSplit:
    def test_split_proportional_to_usage(self):
        vm = VirtualMachine("vm", vcpus=4,
                            guests=[CpuStress(utilization=1.0),
                                    CpuStress(utilization=0.25)])
        vm.demand(0.0)
        shares = split_vm_power(vm, vm_active_power_w=10.0)
        names = [guest.name for guest in vm.guests]
        assert shares[names[0]] == pytest.approx(8.0)
        assert shares[names[1]] == pytest.approx(2.0)

    def test_split_of_idle_vm_is_zero(self):
        from repro.workloads.idle import IdleWorkload
        vm = VirtualMachine("vm", vcpus=1, guests=[IdleWorkload()])
        vm.demand(0.0)
        assert split_vm_power(vm, 0.0) == {}

    def test_rejects_negative_power(self):
        vm = VirtualMachine("vm", vcpus=1, guests=[CpuStress()])
        with pytest.raises(ConfigurationError):
            split_vm_power(vm, -1.0)

"""Failure-injection tests: the pipeline under adverse conditions.

A monitoring middleware earns its keep when things go wrong: meters
drop, processes die mid-run, formula actors crash on poisoned input.
These tests drive those paths end-to-end.
"""

import pytest

from repro.actors.actor import Actor
from repro.actors.supervision import RestartStrategy, StopStrategy
from repro.actors.system import ActorSystem
from repro.core.formula import HpcFormula
from repro.core.messages import HpcReport, PowerReport
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.errors import ActorStoppedError
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import amd_fx_8120, intel_i3_2120
from repro.workloads.stress import CpuStress


@pytest.fixture
def spec():
    return intel_i3_2120()


@pytest.fixture
def model(spec):
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in spec.frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas)


class TestProcessChurn:
    def test_monitored_process_exits_midway(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        short = kernel.spawn(CpuStress(duration_s=2.0), name="short")
        long = kernel.spawn(CpuStress(duration_s=100.0), name="long")
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = api.monitor(short, long).every(0.5).to(InMemoryReporter())
        api.run(5.0)
        # After the short process exits its estimate drops to ~zero while
        # the long one keeps being attributed power.
        last = handle.reporter.aggregated[-1]
        assert last.by_pid.get(short, 0.0) == pytest.approx(0.0, abs=0.2)
        assert last.by_pid[long] > 1.0
        api.shutdown()

    def test_killed_process_stops_consuming(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(duration_s=100.0))
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.run(2.0)
        kernel.kill(pid)
        api.run(2.0)
        series = handle.reporter.pid_series(pid)
        assert series[0] > 1.0
        assert series[-1] == pytest.approx(0.0, abs=0.2)
        api.shutdown()


class TestMeterFailures:
    def test_disconnected_meter_keeps_samples(self, spec):
        kernel = SimKernel(spec, quantum_s=0.02)
        meter = PowerSpy(kernel.machine, sample_rate_hz=2.0, seed=1)
        meter.connect()
        kernel.run(2.0)
        collected = len(meter.samples)
        meter.disconnect()
        kernel.run(2.0)
        assert len(meter.samples) == collected
        assert meter.mean_power_w() > 0

    def test_meter_reconnect_resumes(self, spec):
        kernel = SimKernel(spec, quantum_s=0.02)
        meter = PowerSpy(kernel.machine, sample_rate_hz=2.0, seed=1)
        meter.connect()
        kernel.run(1.0)
        meter.disconnect()
        kernel.run(1.0)
        meter.connect()
        kernel.run(1.0)
        assert len(meter.samples) == 4  # 2 + 0 + 2

    def test_pipeline_survives_meter_detach(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(duration_s=100.0))
        api = PowerAPI(kernel, model, period_s=0.5)
        meter = PowerSpy(kernel.machine, seed=2)
        api.attach_meter(meter)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.run(1.0)
        meter.disconnect()
        api.run(1.0)
        assert len(handle.reporter.aggregated) >= 3
        api.shutdown()


class TestActorCrashes:
    class PoisonableFormula(HpcFormula):
        """A formula that chokes on reports from a poisoned pid."""

        def __init__(self, model, poison_pid):
            super().__init__(model)
            self.poison_pid = poison_pid

        def receive(self, message):
            if (isinstance(message, HpcReport)
                    and message.pid == self.poison_pid):
                raise RuntimeError("poisoned report")
            super().receive(message)

    def test_restart_strategy_keeps_pipeline_alive(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        good = kernel.spawn(CpuStress(duration_s=100.0), name="good")
        bad = kernel.spawn(CpuStress(duration_s=100.0), name="bad")
        api = PowerAPI(kernel, model, period_s=0.5)
        api.system.strategy = RestartStrategy(max_restarts=1_000_000)

        # Hand-build the pipeline with the crashing formula.
        from repro.core.aggregators import PidAggregator, TimestampAggregator
        from repro.core.sensors import HpcSensor
        reporter = InMemoryReporter()
        api.system.spawn(HpcSensor(kernel.machine, api.perf, [good, bad]))
        api.system.actor_of(
            lambda: self_formula(model, bad), "formula")
        api.system.spawn(TimestampAggregator(idle_w=model.idle_w))
        api.system.spawn(reporter)
        api.run(3.0)
        api.flush()
        # Reports for the good pid made it through despite the crashes.
        assert any(report.by_pid.get(good, 0.0) > 0.5
                   for report in reporter.aggregated)
        assert all(bad not in report.by_pid
                   for report in reporter.aggregated)

    def test_stop_strategy_halts_only_failed_actor(self, model):
        system = ActorSystem(strategy=StopStrategy())
        reporter = InMemoryReporter()
        formula_ref = system.spawn(HpcFormula(model), "formula")
        system.spawn(reporter, "reporter")

        class Killer(Actor):
            def receive(self, message):
                raise ValueError("die")

        killer_ref = system.spawn(Killer(), "killer")
        killer_ref.tell("x")
        system.dispatch()
        assert not killer_ref.alive
        assert formula_ref.alive


def self_formula(model, poison_pid):
    return TestActorCrashes.PoisonableFormula(model, poison_pid)


class TestAmdPortability:
    def test_full_pipeline_on_amd_part(self, ):
        """The generic-counter pipeline runs unchanged on the AMD preset."""
        from repro.core.sampling import SamplingCampaign, learn_power_model
        spec = amd_fx_8120()
        campaign = SamplingCampaign(
            spec,
            workloads=[CpuStress(utilization=1.0, threads=4),
                       CpuStress(utilization=0.5, threads=8)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=4, settle_s=0.25, quantum_s=0.05)
        report = learn_power_model(spec, campaign=campaign,
                                   idle_duration_s=3.0)
        assert report.model.idle_w == pytest.approx(48.0, rel=0.05)

        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        api = PowerAPI(kernel, report.model, period_s=0.5)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        api.run(2.0)
        assert handle.reporter.total_series()[-1] > report.model.idle_w
        api.shutdown()

    def test_rapl_unavailable_on_amd(self):
        from repro.errors import PowerMeterError
        from repro.powermeter.rapl import RaplInterface
        from repro.simcpu.machine import Machine
        with pytest.raises(PowerMeterError):
            RaplInterface(Machine(amd_fx_8120()))

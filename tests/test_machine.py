"""Unit tests for repro.simcpu.machine (the integrated simulator)."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.simcpu import counters as ev
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.pipeline import InstructionMix
from repro.simcpu.spec import intel_i3_2120, intel_xeon_smt
from repro.units import ghz


def assignment(pid=100, cpu=0, busy=1.0, ws=8 * 1024, locality=0.99,
               mem_ops=0.15):
    return ThreadAssignment(
        pid=pid, cpu_id=cpu, busy_fraction=busy,
        mix=InstructionMix(),
        memory=MemoryProfile(mem_ops_per_instruction=mem_ops,
                             working_set_bytes=ws, locality=locality))


class TestStepBasics:
    def test_time_advances(self, machine):
        machine.step([], 0.01)
        machine.step([], 0.01)
        assert machine.time_s == pytest.approx(0.02)

    def test_energy_accumulates(self, machine):
        record = machine.step([], 1.0)
        assert machine.energy_j == pytest.approx(record.wall_power_w, rel=1e-6)

    def test_rejects_zero_dt(self, machine):
        with pytest.raises(ConfigurationError):
            machine.step([], 0.0)

    def test_rejects_unknown_cpu(self, machine):
        with pytest.raises(TopologyError):
            machine.step([assignment(cpu=17)], 0.01)

    def test_rejects_oversubscription(self, machine):
        with pytest.raises(ConfigurationError):
            machine.step([assignment(pid=1, busy=0.7),
                          assignment(pid=2, busy=0.7)], 0.01)

    def test_shared_cpu_within_capacity(self, machine):
        record = machine.step([assignment(pid=1, busy=0.5),
                               assignment(pid=2, busy=0.5)], 0.01)
        assert record.cpu_busy[0] == pytest.approx(1.0)

    def test_last_record_updated(self, machine):
        assert machine.last_record is None
        record = machine.step([], 0.01)
        assert machine.last_record is record


class TestCounters:
    def test_instructions_attributed_to_pid(self, machine):
        machine.set_frequency(ghz(3.3))
        machine.step([assignment(pid=42)], 1.0)
        assert machine.counters.read(ev.INSTRUCTIONS, pid=42) > 1e8

    def test_idle_machine_retires_nothing(self, machine):
        machine.step([], 1.0)
        assert machine.counters.read(ev.INSTRUCTIONS) == 0.0

    def test_cycles_match_frequency_and_busy(self, machine):
        machine.set_frequency(ghz(3.3))
        machine.step([assignment(busy=0.5)], 1.0)
        assert machine.counters.read(ev.CYCLES) == pytest.approx(
            0.5 * ghz(3.3), rel=1e-6)

    def test_memory_bound_produces_llc_misses(self, machine):
        machine.set_frequency(ghz(3.3))
        machine.step([assignment(ws=64 * 1024 ** 2, locality=0.6,
                                 mem_ops=0.4)], 1.0)
        assert machine.counters.read(ev.CACHE_MISSES) > 1e6

    def test_misses_never_exceed_references(self, machine):
        machine.step([assignment(ws=16 * 1024 ** 2, mem_ops=0.4,
                                 locality=0.8)], 1.0)
        refs = machine.counters.read(ev.CACHE_REFERENCES)
        misses = machine.counters.read(ev.CACHE_MISSES)
        assert misses <= refs + 1e-9

    def test_zero_busy_assignment_emits_nothing(self, machine):
        machine.step([assignment(busy=0.0)], 1.0)
        assert machine.counters.read(ev.INSTRUCTIONS) == 0.0


class TestSmtEffects:
    def test_colocated_cheaper_than_spread(self):
        spec = intel_i3_2120()
        spread_machine = Machine(spec)
        spread_machine.set_frequency(ghz(3.3))
        # cpu0 and cpu1 are different physical cores.
        spread = spread_machine.step(
            [assignment(pid=1, cpu=0), assignment(pid=2, cpu=1)], 1.0)

        packed_machine = Machine(spec)
        packed_machine.set_frequency(ghz(3.3))
        # cpu0 and cpu2 are SMT siblings of core 0.
        packed = packed_machine.step(
            [assignment(pid=1, cpu=0), assignment(pid=2, cpu=2)], 1.0)
        assert packed.wall_power_w < spread.wall_power_w

    def test_colocated_retires_fewer_instructions(self):
        spec = intel_i3_2120()
        spread_machine = Machine(spec)
        spread_machine.set_frequency(ghz(3.3))
        spread_machine.step(
            [assignment(pid=1, cpu=0), assignment(pid=2, cpu=1)], 1.0)
        packed_machine = Machine(spec)
        packed_machine.set_frequency(ghz(3.3))
        packed_machine.step(
            [assignment(pid=1, cpu=0), assignment(pid=2, cpu=2)], 1.0)
        assert (packed_machine.counters.read(ev.INSTRUCTIONS)
                < spread_machine.counters.read(ev.INSTRUCTIONS))


class TestFrequencyBehaviour:
    def test_higher_frequency_more_instructions(self):
        spec = intel_i3_2120()
        slow = Machine(spec)
        slow.set_frequency(spec.min_frequency_hz)
        slow.step([assignment()], 1.0)
        fast = Machine(spec)
        fast.set_frequency(spec.max_frequency_hz)
        fast.step([assignment()], 1.0)
        assert (fast.counters.read(ev.INSTRUCTIONS)
                > slow.counters.read(ev.INSTRUCTIONS))

    def test_turbo_arbitration_on_xeon(self):
        spec = intel_xeon_smt()
        machine = Machine(spec)
        machine.set_frequency(spec.turbo_frequencies_hz[-1])
        solo = machine.step([assignment(cpu=0)], 0.1)
        assert solo.core_frequencies_hz[(0, 0)] == spec.turbo_frequencies_hz[-1]
        loaded = machine.step([assignment(pid=i, cpu=i) for i in range(4)], 0.1)
        assert loaded.core_frequencies_hz[(0, 0)] < spec.turbo_frequencies_hz[-1]

    def test_dominant_frequency_tracks_busy_core(self, machine):
        machine.frequency.set_target(0, 0, ghz(3.3))
        machine.frequency.set_target(0, 1, ghz(1.6))
        machine.step([assignment(cpu=0)], 0.1)
        assert machine.dominant_frequency_hz() == ghz(3.3)

    def test_dominant_frequency_idle_falls_back(self, machine):
        machine.set_frequency(ghz(2.0))
        machine.step([], 0.1)
        assert machine.dominant_frequency_hz() == ghz(2.0)


class TestObservers:
    def test_observer_sees_each_tick(self, machine):
        seen = []
        machine.add_observer(seen.append)
        machine.run([], 0.05, dt_s=0.01)
        assert len(seen) == 5

    def test_removed_observer_stops_seeing(self, machine):
        seen = []
        machine.add_observer(seen.append)
        machine.step([], 0.01)
        machine.remove_observer(seen.append)
        machine.step([], 0.01)
        assert len(seen) == 1


class TestTickRecord:
    def test_machine_events_sums_processes(self, machine):
        record = machine.step([assignment(pid=1, cpu=0),
                               assignment(pid=2, cpu=1)], 0.1)
        total = record.machine_events()
        per_pid = sum(delta.get(ev.INSTRUCTIONS, 0.0)
                      for delta in record.events.values())
        assert total[ev.INSTRUCTIONS] == pytest.approx(per_pid)

    def test_run_returns_all_records(self, machine):
        records = machine.run([assignment()], 0.1, dt_s=0.02)
        assert len(records) == 5
        assert records[-1].time_s == pytest.approx(0.1)


class TestBatchedStepping:
    def test_run_batch_returns_final_record(self, machine):
        record = machine.run_batch([assignment()], 50, dt_s=0.01)
        assert record.time_s == pytest.approx(0.5)
        assert machine.time_s == record.time_s

    def test_run_batch_rejects_bad_inputs(self, machine):
        with pytest.raises(ConfigurationError):
            machine.run_batch([assignment()], 0, dt_s=0.01)
        with pytest.raises(ConfigurationError):
            machine.run_batch([assignment()], 10, dt_s=0.0)

    def test_run_schedule_returns_one_record_per_segment(self, machine):
        records = machine.run_schedule(
            [([assignment()], 10), ([], 5), ([assignment(busy=0.3)], 10)],
            dt_s=0.01)
        assert len(records) == 3
        assert records[-1].time_s == pytest.approx(0.25)

    def test_batched_state_matches_stepped(self):
        spec = intel_i3_2120()
        stepped, batched = Machine(spec), Machine(spec)
        for _ in range(200):
            stepped.step([assignment()], 0.01)
        batched.run_batch([assignment()], 200, 0.01)
        assert stepped.energy_j == batched.energy_j
        assert stepped.time_s == batched.time_s
        assert (stepped.counters.read(ev.INSTRUCTIONS)
                == batched.counters.read(ev.INSTRUCTIONS))

    def test_pstate_change_invalidates_program(self, machine):
        spec = machine.spec
        machine.set_frequency(spec.min_frequency_hz)
        slow = machine.run_batch([assignment()], 10, 0.01)
        machine.set_frequency(spec.max_frequency_hz)
        fast = machine.run_batch([assignment()], 10, 0.01)
        assert (fast.machine_events()[ev.INSTRUCTIONS]
                > slow.machine_events()[ev.INSTRUCTIONS])

    def test_dominant_frequency_is_cached_on_record(self, machine):
        machine.step([assignment(cpu=0)], 0.1)
        first = machine.dominant_frequency_hz()
        assert machine.last_record.__dict__["_dominant_hz"] == first
        assert machine.dominant_frequency_hz() == first

    def test_dominant_frequency_idle_cache_tracks_live_target(self, machine):
        machine.set_frequency(ghz(2.0))
        machine.step([], 0.1)
        assert machine.dominant_frequency_hz() == ghz(2.0)
        # The idle sentinel must not freeze the fallback frequency.
        machine.set_frequency(ghz(3.3))
        assert machine.dominant_frequency_hz() == ghz(3.3)

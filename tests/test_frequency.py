"""Unit tests for repro.simcpu.frequency (DVFS and turbo arbitration)."""

import pytest

from repro.errors import FrequencyError
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import intel_i3_2120, intel_xeon_smt
from repro.units import ghz


class TestTargets:
    @pytest.fixture
    def domain(self):
        return FrequencyDomain(intel_i3_2120())

    def test_defaults_to_minimum(self, domain):
        assert domain.target(0, 0) == ghz(1.6)

    def test_set_target(self, domain):
        domain.set_target(0, 1, ghz(2.4))
        assert domain.target(0, 1) == ghz(2.4)
        assert domain.target(0, 0) == ghz(1.6)

    def test_set_all_targets(self, domain):
        domain.set_all_targets(ghz(3.3))
        assert domain.target(0, 0) == ghz(3.3)
        assert domain.target(0, 1) == ghz(3.3)

    def test_rejects_unsupported_frequency(self, domain):
        with pytest.raises(FrequencyError):
            domain.set_target(0, 0, ghz(5.0))

    def test_rejects_unknown_core(self, domain):
        with pytest.raises(FrequencyError):
            domain.set_target(0, 7, ghz(1.6))

    def test_target_unknown_core(self, domain):
        with pytest.raises(FrequencyError):
            domain.target(2, 0)


class TestEffectiveFrequency:
    def test_sustained_granted_as_requested(self):
        domain = FrequencyDomain(intel_i3_2120())
        domain.set_target(0, 0, ghz(2.8))
        assert domain.effective(0, 0, active_cores_in_package=2) == ghz(2.8)

    def test_turbo_derates_with_active_cores(self):
        spec = intel_xeon_smt()
        domain = FrequencyDomain(spec)
        top_turbo = spec.turbo_frequencies_hz[-1]
        domain.set_all_targets(top_turbo)
        solo = domain.effective(0, 0, active_cores_in_package=1)
        loaded = domain.effective(0, 0, active_cores_in_package=4)
        assert solo == top_turbo
        assert loaded < solo
        assert loaded == spec.turbo_frequencies_hz[0]

    def test_turbo_never_below_lowest_bin(self):
        spec = intel_xeon_smt()
        domain = FrequencyDomain(spec)
        domain.set_all_targets(spec.turbo_frequencies_hz[0])
        granted = domain.effective(0, 0, active_cores_in_package=4)
        assert granted == spec.turbo_frequencies_hz[0]


class TestVoltageScaling:
    @pytest.fixture
    def domain(self):
        return FrequencyDomain(intel_i3_2120())

    def test_voltage_at_min(self, domain):
        assert domain.voltage(ghz(1.6)) == pytest.approx(FrequencyDomain.V_MIN)

    def test_voltage_at_max(self, domain):
        assert domain.voltage(ghz(3.3)) == pytest.approx(FrequencyDomain.V_MAX)

    def test_voltage_monotonic(self, domain):
        spec = intel_i3_2120()
        voltages = [domain.voltage(f) for f in spec.frequencies_hz]
        assert voltages == sorted(voltages)

    def test_turbo_voltage_above_max(self):
        spec = intel_xeon_smt()
        domain = FrequencyDomain(spec)
        assert (domain.voltage(spec.turbo_frequencies_hz[0])
                > FrequencyDomain.V_MAX)

    def test_voltage_rejects_unsupported(self, domain):
        with pytest.raises(FrequencyError):
            domain.voltage(ghz(4.0))


class TestDynamicScale:
    """dynamic_scale must be superlinear in frequency (f * V^2)."""

    @pytest.fixture
    def domain(self):
        return FrequencyDomain(intel_i3_2120())

    def test_unity_at_max(self, domain):
        assert domain.dynamic_scale(ghz(3.3)) == pytest.approx(1.0)

    def test_superlinear(self, domain):
        # Halving frequency must cut dynamic power by more than half.
        half = domain.dynamic_scale(ghz(1.6))
        assert half < 1.6 / 3.3

    def test_monotonic(self, domain):
        spec = intel_i3_2120()
        scales = [domain.dynamic_scale(f) for f in spec.frequencies_hz]
        assert scales == sorted(scales)

    def test_single_frequency_spec_degenerates(self):
        from repro.simcpu.spec import CacheSpec, CpuSpec, PowerEnvelope
        from repro.units import kib
        spec = CpuSpec(
            vendor="Intel", model="fixed 1", packages=1,
            cores_per_package=1, threads_per_core=1,
            frequencies_hz=(ghz(2.0),), turbo_frequencies_hz=(),
            caches=(CacheSpec(level=1, size_bytes=kib(32)),),
            power=PowerEnvelope(tdp_w=35, idle_w=20, core_active_w=8,
                                uncore_active_w=1, dram_w_per_gtps=10),
        )
        domain = FrequencyDomain(spec)
        assert domain.voltage(ghz(2.0)) == FrequencyDomain.V_MAX
        assert domain.dynamic_scale(ghz(2.0)) == pytest.approx(1.0)

"""Tests for the event bus's per-message-type route cache."""

import pytest

from repro.actors.actor import Actor
from repro.actors.system import ActorSystem
from repro.core.messages import HpcReport, SensorReport


class Recorder(Actor):
    def __init__(self):
        super().__init__()
        self.received = []

    def receive(self, message):
        self.received.append(message)


def report(time_s=1.0):
    return HpcReport(time_s=time_s, period_s=1.0, pid=1,
                     counters={"cycles": 1.0}, frequency_hz=1_600_000_000)


@pytest.fixture
def system():
    system = ActorSystem("bus-cache-test")
    yield system
    system.shutdown()


def spawn(system, name):
    actor = Recorder()
    system.spawn(actor, name=name)
    return actor


class TestRouteCache:
    def test_route_is_cached_after_first_publish(self, system):
        bus = system.event_bus
        sink = spawn(system, "sink")
        bus.subscribe(HpcReport, sink.self_ref)
        bus.publish(report())
        assert HpcReport in bus._routes
        bus.publish(report(2.0))
        system.dispatch()
        assert len(sink.received) == 2

    def test_subscribe_invalidates_cache(self, system):
        bus = system.event_bus
        first = spawn(system, "first")
        bus.subscribe(HpcReport, first.self_ref)
        bus.publish(report())
        late = spawn(system, "late")
        bus.subscribe(HpcReport, late.self_ref)
        bus.publish(report(2.0))
        system.dispatch()
        assert len(first.received) == 2
        assert len(late.received) == 1  # a stale route would starve it

    def test_unsubscribe_invalidates_cache(self, system):
        bus = system.event_bus
        sink = spawn(system, "sink")
        bus.subscribe(HpcReport, sink.self_ref)
        bus.publish(report())
        bus.unsubscribe(HpcReport, sink.self_ref)
        bus.publish(report(2.0))
        system.dispatch()
        assert len(sink.received) == 1

    def test_unsubscribe_all_invalidates_cache(self, system):
        bus = system.event_bus
        sink = spawn(system, "sink")
        bus.subscribe(HpcReport, sink.self_ref)
        bus.subscribe(SensorReport, sink.self_ref)
        bus.publish(report())
        bus.unsubscribe_all(sink.self_ref)
        bus.publish(report(2.0))
        system.dispatch()
        assert len(sink.received) == 1

    def test_base_class_subscribers_still_reached(self, system):
        bus = system.event_bus
        concrete = spawn(system, "concrete")
        base_tap = spawn(system, "base-tap")
        bus.subscribe(HpcReport, concrete.self_ref)
        bus.subscribe(SensorReport, base_tap.self_ref)
        bus.publish(report())
        bus.publish(report(2.0))
        system.dispatch()
        assert len(concrete.received) == 2
        assert len(base_tap.received) == 2

    def test_dedup_across_hierarchy_preserved(self, system):
        # An actor subscribed to both the concrete type and a base
        # class receives each message once, exactly as before caching.
        bus = system.event_bus
        sink = spawn(system, "sink")
        bus.subscribe(HpcReport, sink.self_ref)
        bus.subscribe(SensorReport, sink.self_ref)
        bus.publish(report())
        system.dispatch()
        assert len(sink.received) == 1

    def test_actor_stop_prunes_route(self, system):
        # ActorSystem.stop() goes through unsubscribe_all, so a cached
        # route never keeps delivering to a stopped actor.
        bus = system.event_bus
        keeper = spawn(system, "keeper")
        goner = Recorder()
        goner_ref = system.spawn(goner, name="goner")
        bus.subscribe(HpcReport, keeper.self_ref)
        bus.subscribe(HpcReport, goner_ref)
        bus.publish(report())
        system.dispatch()
        system.stop(goner_ref)
        bus.publish(report(2.0))
        system.dispatch()
        assert len(keeper.received) == 2
        assert len(goner.received) == 1

    def test_subscriber_count_uncached(self, system):
        bus = system.event_bus
        sink = spawn(system, "sink")
        bus.subscribe(HpcReport, sink.self_ref)
        bus.publish(report())
        assert bus.subscriber_count(HpcReport) == 1
        bus.unsubscribe(HpcReport, sink.self_ref)
        assert bus.subscriber_count(HpcReport) == 0

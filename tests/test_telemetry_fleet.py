"""Fleet aggregation tests: merging host streams (live and direct-fed)
into cluster-level series, tolerating out-of-order and gap input —
plus the end-to-end PowerAPI → serve_telemetry → fleet path."""

import pytest

from repro.core.messages import AggregatedPowerReport
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.errors import ConfigurationError
from repro.os.kernel import SimKernel
from repro.simcpu.spec import intel_i3_2120
from repro.telemetry.fleet import FleetAggregator
from repro.telemetry.server import TelemetryServer
from repro.workloads.stress import CpuStress

pytestmark = pytest.mark.telemetry


def report(time_s, watts=5.0, gap=False, idle_w=30.0):
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid={} if gap else {100: watts},
        idle_w=idle_w, formula="hpc", gap=gap)


class TestDirectIngest:
    def test_cluster_series_sums_hosts_per_timestamp(self):
        fleet = FleetAggregator()
        fleet.register_host("a")
        fleet.register_host("b")
        fleet.ingest("a", report(1.0, watts=5.0))
        fleet.ingest("b", report(1.0, watts=7.0))
        fleet.ingest("a", report(2.0, watts=6.0))
        points = fleet.cluster_series()
        assert [p.time_s for p in points] == [1.0, 2.0]
        assert points[0].total_w == pytest.approx(72.0)  # 35 + 37
        assert points[0].complete is True
        assert points[0].by_host == {"a": pytest.approx(35.0),
                                     "b": pytest.approx(37.0)}
        assert points[1].complete is False  # host b missing at t=2

    def test_out_of_order_reports_are_sorted_in(self):
        fleet = FleetAggregator()
        fleet.register_host("a")
        for time_s in (3.0, 1.0, 2.0):
            fleet.ingest("a", report(time_s))
        assert [s.time_s for s in fleet.host_series("a")] == [1.0, 2.0, 3.0]
        assert fleet.out_of_order_count() == 2
        assert [p.time_s for p in fleet.cluster_series()] == [1.0, 2.0, 3.0]

    def test_gap_marked_input_is_tolerated_not_summed(self):
        fleet = FleetAggregator()
        fleet.register_host("a")
        fleet.register_host("b")
        fleet.ingest("a", report(1.0, watts=5.0))
        fleet.ingest("b", report(1.0, gap=True))
        (point,) = fleet.cluster_series()
        assert point.total_w == pytest.approx(35.0)
        assert point.gap_hosts == ("b",)
        assert point.complete is False

    def test_cluster_energy_skips_gaps(self):
        fleet = FleetAggregator()
        fleet.ingest("a", report(1.0, watts=10.0))  # 40 W * 1 s
        fleet.ingest("a", report(2.0, gap=True))
        fleet.ingest("a", report(3.0, watts=10.0))
        assert fleet.cluster_energy_j() == pytest.approx(80.0)

    def test_duplicate_registration_rejected(self):
        fleet = FleetAggregator()
        fleet.register_host("a")
        with pytest.raises(ConfigurationError):
            fleet.register_host("a")

    def test_duplicate_timestamp_latest_wins(self):
        fleet = FleetAggregator()
        fleet.ingest("a", report(1.0, watts=5.0))
        fleet.ingest("a", report(1.0, watts=9.0))  # resent after reconnect
        (point,) = fleet.cluster_series()
        assert point.by_host["a"] == pytest.approx(39.0)


class TestLiveFleet:
    def test_merges_two_servers_with_host_labels(self):
        servers = {
            "machine-0": TelemetryServer(port=0,
                                         host_label="machine-0").start(),
            "machine-1": TelemetryServer(port=0,
                                         host_label="machine-1").start(),
        }
        fleet = FleetAggregator()
        try:
            for name, server in servers.items():
                fleet.add_host(name, "127.0.0.1", server.port)
                assert server.wait_for_subscribers(1)
            # machine-1 publishes out of order; machine-0 has a gap.
            servers["machine-0"].publish_report(report(1.0, watts=4.0))
            servers["machine-0"].publish_report(report(2.0, gap=True))
            servers["machine-1"].publish_report(report(2.0, watts=6.0))
            servers["machine-1"].publish_report(report(1.0, watts=5.0))
            assert fleet.wait_for_samples(4)
            points = fleet.cluster_series()
            assert [p.time_s for p in points] == [1.0, 2.0]
            assert points[0].total_w == pytest.approx(34.0 + 35.0)
            assert points[0].complete is True
            assert points[1].by_host == {"machine-1": pytest.approx(36.0)}
            assert points[1].gap_hosts == ("machine-0",)
            assert fleet.out_of_order_count() == 1
        finally:
            fleet.close()
            for server in servers.values():
                server.stop()


class TestEndToEnd:
    """Monitor pipeline → serve_telemetry → client/fleet, full stack."""

    @pytest.fixture
    def model(self):
        formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                         "cache-references": 2e-8,
                                         "cache-misses": 2e-7})
                    for f in intel_i3_2120().frequencies_hz]
        return PowerModel(idle_w=31.48, formulas=formulas, name="unit-model")

    def test_served_stream_matches_in_memory_reporter(self, model):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        api = PowerAPI(kernel, model)
        handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
        server = api.serve_telemetry(pids=handle.pids,
                                     host_label="sim-0")
        fleet = FleetAggregator()
        fleet.add_host("sim-0", "127.0.0.1", server.port)
        assert server.wait_for_subscribers(1)
        api.run(4.0)
        expected = len(handle.reporter.aggregated)
        assert expected >= 3
        assert fleet.wait_for_samples(expected)
        fleet_series = [s.total_w for s in fleet.host_series("sim-0")]
        assert fleet_series == pytest.approx(
            handle.reporter.total_series())
        fleet.close()
        api.shutdown()
        assert server.subscriber_count == 0

    def test_shutdown_stops_served_telemetry(self, model):
        kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
        api = PowerAPI(kernel, model)
        server = api.serve_telemetry()
        port = server.port
        assert len(api.telemetry_servers) == 1
        api.shutdown()
        # The listener is gone: a fresh server can take the port.
        replacement = TelemetryServer(port=port).start()
        replacement.stop()


class TestSeqDedup:
    """(host, seq) dedup: replayed frames never double-count watts."""

    def test_duplicate_seq_dropped(self):
        fleet = FleetAggregator()
        fleet.ingest("hostA", report(1.0, watts=5.0), seq=0)
        fleet.ingest("hostA", report(2.0, watts=6.0), seq=1)
        fleet.ingest("hostA", report(2.0, watts=6.0), seq=1)  # replay
        assert fleet.duplicate_count() == 1
        assert fleet.samples_ingested == 2
        assert [sample.time_s for sample in fleet.host_series("hostA")] \
            == [1.0, 2.0]
        assert fleet.cluster_energy_j() == pytest.approx(5.0 + 30.0
                                                         + 6.0 + 30.0)

    def test_dedup_is_per_host(self):
        fleet = FleetAggregator()
        fleet.ingest("hostA", report(1.0), seq=0)
        fleet.ingest("hostB", report(1.0), seq=0)  # same seq, other host
        assert fleet.duplicate_count() == 0
        assert len(fleet.cluster_series()) == 1
        assert fleet.cluster_series()[0].complete

    def test_seqless_input_never_deduped(self):
        fleet = FleetAggregator()
        fleet.ingest("hostA", report(1.0))
        fleet.ingest("hostA", report(1.0))
        assert fleet.duplicate_count() == 0
        assert fleet.samples_ingested == 2

    def test_live_replay_does_not_double_count(self, tmp_path):
        """End to end: a fleet client that crashes and resumes re-reads
        replayed frames off the wire; the aggregator merges each seq
        exactly once."""
        server = TelemetryServer(port=0, host_label="m1",
                                 replay_window=64).start()
        try:
            fleet = FleetAggregator()
            client = fleet.add_host("m1", "127.0.0.1", server.port,
                                    spool=tmp_path)
            server.wait_for(lambda: server.subscriber_count == 1)
            for time_s in (1.0, 2.0, 3.0):
                server.publish_report(report(time_s))
            assert fleet.wait_for_samples(3)
            client.close()

            for time_s in (4.0, 5.0):  # missed while down
                server.publish_report(report(time_s))
            restarted = fleet._streams["m1"]
            restarted.client = None  # the drain thread exited with close
            from repro.telemetry.client import TelemetryClient
            import threading
            resumed = TelemetryClient("127.0.0.1", server.port,
                                      kinds=("report",), spool=tmp_path)
            thread = threading.Thread(
                target=fleet._drain, args=("m1", resumed), daemon=True)
            thread.start()
            assert fleet.wait_for_samples(5)
            resumed.close()
            thread.join(timeout=5.0)

            times = [s.time_s for s in fleet.host_series("m1")]
            assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
            assert fleet.duplicate_count() == 0  # RESUME replays exactly
        finally:
            server.stop()

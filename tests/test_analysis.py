"""Unit tests for repro.analysis (traces, alignment, rendering)."""

import pytest

from repro.analysis.report import (ascii_chart, format_metrics,
                                   render_comparison, render_grid,
                                   render_table)
from repro.analysis.traces import PowerTrace, align, compare
from repro.errors import ConfigurationError
from repro.powermeter.base import PowerSample


def trace(name, times, powers):
    return PowerTrace.from_series(name, times, powers)


class TestPowerTrace:
    def test_from_samples(self):
        samples = [PowerSample(1.0, 30.0), PowerSample(2.0, 32.0)]
        result = PowerTrace.from_samples("meter", samples)
        assert result.times_s == (1.0, 2.0)
        assert result.powers_w == (30.0, 32.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            trace("x", [1.0], [1.0, 2.0])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ConfigurationError):
            trace("x", [2.0, 1.0], [1.0, 2.0])

    def test_mean(self):
        assert trace("x", [1, 2], [30, 34]).mean_w() == 32.0

    def test_mean_of_empty_raises(self):
        with pytest.raises(ConfigurationError):
            trace("x", [], []).mean_w()

    def test_energy_trapezoid(self):
        result = trace("x", [0.0, 2.0], [10.0, 20.0])
        assert result.energy_j() == pytest.approx(30.0)

    def test_energy_of_single_point(self):
        assert trace("x", [1.0], [10.0]).energy_j() == 0.0

    def test_window(self):
        result = trace("x", [1, 2, 3, 4], [10, 20, 30, 40]).window(2, 4)
        assert result.times_s == (2, 3)


class TestAlign:
    def test_matches_within_tolerance(self):
        reference = trace("a", [1.0, 2.0, 3.0], [10, 20, 30])
        other = trace("b", [1.01, 2.02, 2.98], [11, 21, 29])
        times, ref, oth = align(reference, other, tolerance_s=0.1)
        assert len(times) == 3
        assert list(oth) == [11, 21, 29]

    def test_skips_out_of_tolerance(self):
        reference = trace("a", [1.0, 5.0], [10, 50])
        other = trace("b", [1.0], [11])
        times, _ref, _oth = align(reference, other, tolerance_s=0.5)
        assert len(times) == 1

    def test_each_sample_used_once(self):
        reference = trace("a", [1.0, 1.1], [10, 11])
        other = trace("b", [1.05], [12])
        times, _ref, _oth = align(reference, other, tolerance_s=0.5)
        assert len(times) == 1

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            align(trace("a", [1], [1]), trace("b", [1], [1]), tolerance_s=0)


class TestCompare:
    def test_summary_fields(self):
        measured = trace("m", [1, 2, 3], [30, 35, 40])
        estimated = trace("e", [1, 2, 3], [33, 35, 36])
        summary = compare(measured, estimated)
        assert summary["aligned"] == 3
        assert summary["median_ape"] > 0

    def test_disjoint_traces_raise(self):
        with pytest.raises(ConfigurationError):
            compare(trace("m", [1], [30]), trace("e", [100], [30]))


class TestRendering:
    def test_render_table(self):
        text = render_table([("Vendor", "Intel"), ("TDP", "65 W")],
                            title="Table 1")
        assert "Vendor" in text
        assert ": Intel" in text
        assert text.startswith("Table 1")

    def test_render_table_requires_rows(self):
        with pytest.raises(ConfigurationError):
            render_table([])

    def test_render_grid_aligns_columns(self):
        text = render_grid(["model", "error"],
                           [["powerapi", "15.0%"], ["bertran", "4.6%"]])
        lines = text.splitlines()
        assert lines[0].startswith("model")
        assert len(lines) == 4

    def test_ascii_chart_draws_both_traces(self):
        a = trace("powerspy", list(range(10)), [30 + i for i in range(10)])
        b = trace("powerapi", list(range(10)), [31 + i for i in range(10)])
        chart = ascii_chart([a, b], width=40, height=8)
        assert "*" in chart and "+" in chart
        assert "powerspy" in chart and "powerapi" in chart

    def test_ascii_chart_needs_traces(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([])

    def test_ascii_chart_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([trace("a", [1], [1])], width=5, height=2)

    def test_ascii_chart_flat_trace(self):
        chart = ascii_chart([trace("flat", [0, 1, 2], [30, 30, 30])],
                            width=30, height=6)
        assert "flat" in chart

    def test_render_comparison(self):
        line = render_comparison("F3 median error", "15%", "15.3%",
                                 "reproduced")
        assert "paper=15%" in line
        assert "[reproduced]" in line

    def test_format_metrics(self):
        text = format_metrics({"median_ape": 0.153, "rmse_w": 3.2,
                               "r2": 0.9, "aligned": 100})
        assert "median_ape=15.3%" in text
        assert "rmse=3.20W" in text
        assert "n=100" in text

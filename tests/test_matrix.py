"""Scenario-matrix harness tests: spec expansion and TOML round-trips,
the invariant suite over synthetic observations, ddmin reduction, cell
runs (simulation-only and telemetry-backed), campaign reports, failing
cell shrinking with re-verification, and the ``matrix`` CLI.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest
from hypothesis import given

from repro.cli import main
from repro.errors import ConfigurationError
from repro.matrix import (DEFAULT_SUITE, INVARIANTS, CellObservations,
                          InvariantConfig, MatrixSpec, PipelineVariant,
                          TelemetryObservations, Violation, bench_headline,
                          ddmin, evaluate, invariant, reverify, run_cell,
                          run_matrix, shrink_cell, single_cell_spec)
from repro.matrix.invariants import ReceivedFrame
from tests.strategies import default_settings, matrix_specs

pytestmark = pytest.mark.matrix

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "matrix.toml"


def small_spec(**overrides):
    """A fast simulation-only matrix (no telemetry sockets)."""
    kwargs = dict(
        name="small", seed=7, duration_s=2.0, period_s=0.5,
        governors=("performance",), workloads=("cpu",),
        faults=("", "hpc-loss@0.5:0.5"),
        pipelines=(PipelineVariant("sim"),), caps_w=(0.0,))
    kwargs.update(overrides)
    return MatrixSpec(**kwargs)


class TestSpec:

    @given(spec=matrix_specs())
    @default_settings
    def test_toml_round_trips(self, spec):
        assert MatrixSpec.from_toml(spec.to_toml()) == spec

    @given(spec=matrix_specs())
    @default_settings
    def test_expansion_counts(self, spec):
        cells = spec.cells()
        product = 1
        for size in spec.axis_sizes().values():
            product *= size
        assert len(cells) == len(spec) == product
        assert len({cell.cell_id for cell in cells}) == len(cells)
        assert [cell.seed for cell in cells] == [
            spec.seed + i for i in range(len(cells))]

    def test_expansion_is_deterministic(self):
        spec = small_spec()
        assert spec.cells() == spec.cells()

    def test_cell_ids_label_plan_columns(self):
        cells = small_spec().cells()
        assert cells[0].cell_id == ("cpu=i3-2120/gov=performance/wl=cpu/"
                                    "faults=none/net=none/pipe=sim/cap=0")
        assert "faults=f1" in cells[1].cell_id

    def test_xfail_patterns_mark_cells(self):
        spec = small_spec(xfail=("*faults=f1*",))
        flags = [cell.xfail for cell in spec.cells()]
        assert flags == [False, True]

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cpu"):
            small_spec(cpus=("z80",))
        with pytest.raises(ConfigurationError, match="unknown governor"):
            small_spec(governors=("warp",))
        with pytest.raises(ConfigurationError, match="unknown workload"):
            small_spec(workloads=("mining",))

    def test_bad_fault_specs_rejected(self):
        with pytest.raises(ConfigurationError, match="bad fault entry"):
            small_spec(faults=("meter-dropout@oops",))

    def test_net_windows_must_fit_the_run(self):
        with pytest.raises(ConfigurationError, match="past the run"):
            small_spec(net_faults=("partition@1.5:1",),
                       pipelines=(PipelineVariant("t", replay_window=4),))
        with pytest.raises(ConfigurationError, match="at/after the end"):
            small_spec(net_faults=("reset@2",),
                       pipelines=(PipelineVariant("t", replay_window=4),))

    def test_duplicate_and_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            small_spec(governors=("ondemand", "ondemand"))
        with pytest.raises(ConfigurationError, match="not be empty"):
            small_spec(workloads=())

    def test_unknown_keys_rejected(self):
        payload = small_spec().to_dict()
        payload["tpyo"] = 1
        with pytest.raises(ConfigurationError, match="tpyo"):
            MatrixSpec.from_dict(payload)
        payload = small_spec().to_dict()
        payload["axes"]["cpus"] = ["i3-2120"]
        with pytest.raises(ConfigurationError, match="cpus"):
            MatrixSpec.from_dict(payload)

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown invariant"):
            InvariantConfig(suite=("frame-conservation", "vibes"))

    def test_single_cell_spec_round_trips_the_cell(self):
        spec = small_spec()
        cell = spec.cells()[1]
        repro = single_cell_spec(cell, name="repro")
        (again,) = repro.cells()
        assert again.axes() == cell.axes()
        assert again.seed == cell.seed

    def test_single_cell_spec_flattens_random_plans(self):
        spec = small_spec(faults=("random:42:2",))
        repro = single_cell_spec(spec.cells()[0], name="repro")
        assert "random" not in repro.faults[0]

    def test_example_matrix_shape(self):
        spec = MatrixSpec.from_file(EXAMPLE)
        cells = spec.cells()
        assert len(cells) == 48
        assert sum(1 for cell in cells if cell.xfail) == 12
        assert spec.invariants.suite == DEFAULT_SUITE


def observations(**overrides):
    """Synthetic observations for a clean 2 s / 0.5 s cell."""
    kwargs = dict(
        duration_s=2.0, period_s=0.5, cap_w=0.0, faults="", net_faults="",
        reports=tuple((0.5 * (i + 1), 0.5, 30.0, False) for i in range(4)),
        digest="d", rerun_digest="d")
    kwargs.update(overrides)
    return CellObservations(**kwargs)


def delivered(n, **overrides):
    kwargs = dict(
        received=tuple(ReceivedFrame(seq, "report", "e0")
                       for seq in range(n)),
        sentinel_seq=n)
    kwargs.update(overrides)
    return TelemetryObservations(**kwargs)


def names(violations):
    return [violation.invariant for violation in violations]


class TestInvariants:

    config = InvariantConfig()

    def test_clean_cell_passes_everything(self):
        assert evaluate(observations(), self.config) == []

    def test_frame_hole_breaks_conservation(self):
        obs = observations(reports=(
            (0.5, 0.5, 30.0, False), (1.5, 0.5, 30.0, False)))
        violations = INVARIANTS["frame-conservation"](obs, self.config)
        assert "breaks the period tiling" in violations[0].detail

    def test_truncation_needs_a_pid_loss(self):
        short = tuple((0.5 * (i + 1), 0.5, 30.0, False) for i in range(2))
        obs = observations(reports=short)
        assert names(INVARIANTS["frame-conservation"](obs, self.config)) \
            == ["frame-conservation"]
        explained = observations(
            reports=short,
            health=((1.1, "sensor", "pid-lost", "pid 1 exited"),))
        assert INVARIANTS["frame-conservation"](explained,
                                                self.config) == []

    def test_gap_needs_an_explaining_fault(self):
        gappy = tuple((0.5 * (i + 1), 0.5, 30.0, i == 1)
                      for i in range(4))
        obs = observations(reports=gappy)
        assert names(INVARIANTS["gap-accounting"](obs, self.config)) \
            == ["gap-accounting"]
        explained = observations(reports=gappy,
                                 faults="meter-dropout@0.75:0.5")
        assert INVARIANTS["gap-accounting"](explained, self.config) == []

    def test_duplicate_seq_breaks_monotonicity(self):
        telemetry = delivered(3)
        telemetry.received += (ReceivedFrame(2, "report", "e0"),)
        obs = observations(telemetry=telemetry)
        assert names(INVARIANTS["monotonic-seq"](obs, self.config)) \
            == ["monotonic-seq"]
        assert names(INVARIANTS["exactly-once"](obs, self.config)) \
            == ["exactly-once"]

    def test_new_epoch_may_restart_seq(self):
        telemetry = delivered(3)
        telemetry.received += (ReceivedFrame(0, "report", "e1"),)
        obs = observations(telemetry=telemetry)
        assert INVARIANTS["monotonic-seq"](obs, self.config) == []

    def test_silent_loss_fails_exactly_once(self):
        telemetry = delivered(4)
        telemetry.received = telemetry.received[:2]
        obs = observations(telemetry=telemetry)
        violations = INVARIANTS["exactly-once"](obs, self.config)
        assert "silently lost" in violations[0].detail

    def test_declared_loss_passes_exactly_once_but_not_zero_loss(self):
        telemetry = delivered(4, declared_lost=((2, 3),))
        telemetry.received = telemetry.received[:2]
        obs = observations(telemetry=telemetry)
        assert INVARIANTS["exactly-once"](obs, self.config) == []
        violations = INVARIANTS["zero-loss"](obs, self.config)
        assert "2 declared" in violations[0].detail

    def test_full_delivery_passes_zero_loss(self):
        obs = observations(telemetry=delivered(4))
        assert INVARIANTS["zero-loss"](obs, self.config) == []

    def test_cap_judges_only_the_converged_tail(self):
        config = InvariantConfig(cap_settle_periods=2)
        settling = observations(cap_w=40.0, reports=(
            (0.5, 0.5, 70.0, False), (1.0, 0.5, 60.0, False),
            (1.5, 0.5, 42.0, False), (2.0, 0.5, 41.0, False)))
        assert INVARIANTS["cap-adherence"](settling, config) == []
        still_over = observations(cap_w=40.0, reports=(
            (0.5, 0.5, 70.0, False), (1.0, 0.5, 60.0, False),
            (1.5, 0.5, 55.0, False), (2.0, 0.5, 52.0, False)))
        violations = INVARIANTS["cap-adherence"](still_over, config)
        assert "exceed the 40W cap" in violations[0].detail

    def test_unattainable_cap_waives_the_tail(self):
        config = InvariantConfig(cap_settle_periods=2)
        obs = observations(
            cap_w=40.0,
            cap_events=((1.2, "unattainable", 55.0),),
            reports=((0.5, 0.5, 70.0, False), (1.0, 0.5, 60.0, False),
                     (1.5, 0.5, 55.0, False), (2.0, 0.5, 55.0, False)))
        assert INVARIANTS["cap-adherence"](obs, config) == []

    def test_health_must_record_every_applied_fault(self):
        obs = observations(applied=((0.5, "meter-dropout"),))
        violations = INVARIANTS["health-consistency"](obs, self.config)
        assert "health log records 0" in violations[0].detail
        consistent = observations(
            applied=((0.5, "meter-dropout"),),
            health=((0.5, "injector", "fault-injected",
                     "meter-dropout for 1s"),))
        assert INVARIANTS["health-consistency"](consistent,
                                                self.config) == []

    def test_impossible_health_timestamp_fails(self):
        obs = observations(
            health=((99.0, "sensor", "gap-detected", "late"),))
        violations = INVARIANTS["health-consistency"](obs, self.config)
        assert "impossible time" in violations[0].detail

    def test_determinism_compares_digests(self):
        obs = observations(rerun_digest="different")
        assert names(INVARIANTS["determinism"](obs, self.config)) \
            == ["determinism"]
        assert INVARIANTS["determinism"](
            observations(rerun_digest=None), self.config) == []

    def test_suite_subset_only_runs_selected(self):
        obs = observations(rerun_digest="different")
        config = InvariantConfig(suite=("frame-conservation",))
        assert evaluate(obs, config) == []

    def test_registry_is_pluggable(self):
        @invariant("always-angry")
        def always_angry(obs, config):
            return [Violation("always-angry", "grr")]

        try:
            config = InvariantConfig(suite=("always-angry",))
            assert names(evaluate(observations(), config)) \
                == ["always-angry"]
        finally:
            del INVARIANTS["always-angry"]


class TestDdmin:

    def test_reduces_to_single_culprit(self):
        items = list(range(8))
        assert ddmin(items, lambda subset: 5 in subset) == [5]

    def test_keeps_a_one_minimal_pair(self):
        items = list("abcdef")
        result = ddmin(items, lambda s: "a" in s and "e" in s)
        assert result == ["a", "e"]

    def test_empty_config_wins_when_failure_is_unconditional(self):
        assert ddmin([1, 2, 3], lambda _subset: True) == []


class TestRunner:

    def test_clean_sim_cell_passes(self):
        result = run_cell(small_spec().cells()[0])
        assert result.ok and result.violations == []
        assert result.metrics["frames"] == 4
        assert result.metrics["gap_frames"] == 0
        assert "telemetry" not in result.metrics

    def test_faulted_sim_cell_accounts_for_its_gaps(self):
        result = run_cell(small_spec().cells()[1])
        assert result.ok
        assert result.metrics["faults_applied"] >= 1
        assert result.metrics["gap_frames"] >= 1

    def test_run_matrix_report_shape(self):
        report = run_matrix(small_spec(), shrink=False)
        assert report["cells_total"] == report["cells_run"] == 2
        assert report["outcomes"] == {"pass": 2, "fail": 0,
                                      "xfail": 0, "xpass": 0}
        assert report["unexpected"] == 0
        assert report["pass_rate"] == 1.0
        assert bench_headline(report) == {
            "cells_run": 2, "pass_rate": 1.0, "unexpected": 0,
            "wall_s": report["wall_s"]}

    def test_run_matrix_filters_cells(self):
        report = run_matrix(small_spec(), shrink=False,
                            cell_filter="*faults=f1*")
        assert report["cells_run"] == 1
        assert report["cells_total"] == 2
        assert "faults=f1" in report["cells"][0]["cell_id"]

    def test_run_matrix_fans_out_over_workers(self):
        serial = run_matrix(small_spec(), shrink=False)
        fanned = run_matrix(small_spec(), shrink=False, workers=2)
        strip = lambda report: [
            {k: v for k, v in cell.items() if k != "wall_s"}
            for cell in report["cells"]]
        assert strip(serial) == strip(fanned)

    def test_xpass_is_unexpected(self):
        report = run_matrix(small_spec(xfail=("*faults=f1*",)),
                            shrink=False)
        assert report["outcomes"]["xpass"] == 1
        assert report["unexpected"] == 1


def violation_spec(**overrides):
    """A telemetry matrix whose no-replay column provably loses frames:
    the partition window keeps the subscriber out while frames publish,
    and with the replay ring disabled they are gone for good."""
    kwargs = dict(
        name="violating", seed=99, duration_s=6.0, period_s=0.5,
        governors=("performance",), workloads=("cpu",),
        faults=("meter-dropout@1:0.5;hpc-loss@3:0.5",),
        net_faults=("partition@2:1",),
        pipelines=(PipelineVariant("no-replay", replay_window=0),),
        caps_w=(0.0,))
    kwargs.update(overrides)
    return MatrixSpec(**kwargs)


class TestEndToEnd:

    def test_durable_pipeline_survives_the_partition(self):
        spec = violation_spec(pipelines=(
            PipelineVariant("durable", replay_window=256),))
        result = run_cell(spec.cells()[0])
        assert result.ok, result.violations
        assert result.metrics["telemetry"]["net_faults_injected"] >= 1

    def test_no_replay_pipeline_violates_zero_loss(self):
        result = run_cell(violation_spec().cells()[0])
        assert not result.ok
        assert names_of(result) == ["zero-loss"]
        assert result.metrics["telemetry"]["declared_lost"] >= 1

    def test_shrink_reduces_and_reverifies(self):
        spec = violation_spec()
        cell = spec.cells()[0]
        shrunk = shrink_cell(spec, cell, "zero-loss", budget=24)
        # The two kernel faults are noise for a delivery violation; the
        # partition is the culprit and must survive the reduction.
        assert shrunk["faults"] == ""
        assert "partition" in shrunk["net_faults"]
        assert shrunk["events_removed"] == 2
        assert shrunk["runs_used"] <= 24
        assert reverify(shrunk)

    def test_run_matrix_attaches_shrunk_repro(self):
        report = run_matrix(violation_spec(), shrink=True,
                            max_shrink_cells=1, shrink_budget=24)
        (cell,) = report["cells"]
        assert cell["outcome"] == "fail"
        assert "matrix_toml" in cell["shrunk"]
        repro = MatrixSpec.from_toml(cell["shrunk"]["matrix_toml"])
        assert len(repro) == 1


def names_of(result):
    return [violation["invariant"] for violation in result.violations]


class TestCli:

    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_matrix_run_writes_report_and_bench(self, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(small_spec().to_toml())
        report_path = tmp_path / "report.json"
        bench_path = tmp_path / "bench.json"
        code, text = self.run_cli(
            "matrix", "run", "--matrix", str(matrix),
            "--output", str(report_path), "--bench", str(bench_path))
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["cells_run"] == 2 and report["unexpected"] == 0
        bench = json.loads(bench_path.read_text())
        assert bench["pass_rate"] == 1.0
        assert "report written" in text

    def test_matrix_run_exits_nonzero_on_unexpected(self, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(small_spec(xfail=("*",)).to_toml())
        code, text = self.run_cli("matrix", "run",
                                  "--matrix", str(matrix), "--no-shrink")
        assert code == 1
        assert "xpass" in text

    def test_matrix_run_cell_filter(self, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(small_spec().to_toml())
        code, text = self.run_cli(
            "matrix", "run", "--matrix", str(matrix), "--cell", "0")
        assert code == 0
        assert "1 cell(s)" in text

    def test_matrix_report_summarizes(self, tmp_path):
        matrix = tmp_path / "m.toml"
        matrix.write_text(small_spec().to_toml())
        report_path = tmp_path / "report.json"
        self.run_cli("matrix", "run", "--matrix", str(matrix),
                     "--output", str(report_path))
        code, text = self.run_cli("matrix", "report", str(report_path))
        assert code == 0
        assert "2 of 2 cell(s)" in text
        assert "pass rate 100.0%" in text

    def test_matrix_run_missing_file_is_a_clean_error(self, tmp_path):
        code, _text = self.run_cli(
            "matrix", "run", "--matrix", str(tmp_path / "nope.toml"))
        assert code == 1

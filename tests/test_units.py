"""Unit tests for repro.units."""

import math

import pytest

from repro import units
from repro.errors import ConfigurationError


class TestFrequencyHelpers:
    def test_khz(self):
        assert units.khz(1) == 1_000

    def test_mhz(self):
        assert units.mhz(1600) == 1_600_000_000

    def test_ghz(self):
        assert units.ghz(3.3) == 3_300_000_000

    def test_ghz_rounds_to_int(self):
        assert isinstance(units.ghz(1.7), int)

    def test_to_ghz_roundtrip(self):
        assert units.to_ghz(units.ghz(2.4)) == pytest.approx(2.4)

    def test_to_mhz(self):
        assert units.to_mhz(units.mhz(800)) == pytest.approx(800)


class TestValidation:
    def test_watts_accepts_zero(self):
        assert units.watts(0.0) == 0.0

    def test_watts_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            units.watts(-1.0)

    def test_watts_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            units.watts(float("nan"))

    def test_watts_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            units.watts(math.inf)

    def test_joules_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            units.joules(-0.1)

    def test_seconds_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            units.seconds(-5)


class TestEnergyConversions:
    def test_energy(self):
        assert units.energy(10.0, 2.0) == 20.0

    def test_average_power(self):
        assert units.average_power(20.0, 2.0) == 10.0

    def test_average_power_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            units.average_power(20.0, 0.0)

    def test_energy_power_roundtrip(self):
        power, duration = 31.48, 7.5
        assert units.average_power(units.energy(power, duration),
                                   duration) == pytest.approx(power)


class TestByteSizes:
    def test_kib(self):
        assert units.kib(64) == 65536

    def test_mib(self):
        assert units.mib(3) == 3 * 1024 * 1024


class TestFormatting:
    def test_format_frequency_ghz(self):
        assert units.format_frequency(units.ghz(3.3)) == "3.30 GHz"

    def test_format_frequency_mhz(self):
        assert units.format_frequency(units.mhz(800)) == "800 MHz"

    def test_format_frequency_khz(self):
        assert units.format_frequency(units.khz(32)) == "32 kHz"

    def test_format_frequency_hz(self):
        assert units.format_frequency(50) == "50 Hz"

    def test_format_power(self):
        assert units.format_power(31.48) == "31.48 W"

    def test_format_bytes_kb(self):
        assert units.format_bytes(units.kib(64)) == "64 KB"

    def test_format_bytes_mb(self):
        assert units.format_bytes(units.mib(3)) == "3 MB"

    def test_format_bytes_gb(self):
        assert units.format_bytes(2 * 1024 ** 3) == "2 GB"

    def test_format_bytes_plain(self):
        assert units.format_bytes(100) == "100 B"

"""Unit tests for code-level energy: region profiling, energy unit tests."""

import pytest

from repro.core.codelevel import (EnergyBudget, EnergyBudgetExceeded,
                                  RegionProfiler, assert_energy_within,
                                  measure_energy)
from repro.core.model import FrequencyFormula, PowerModel
from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.base import (Phase, PhasedWorkload, cpu_demand,
                                  memory_demand)


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def model(spec):
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in spec.frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas, name="test-model")


def two_region_workload(name="regions"):
    return PhasedWorkload([
        Phase(3.0, cpu_demand(utilization=1.0), region="compute_kernel"),
        Phase(3.0, Demand(utilization=0.1), region="io_wait"),
        Phase(2.0, memory_demand(utilization=1.0), region="shuffle"),
    ], name=name)


class TestRegions:
    def test_phase_region_lookup(self):
        workload = two_region_workload()
        assert workload.region(1.0) == "compute_kernel"
        assert workload.region(4.0) == "io_wait"
        assert workload.region(7.0) == "shuffle"
        assert workload.region(99.0) == ""

    def test_default_region_empty(self):
        from repro.workloads.stress import CpuStress
        assert CpuStress().region(1.0) == ""


class TestMeasureEnergy:
    def test_finishing_workload_measured(self, spec, model):
        measurement = measure_energy(two_region_workload(), spec, model,
                                     period_s=0.5, quantum_s=0.02)
        assert measurement.duration_s == pytest.approx(8.0, abs=0.3)
        assert measurement.active_energy_j > 10.0
        assert measurement.mean_active_power_w == pytest.approx(
            measurement.active_energy_j / measurement.duration_s)

    def test_regions_profiled(self, spec, model):
        measurement = measure_energy(two_region_workload(), spec, model,
                                     period_s=0.5, quantum_s=0.02)
        profile = measurement.by_region_j
        assert set(profile) >= {"compute_kernel", "io_wait", "shuffle"}
        # The busy compute region dominates the near-idle wait region.
        assert profile["compute_kernel"] > 5 * profile["io_wait"]

    def test_nonterminating_workload_rejected(self, spec, model):
        from repro.workloads.base import ConstantWorkload
        eternal = ConstantWorkload(cpu_demand())
        with pytest.raises(ConfigurationError):
            measure_energy(eternal, spec, model, period_s=0.5,
                           quantum_s=0.02, max_duration_s=1.0)


class TestEnergyBudget:
    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyBudget(max_active_energy_j=0.0)

    def test_within_budget_passes(self, spec, model):
        measurement = assert_energy_within(
            two_region_workload(), EnergyBudget(max_active_energy_j=500.0),
            spec, model=model, period_s=0.5, quantum_s=0.02)
        assert measurement.active_energy_j < 500.0

    def test_exceeding_budget_fails(self, spec, model):
        with pytest.raises(EnergyBudgetExceeded):
            assert_energy_within(
                two_region_workload(), EnergyBudget(max_active_energy_j=1.0),
                spec, model=model, period_s=0.5, quantum_s=0.02)

    def test_power_cap_enforced(self, spec, model):
        budget = EnergyBudget(max_active_energy_j=500.0,
                              max_mean_power_w=0.5)
        with pytest.raises(EnergyBudgetExceeded):
            assert_energy_within(two_region_workload(), budget, spec,
                                 model=model, period_s=0.5, quantum_s=0.02)

    def test_regression_catches_energy_bug(self, spec, model):
        """The ref [7] scenario: a 'library update' doubles the work done
        per call; the energy unit test must catch it."""
        lean = PhasedWorkload(
            [Phase(2.0, cpu_demand(utilization=0.5), region="api_call")],
            name="lib-v1")
        bloated = PhasedWorkload(
            [Phase(4.0, cpu_demand(utilization=1.0), region="api_call")],
            name="lib-v2")
        baseline = measure_energy(lean, spec, model, period_s=0.5,
                                  quantum_s=0.02)
        budget = EnergyBudget(
            max_active_energy_j=baseline.active_energy_j * 1.5)
        assert_energy_within(lean, budget, spec, model=model,
                             period_s=0.5, quantum_s=0.02)
        with pytest.raises(EnergyBudgetExceeded):
            assert_energy_within(bloated, budget, spec, model=model,
                                 period_s=0.5, quantum_s=0.02)


class TestRegionProfilerValidation:
    def test_requires_workloads(self):
        from repro.os.kernel import SimKernel
        kernel = SimKernel(intel_i3_2120())
        with pytest.raises(ConfigurationError):
            RegionProfiler(kernel, {})

"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSpecs:
    def test_default_preset(self):
        code, output = run_cli(["specs"])
        assert code == 0
        assert "Intel i3 2120" in output
        assert "3.30 GHz" in output
        assert "TDP" in output

    def test_other_preset(self):
        code, output = run_cli(["--cpu", "xeon-e5-1620", "specs"])
        assert code == 0
        assert "Xeon" in output
        assert "8 threads" in output

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["--cpu", "z80", "specs"])


class TestLearn:
    def test_quick_learn_writes_model(self, tmp_path):
        output_path = tmp_path / "model.json"
        code, output = run_cli(["learn", "--quick",
                                "--output", str(output_path)])
        assert code == 0
        assert output_path.exists()
        model = json.loads(output_path.read_text())
        assert "idle_w" in model
        assert len(model["formulas"]) == 2  # quick = ladder endpoints
        assert "Power =" in output


class TestMonitor:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def test_monitor_prints_periods(self, model_path):
        code, output = run_cli(["monitor", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--period", "1"])
        assert code == 0
        assert "total=" in output
        assert "estimated active energy" in output

    def test_monitor_writes_csv(self, model_path, tmp_path):
        csv_path = tmp_path / "trace.csv"
        code, _output = run_cli(["monitor", "--model", str(model_path),
                                 "--workload", "memory", "--duration", "3",
                                 "--csv", str(csv_path)])
        assert code == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("time_s,total_w,idle_w,pid_")
        assert len(lines) >= 3


class TestReplay:
    def test_short_replay_reports_error(self, tmp_path):
        model_path = tmp_path / "model.json"
        run_cli(["learn", "--quick", "--output", str(model_path)])
        code, output = run_cli(["replay", "--model", str(model_path),
                                "--duration", "30"])
        assert code == 0
        assert "median_ape" in output
        assert "powerspy" in output


class TestTelemetryCli:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("telemetry-cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def test_serve_runs_and_reports_stats(self, model_path):
        code, output = run_cli(["serve", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--period", "1"])
        assert code == 0
        assert "telemetry: serving on 127.0.0.1:" in output
        assert "published 3 reports" in output
        assert "stalls: 0" in output

    def test_subscribe_prints_stream(self):
        import threading

        from repro.core.messages import AggregatedPowerReport
        from repro.telemetry.server import TelemetryServer

        server = TelemetryServer(port=0, host_label="cli-host").start()

        def publish():
            if server.wait_for_subscribers(1, timeout=10.0):
                for time_s in (1.0, 2.0):
                    server.publish_report(AggregatedPowerReport(
                        time_s=time_s, period_s=1.0, by_pid={100: 5.0},
                        idle_w=30.0, formula="hpc"))

        publisher = threading.Thread(target=publish, daemon=True)
        publisher.start()
        try:
            code, output = run_cli(["subscribe", "--port", str(server.port),
                                    "--max-frames", "2"])
            publisher.join(timeout=10.0)
        finally:
            server.stop()
        assert code == 0
        assert "total= 35.00W" in output
        assert "host=cli-host" in output
        assert "received 2 frame(s)" in output


class TestPipelineFlag:
    """End-to-end --pipeline: config-driven assembly through the CLI."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("pipeline-cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def _write_toml(self, tmp_path, body):
        path = tmp_path / "pipeline.toml"
        path.write_text(body)
        return path

    def test_monitor_with_pipeline_file(self, model_path, tmp_path):
        csv_path = tmp_path / "out.csv"
        config = self._write_toml(tmp_path, f"""\
pids = [1]
period_s = 1.0

[sensor]
type = "hpc"

[formula]
type = "hpc"

[[aggregators]]
type = "timestamp"

[[aggregators]]
type = "pid"

[[reporters]]
type = "csv"
path = {json.dumps(str(csv_path))}

[degradation]
degrade_after = 3
recover_after = 2
""")
        code, output = run_cli(["monitor", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--pipeline", str(config)])
        assert code == 0
        assert "pipeline:" in output and "sensor=hpc" in output
        assert "estimated active energy" in output
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("time_s,")
        assert len(lines) == 4  # header + one row per period

    def test_monitor_pipeline_json(self, model_path, tmp_path):
        config = tmp_path / "pipeline.json"
        config.write_text(json.dumps({
            "pids": [1], "period_s": 1.0,
            "sensor": {"type": "procfs"},
            "formula": {"type": "cpu-load"},
            "aggregators": [{"type": "timestamp"}, {"type": "pid"}],
            "reporters": [{"type": "memory"}],
        }))
        code, output = run_cli(["monitor", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--pipeline", str(config)])
        assert code == 0
        assert "formula=cpu-load" in output
        assert "total=" in output

    def test_unknown_component_fails_with_available_names(self, model_path,
                                                          tmp_path):
        config = self._write_toml(tmp_path, """\
pids = [1]

[sensor]
type = "rapl"

[[reporters]]
type = "memory"
""")
        code, _output = run_cli(["monitor", "--model", str(model_path),
                                 "--workload", "cpu", "--duration", "2",
                                 "--pipeline", str(config)])
        assert code == 1  # ConfigurationError -> exit code 1

    def test_serve_with_pipeline_advertises_spec(self, model_path, tmp_path):
        config = self._write_toml(tmp_path, """\
pids = [1]
period_s = 1.0

[[reporters]]
type = "memory"

[telemetry]
host = "127.0.0.1"
port = 0
""")
        code, output = run_cli(["serve", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--pipeline", str(config)])
        assert code == 0
        assert "telemetry: serving on 127.0.0.1:" in output
        assert "published 3 reports" in output

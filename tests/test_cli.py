"""Unit tests for the command-line interface."""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSpecs:
    def test_default_preset(self):
        code, output = run_cli(["specs"])
        assert code == 0
        assert "Intel i3 2120" in output
        assert "3.30 GHz" in output
        assert "TDP" in output

    def test_other_preset(self):
        code, output = run_cli(["--cpu", "xeon-e5-1620", "specs"])
        assert code == 0
        assert "Xeon" in output
        assert "8 threads" in output

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["--cpu", "z80", "specs"])


class TestLearn:
    def test_quick_learn_writes_model(self, tmp_path):
        output_path = tmp_path / "model.json"
        code, output = run_cli(["learn", "--quick",
                                "--output", str(output_path)])
        assert code == 0
        assert output_path.exists()
        model = json.loads(output_path.read_text())
        assert "idle_w" in model
        assert len(model["formulas"]) == 2  # quick = ladder endpoints
        assert "Power =" in output


class TestMonitor:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def test_monitor_prints_periods(self, model_path):
        code, output = run_cli(["monitor", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--period", "1"])
        assert code == 0
        assert "total=" in output
        assert "estimated active energy" in output

    def test_monitor_writes_csv(self, model_path, tmp_path):
        csv_path = tmp_path / "trace.csv"
        code, _output = run_cli(["monitor", "--model", str(model_path),
                                 "--workload", "memory", "--duration", "3",
                                 "--csv", str(csv_path)])
        assert code == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("time_s,total_w,idle_w,pid_")
        assert len(lines) >= 3


class TestReplay:
    def test_short_replay_reports_error(self, tmp_path):
        model_path = tmp_path / "model.json"
        run_cli(["learn", "--quick", "--output", str(model_path)])
        code, output = run_cli(["replay", "--model", str(model_path),
                                "--duration", "30"])
        assert code == 0
        assert "median_ape" in output
        assert "powerspy" in output


class TestTelemetryCli:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("telemetry-cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def test_serve_runs_and_reports_stats(self, model_path):
        code, output = run_cli(["serve", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--period", "1"])
        assert code == 0
        assert "telemetry: serving on 127.0.0.1:" in output
        assert "published 3 reports" in output
        assert "stalls: 0" in output

    def test_subscribe_prints_stream(self):
        import threading

        from repro.core.messages import AggregatedPowerReport
        from repro.telemetry.server import TelemetryServer

        server = TelemetryServer(port=0, host_label="cli-host").start()

        def publish():
            if server.wait_for_subscribers(1, timeout=10.0):
                for time_s in (1.0, 2.0):
                    server.publish_report(AggregatedPowerReport(
                        time_s=time_s, period_s=1.0, by_pid={100: 5.0},
                        idle_w=30.0, formula="hpc"))

        publisher = threading.Thread(target=publish, daemon=True)
        publisher.start()
        try:
            code, output = run_cli(["subscribe", "--port", str(server.port),
                                    "--max-frames", "2"])
            publisher.join(timeout=10.0)
        finally:
            server.stop()
        assert code == 0
        assert "total= 35.00W" in output
        assert "host=cli-host" in output
        assert "received 2 frame(s)" in output


class TestPipelineFlag:
    """End-to-end --pipeline: config-driven assembly through the CLI."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("pipeline-cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def _write_toml(self, tmp_path, body):
        path = tmp_path / "pipeline.toml"
        path.write_text(body)
        return path

    def test_monitor_with_pipeline_file(self, model_path, tmp_path):
        csv_path = tmp_path / "out.csv"
        config = self._write_toml(tmp_path, f"""\
pids = [1]
period_s = 1.0

[sensor]
type = "hpc"

[formula]
type = "hpc"

[[aggregators]]
type = "timestamp"

[[aggregators]]
type = "pid"

[[reporters]]
type = "csv"
path = {json.dumps(str(csv_path))}

[degradation]
degrade_after = 3
recover_after = 2
""")
        code, output = run_cli(["monitor", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--pipeline", str(config)])
        assert code == 0
        assert "pipeline:" in output and "sensor=hpc" in output
        assert "estimated active energy" in output
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("time_s,")
        assert len(lines) == 4  # header + one row per period

    def test_monitor_pipeline_json(self, model_path, tmp_path):
        config = tmp_path / "pipeline.json"
        config.write_text(json.dumps({
            "pids": [1], "period_s": 1.0,
            "sensor": {"type": "procfs"},
            "formula": {"type": "cpu-load"},
            "aggregators": [{"type": "timestamp"}, {"type": "pid"}],
            "reporters": [{"type": "memory"}],
        }))
        code, output = run_cli(["monitor", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--pipeline", str(config)])
        assert code == 0
        assert "formula=cpu-load" in output
        assert "total=" in output

    def test_unknown_component_fails_with_available_names(self, model_path,
                                                          tmp_path):
        config = self._write_toml(tmp_path, """\
pids = [1]

[sensor]
type = "rapl"

[[reporters]]
type = "memory"
""")
        code, _output = run_cli(["monitor", "--model", str(model_path),
                                 "--workload", "cpu", "--duration", "2",
                                 "--pipeline", str(config)])
        assert code == 1  # ConfigurationError -> exit code 1

    def test_serve_with_pipeline_advertises_spec(self, model_path, tmp_path):
        config = self._write_toml(tmp_path, """\
pids = [1]
period_s = 1.0

[[reporters]]
type = "memory"

[telemetry]
host = "127.0.0.1"
port = 0
""")
        code, output = run_cli(["serve", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--pipeline", str(config)])
        assert code == 0
        assert "telemetry: serving on 127.0.0.1:" in output
        assert "published 3 reports" in output


@pytest.mark.chaos
class TestChaosFlags:
    """The crash-recovery flags: --replay-window, --net-faults, --spool."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("chaos-cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def test_serve_reports_replay_stats(self, model_path):
        code, output = run_cli(["serve", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--period", "1", "--replay-window", "8"])
        assert code == 0
        assert "replay: window 8, 0 resume(s) served" in output

    def test_serve_prints_net_fault_plan(self, model_path):
        code, output = run_cli(["serve", "--model", str(model_path),
                                "--workload", "cpu", "--duration", "3",
                                "--period", "1",
                                "--net-faults", "reset@9999"])
        assert code == 0
        assert "net fault plan: reset@9999" in output
        assert "net faults injected: 0" in output

    def test_bad_net_fault_spec_fails(self, model_path):
        code, _output = run_cli(["serve", "--model", str(model_path),
                                 "--workload", "cpu", "--duration", "2",
                                 "--net-faults", "meteor@3"])
        assert code == 1  # ConfigurationError -> exit code 1

    def test_subscribe_spool_survives_restart(self, tmp_path):
        """Kill-and-resume through the CLI: the second `subscribe` with
        the same --spool directory presents its last-acked seq and only
        receives the frames published while it was away."""
        import threading

        from repro.core.messages import AggregatedPowerReport
        from repro.telemetry.server import TelemetryServer

        def report(time_s):
            return AggregatedPowerReport(
                time_s=time_s, period_s=1.0, by_pid={100: 5.0},
                idle_w=30.0, formula="hpc")

        server = TelemetryServer(port=0, host_label="spool-host",
                                 replay_window=64).start()
        spool_dir = tmp_path / "spooldir"

        def publish_first():
            if server.wait_for_subscribers(1, timeout=10.0):
                server.publish_report(report(1.0))
                server.publish_report(report(2.0))

        publisher = threading.Thread(target=publish_first, daemon=True)
        publisher.start()
        try:
            code, output = run_cli(["subscribe", "--port",
                                    str(server.port), "--max-frames", "2",
                                    "--spool", str(spool_dir)])
            publisher.join(timeout=10.0)
            assert code == 0
            assert "spool: last seq 1" in output
            assert "resumes sent: 0" in output

            # Published while no subscriber is connected: the replay
            # ring holds these for the resuming client.
            server.publish_report(report(3.0))
            server.publish_report(report(4.0))

            code, output = run_cli(["subscribe", "--port",
                                    str(server.port), "--max-frames", "2",
                                    "--spool", str(spool_dir)])
        finally:
            server.stop()
        assert code == 0
        assert "spool: resuming after seq 1 (epoch" in output
        assert "t=     3.0s" in output and "t=     4.0s" in output
        assert "spool: last seq 3" in output
        assert "resumes sent: 1" in output
        assert "duplicates dropped: 0" in output


@pytest.mark.chaos
class TestGracefulSignals:
    """SIGINT/SIGTERM land as a clean early stop: handlers flush the
    reporters, print a diagnostic, and exit 0 (regression for abrupt
    KeyboardInterrupt tracebacks and torn CSV tails)."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("signal-cli") / "model.json"
        run_cli(["learn", "--quick", "--output", str(path)])
        return path

    def _spawn(self, argv, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out_path = tmp_path / "stdout.txt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro"] + argv,
            stdout=out_path.open("w"), stderr=subprocess.STDOUT, env=env)
        return proc, out_path

    def _wait_for_output(self, proc, out_path, needle, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if out_path.exists() and needle in out_path.read_text():
                return
            if proc.poll() is not None:
                pytest.fail(f"process exited early ({proc.returncode}): "
                            f"{out_path.read_text()}")
            time.sleep(0.05)
        pytest.fail(f"no {needle!r} in output after {timeout}s")

    def test_monitor_sigint_flushes_and_exits_zero(self, model_path,
                                                   tmp_path):
        csv_path = tmp_path / "trace.csv"
        proc, out_path = self._spawn(
            ["monitor", "--model", str(model_path), "--workload", "cpu",
             "--duration", "500000", "--period", "1",
             "--csv", str(csv_path)], tmp_path)
        # Wait until the run loop is live (a period line reached stdout)
        # so the handler is installed before we fire the signal.
        self._wait_for_output(proc, out_path, "total=")
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=60.0) == 0
        output = out_path.read_text()
        assert "SIGINT: stopping early at t=" in output
        assert "reporters flushed" in output
        lines = csv_path.read_text().strip().splitlines()
        columns = lines[0].count(",")
        assert len(lines) >= 2
        # Every row is complete: the flush left no torn tail.
        assert all(line.count(",") == columns for line in lines)

    def test_serve_sigterm_closes_telemetry(self, model_path, tmp_path):
        proc, out_path = self._spawn(
            ["serve", "--model", str(model_path), "--workload", "cpu",
             "--duration", "500000", "--period", "1", "--pace", "0.01"],
            tmp_path)
        self._wait_for_output(proc, out_path, "telemetry: serving on")
        time.sleep(0.3)  # let the publish loop take a few steps
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60.0) == 0
        output = out_path.read_text()
        assert "SIGTERM: stopping early at t=" in output
        assert "closing telemetry" in output
        assert "published" in output and "reports" in output

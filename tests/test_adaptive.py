"""Adaptive live sampling: phase detection, dt widening, accuracy bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.simcpu import (AdaptiveConfig, AdaptiveReport, AdaptiveSampler,
                          InstructionMix, Machine, MemoryProfile,
                          PhaseDetector, ThreadAssignment)
from repro.simcpu.spec import intel_i3_2120

SPEC = intel_i3_2120()


def _assignments(busy, fp=0.2, mem=0.1, ws=1 << 16, locality=0.95):
    return [ThreadAssignment(
        pid=300 + cpu_id, cpu_id=cpu_id, busy_fraction=busy,
        mix=InstructionMix(fp_fraction=fp),
        memory=MemoryProfile(mem_ops_per_instruction=mem,
                             working_set_bytes=ws, locality=locality))
        for cpu_id in range(SPEC.num_threads)]


def _machine():
    machine = Machine(SPEC)
    machine.set_frequency(SPEC.max_frequency_hz)
    return machine


PHASED_SCHEDULE = [
    (_assignments(0.9), 10.0),
    (_assignments(0.3), 5.0),
    (_assignments(1.0, fp=0.4), 10.0),
]

MEMORY_SCHEDULE = [
    (_assignments(0.6, mem=0.4, ws=1 << 24, locality=0.6), 8.0),
    (_assignments(0.2, mem=0.4, ws=1 << 24, locality=0.6), 6.0),
    (_assignments(0.8), 8.0),
]


def _full_resolution_energy(schedule, config):
    machine = _machine()
    before = machine.energy_j
    for assignments, duration_s in schedule:
        n_ticks = max(1, int(round(duration_s / config.fine_dt_s)))
        machine.run_batch(assignments, n_ticks, config.fine_dt_s)
    return machine.energy_j - before


class TestConfig:
    def test_rejects_inverted_dts(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(fine_dt_s=0.1, coarse_dt_s=0.01)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(fine_dt_s=0.0)

    def test_rejects_bad_probe_probability(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(probe_probability=1.5)


class TestPhaseDetector:
    def test_steady_after_configured_windows(self):
        config = AdaptiveConfig(steady_windows=3)
        detector = PhaseDetector(config)
        results = [detector.observe(1.0, 0.5) for _ in range(5)]
        # First observation has no history; the next three build stability.
        assert results == [False, False, False, True, True]

    def test_transient_resets_stability(self):
        detector = PhaseDetector(AdaptiveConfig(steady_windows=2))
        for _ in range(4):
            detector.observe(1.0, 0.5)
        assert detector.observe(1.0, 0.5) is True
        assert detector.observe(2.0, 0.5) is False  # IPC jump
        assert detector.observe(2.0, 0.5) is False
        assert detector.observe(2.0, 0.5) is True   # re-stabilised

    def test_busy_change_is_a_transient(self):
        detector = PhaseDetector(AdaptiveConfig(steady_windows=1))
        detector.observe(1.0, 0.5)
        assert detector.observe(1.0, 0.5) is True
        assert detector.observe(1.0, 0.9) is False

    def test_reset_forgets_history(self):
        detector = PhaseDetector(AdaptiveConfig(steady_windows=1))
        detector.observe(1.0, 0.5)
        assert detector.observe(1.0, 0.5) is True
        detector.reset()
        assert detector.observe(1.0, 0.5) is False


class TestAdaptiveSampler:
    def test_widens_dt_in_steady_phases(self):
        report = AdaptiveSampler(_machine(), seed=1).run(PHASED_SCHEDULE)
        assert report.coarse_ticks > 0
        assert report.fine_ticks > 0
        assert report.transitions_to_coarse >= len(PHASED_SCHEDULE)
        assert report.tick_reduction(AdaptiveConfig()) > 2.0

    def test_simulated_time_is_honoured(self):
        config = AdaptiveConfig()
        report = AdaptiveSampler(_machine(), config, seed=1).run(
            PHASED_SCHEDULE)
        expected_s = sum(duration for _a, duration in PHASED_SCHEDULE)
        assert report.simulated_s == pytest.approx(expected_s)
        ratio = round(config.coarse_dt_s / config.fine_dt_s)
        assert (report.fine_ticks + report.coarse_ticks * ratio
                == int(round(expected_s / config.fine_dt_s)))

    def test_deterministic_for_a_seed(self):
        first = AdaptiveSampler(_machine(), seed=7).run(PHASED_SCHEDULE)
        second = AdaptiveSampler(_machine(), seed=7).run(PHASED_SCHEDULE)
        assert first.fine_ticks == second.fine_ticks
        assert first.coarse_ticks == second.coarse_ticks
        assert first.probe_windows == second.probe_windows
        assert first.energy_j == second.energy_j

    def test_seed_changes_probe_pattern(self):
        reports = {AdaptiveSampler(_machine(), seed=seed).run(
            PHASED_SCHEDULE).probe_windows for seed in range(6)}
        assert len(reports) > 1

    def test_probes_can_be_disabled(self):
        config = AdaptiveConfig(probe_probability=0.0)
        report = AdaptiveSampler(_machine(), config, seed=1).run(
            PHASED_SCHEDULE)
        assert report.probe_windows == 0

    def test_all_fine_when_coarse_equals_fine(self):
        config = AdaptiveConfig(fine_dt_s=0.01, coarse_dt_s=0.01)
        report = AdaptiveSampler(_machine(), config, seed=1).run(
            [(_assignments(0.9), 2.0)])
        assert report.tick_reduction(config) == 1.0

    def test_rejects_nonpositive_segment(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSampler(_machine(), seed=1).run([(_assignments(0.5), 0.0)])

    @pytest.mark.parametrize("schedule", [PHASED_SCHEDULE, MEMORY_SCHEDULE],
                             ids=["phased-cpu", "memory-churn"])
    def test_energy_error_within_one_percent(self, schedule):
        config = AdaptiveConfig()
        reference_j = _full_resolution_energy(schedule, config)
        report = AdaptiveSampler(_machine(), config, seed=42).run(schedule)
        error = abs(report.energy_j - reference_j) / reference_j
        assert error <= 0.01
        assert report.coarse_ticks > 0  # the bound is earned, not trivial

    def test_observers_see_every_tick(self):
        machine = _machine()
        seen = []
        machine.add_observer(seen.append)
        report = AdaptiveSampler(machine, seed=3).run(
            [(_assignments(0.7), 2.0)])
        assert len(seen) == report.total_ticks
        assert [r.time_s for r in seen] == sorted(r.time_s for r in seen)

    def test_report_segment_records(self):
        report = AdaptiveSampler(_machine(), seed=1).run(PHASED_SCHEDULE)
        assert len(report.segment_records) == len(PHASED_SCHEDULE)
        assert isinstance(report, AdaptiveReport)
        assert report.segment_records[-1].time_s == pytest.approx(
            report.simulated_s)

"""The benchmark diff tool: regression detection and summary rendering."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "diff_bench", REPO_ROOT / "benchmarks" / "diff_bench.py")
diff_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and diff_bench)

BASE = {"ticks_per_sec": 100_000.0, "batched_ticks_per_sec": 1_000_000.0,
        "campaign_wall_s": 2.0, "campaign_wall_serial_s": 4.0}


class TestDiffBenchmarks:
    def test_no_regression_on_improvement(self):
        current = {**BASE, "ticks_per_sec": 150_000.0, "campaign_wall_s": 1.0}
        _rows, regressions = diff_bench.diff_benchmarks(BASE, current, 10.0)
        assert regressions == []

    def test_throughput_drop_is_a_regression(self):
        current = {**BASE, "ticks_per_sec": 80_000.0}
        _rows, regressions = diff_bench.diff_benchmarks(BASE, current, 10.0)
        assert len(regressions) == 1
        assert "ticks_per_sec" in regressions[0]

    def test_wall_time_growth_is_a_regression(self):
        current = {**BASE, "campaign_wall_s": 2.5}
        _rows, regressions = diff_bench.diff_benchmarks(BASE, current, 10.0)
        assert len(regressions) == 1
        assert "campaign_wall_s" in regressions[0]

    def test_within_threshold_passes(self):
        current = {**BASE, "ticks_per_sec": 95_000.0,
                   "campaign_wall_s": 2.1}
        _rows, regressions = diff_bench.diff_benchmarks(BASE, current, 10.0)
        assert regressions == []

    def test_missing_metric_is_not_a_regression(self):
        base = {"ticks_per_sec": 100_000.0}
        current = {"ticks_per_sec": 100_000.0}
        rows, regressions = diff_bench.diff_benchmarks(base, current, 10.0)
        assert regressions == []
        assert any(change == "n/a" for _m, _b, _n, change, _f in rows)

    def test_markdown_mentions_regressions(self):
        current = {**BASE, "ticks_per_sec": 50_000.0}
        rows, regressions = diff_bench.diff_benchmarks(BASE, current, 10.0)
        markdown = diff_bench.render_markdown(rows, regressions, 10.0)
        assert "regressed more than 10%" in markdown
        assert "| ticks_per_sec |" in markdown


class TestMain:
    def test_exit_codes_and_summary(self, tmp_path, monkeypatch):
        baseline = tmp_path / "base.json"
        current = tmp_path / "current.json"
        summary = tmp_path / "summary.md"
        baseline.write_text(json.dumps(BASE))
        current.write_text(json.dumps({**BASE, "ticks_per_sec": 50_000.0}))
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert diff_bench.main([str(baseline), str(current)]) == 1
        assert "regression" in summary.read_text()
        current.write_text(json.dumps(BASE))
        assert diff_bench.main([str(baseline), str(current)]) == 0

    def test_missing_baseline_is_benign(self, tmp_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(BASE))
        assert diff_bench.main(
            [str(tmp_path / "missing.json"), str(current)]) == 0


class TestCustomMetricLists:
    CONTROL_BASE = {"mean_adherence": 1.0,
                    "mean_throughput_loss_pct": 20.0,
                    "worst_overshoot_pct": 3.0}

    def test_custom_higher_metric_regression(self):
        current = {**self.CONTROL_BASE, "mean_adherence": 0.80}
        _rows, regressions = diff_bench.diff_benchmarks(
            self.CONTROL_BASE, current, 10.0,
            higher=("mean_adherence",),
            lower=("mean_throughput_loss_pct", "worst_overshoot_pct"))
        assert len(regressions) == 1
        assert "mean_adherence" in regressions[0]

    def test_custom_lower_metric_regression(self):
        current = {**self.CONTROL_BASE, "mean_throughput_loss_pct": 30.0}
        _rows, regressions = diff_bench.diff_benchmarks(
            self.CONTROL_BASE, current, 10.0,
            higher=("mean_adherence",),
            lower=("mean_throughput_loss_pct",))
        assert len(regressions) == 1
        assert "mean_throughput_loss_pct" in regressions[0]

    def test_default_metrics_unchanged(self):
        # The positional call the CI sim-diff uses keeps its behaviour.
        current = {**BASE, "ticks_per_sec": 80_000.0}
        _rows, regressions = diff_bench.diff_benchmarks(BASE, current, 10.0)
        assert len(regressions) == 1

    def test_cli_metric_lists(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(self.CONTROL_BASE))
        current.write_text(json.dumps(
            {**self.CONTROL_BASE, "mean_adherence": 0.5}))
        argv = [str(baseline), str(current),
                "--higher", "mean_adherence",
                "--lower", "mean_throughput_loss_pct,worst_overshoot_pct"]
        assert diff_bench.main(argv) == 1
        current.write_text(json.dumps(self.CONTROL_BASE))
        assert diff_bench.main(argv) == 0

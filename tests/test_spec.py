"""Unit tests for repro.simcpu.spec (CPU specifications and presets)."""

import pytest

from repro.errors import ConfigurationError, FrequencyError
from repro.simcpu.spec import (PRESETS, CacheSpec, CpuSpec, PowerEnvelope,
                               intel_core2duo_e6600, intel_i3_2120,
                               intel_xeon_smt, preset)
from repro.units import ghz, kib, mib


class TestCacheSpec:
    def test_lines(self):
        cache = CacheSpec(level=1, size_bytes=kib(64), line_bytes=64)
        assert cache.lines == 1024

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=0, size_bytes=kib(64))

    def test_rejects_level_above_3(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=4, size_bytes=kib(64))

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=1, size_bytes=0)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=1, size_bytes=100, line_bytes=64)

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=1, size_bytes=kib(64), latency_cycles=0)


class TestPowerEnvelope:
    def test_rejects_negative_tdp(self):
        with pytest.raises(ConfigurationError):
            PowerEnvelope(tdp_w=-1, idle_w=30, core_active_w=10,
                          uncore_active_w=2, dram_w_per_gtps=15)

    def test_accepts_valid(self):
        envelope = PowerEnvelope(tdp_w=65, idle_w=31.48, core_active_w=11,
                                 uncore_active_w=3.5, dram_w_per_gtps=18)
        assert envelope.idle_w == 31.48


class TestTable1Specification:
    """The i3-2120 preset must match the paper's Table 1 exactly."""

    @pytest.fixture
    def spec(self):
        return intel_i3_2120()

    def test_vendor(self, spec):
        assert spec.vendor == "Intel"

    def test_design_4_threads(self, spec):
        assert spec.num_threads == 4

    def test_two_physical_cores(self, spec):
        assert spec.num_cores == 2

    def test_max_frequency_3_30_ghz(self, spec):
        assert spec.max_frequency_hz == ghz(3.3)

    def test_tdp_65w(self, spec):
        assert spec.power.tdp_w == 65.0

    def test_idle_power_is_published_constant(self, spec):
        assert spec.power.idle_w == pytest.approx(31.48)

    def test_speedstep_present(self, spec):
        assert spec.dvfs_enabled

    def test_hyperthreading_present(self, spec):
        assert spec.smt_enabled

    def test_turboboost_absent(self, spec):
        assert not spec.turbo_enabled

    def test_cstates_present(self, spec):
        assert len(spec.cstates) > 1

    def test_l1_cache_64kb(self, spec):
        assert spec.cache(1).size_bytes == kib(64)
        assert not spec.cache(1).shared

    def test_l2_cache_256kb(self, spec):
        assert spec.cache(2).size_bytes == kib(256)

    def test_l3_cache_3mb_shared(self, spec):
        assert spec.cache(3).size_bytes == mib(3)
        assert spec.cache(3).shared

    def test_specification_table_rows(self, spec):
        rows = dict(spec.specification_table())
        assert rows["Vendor"] == "Intel"
        assert rows["Design"] == "4 threads"
        assert rows["Frequency"] == "3.30 GHz"
        assert rows["TDP"] == "65 W"
        assert rows["SpeedStep (DVFS)"] == "yes"
        assert rows["HyperThreading (SMT)"] == "yes"
        assert rows["TurboBoost (Overclocking)"] == "no"
        assert rows["C-states (Idle states)"] == "yes"
        assert rows["L1 cache"] == "64 KB / core"
        assert rows["L3 cache"] == "3 MB"

    def test_frequency_ladder_1_6_to_3_3(self, spec):
        assert spec.min_frequency_hz == ghz(1.6)
        assert spec.max_frequency_hz == ghz(3.3)
        assert len(spec.frequencies_hz) >= 5


class TestOtherPresets:
    def test_core2duo_is_simple_architecture(self):
        spec = intel_core2duo_e6600()
        assert not spec.smt_enabled
        assert not spec.turbo_enabled
        assert spec.num_cores == 2

    def test_xeon_has_smt_and_turbo(self):
        spec = intel_xeon_smt()
        assert spec.smt_enabled
        assert spec.turbo_enabled
        assert spec.num_threads == 8

    def test_xeon_turbo_above_sustained(self):
        spec = intel_xeon_smt()
        assert spec.turbo_frequencies_hz[0] > spec.max_frequency_hz

    def test_preset_registry(self):
        assert "i3-2120" in PRESETS
        assert preset("i3-2120").model == "i3 2120"

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            preset("pentium-ii")


class TestSpecValidation:
    def _base_kwargs(self):
        return dict(
            vendor="Intel", model="test 1", packages=1,
            cores_per_package=2, threads_per_core=2,
            frequencies_hz=(ghz(1.0), ghz(2.0)),
            turbo_frequencies_hz=(),
            caches=(CacheSpec(level=1, size_bytes=kib(32)),),
            power=PowerEnvelope(tdp_w=65, idle_w=30, core_active_w=10,
                                uncore_active_w=2, dram_w_per_gtps=15),
        )

    def test_valid_spec(self):
        assert CpuSpec(**self._base_kwargs()).num_threads == 4

    def test_rejects_zero_cores(self):
        kwargs = self._base_kwargs()
        kwargs["cores_per_package"] = 0
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_rejects_odd_smt(self):
        kwargs = self._base_kwargs()
        kwargs["threads_per_core"] = 3
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_rejects_descending_frequencies(self):
        kwargs = self._base_kwargs()
        kwargs["frequencies_hz"] = (ghz(2.0), ghz(1.0))
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_rejects_duplicate_frequencies(self):
        kwargs = self._base_kwargs()
        kwargs["frequencies_hz"] = (ghz(1.0), ghz(1.0))
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_rejects_turbo_below_sustained(self):
        kwargs = self._base_kwargs()
        kwargs["turbo_frequencies_hz"] = (ghz(1.5),)
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_rejects_empty_frequency_ladder(self):
        kwargs = self._base_kwargs()
        kwargs["frequencies_hz"] = ()
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_rejects_unordered_caches(self):
        kwargs = self._base_kwargs()
        kwargs["caches"] = (CacheSpec(level=2, size_bytes=kib(256)),
                            CacheSpec(level=1, size_bytes=kib(32)))
        with pytest.raises(ConfigurationError):
            CpuSpec(**kwargs)

    def test_validate_frequency_accepts_supported(self):
        spec = CpuSpec(**self._base_kwargs())
        assert spec.validate_frequency(ghz(2.0)) == ghz(2.0)

    def test_validate_frequency_rejects_unsupported(self):
        spec = CpuSpec(**self._base_kwargs())
        with pytest.raises(FrequencyError):
            spec.validate_frequency(ghz(2.5))

    def test_cache_lookup_missing_level(self):
        spec = CpuSpec(**self._base_kwargs())
        with pytest.raises(ConfigurationError):
            spec.cache(3)

    def test_all_frequencies_includes_turbo(self):
        kwargs = self._base_kwargs()
        kwargs["turbo_frequencies_hz"] = (ghz(2.2), ghz(2.4))
        spec = CpuSpec(**kwargs)
        assert spec.all_frequencies_hz == (ghz(1.0), ghz(2.0), ghz(2.2),
                                           ghz(2.4))

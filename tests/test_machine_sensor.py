"""Unit tests for the machine-wide (SMT-aware) HPC sensor."""

import pytest

from repro.actors.clock import VirtualClock
from repro.actors.system import ActorSystem
from repro.core.messages import HpcReport
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.sensors import MachineHpcSensor
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress


def drive(kernel, system, clock, seconds):
    steps = int(round(seconds / kernel.quantum_s))
    for _ in range(steps):
        kernel.tick()
        clock.advance(kernel.quantum_s)
        system.dispatch()


@pytest.fixture
def setup():
    kernel = SimKernel(intel_i3_2120(), quantum_s=0.02)
    system = ActorSystem()
    clock = VirtualClock(system.event_bus, period_s=0.5)
    perf = PerfSession(kernel.machine)
    reports = []

    from repro.actors.actor import Actor

    class Collector(Actor):
        def pre_start(self):
            self.context.system.event_bus.subscribe(HpcReport, self.self_ref)

        def receive(self, message):
            reports.append(message)

    system.spawn(Collector(), "collector")
    return kernel, system, clock, perf, reports


class TestMachineHpcSensor:
    def test_publishes_machine_wide_reports(self, setup):
        kernel, system, clock, perf, reports = setup
        system.spawn(MachineHpcSensor(kernel.machine, perf), "sensor")
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        drive(kernel, system, clock, 2.0)
        assert len(reports) == 4
        assert all(report.pid == -1 for report in reports)
        assert reports[-1].counters["instructions"] > 1e8

    def test_overlap_zero_when_spread(self, setup):
        kernel, system, clock, perf, reports = setup
        system.spawn(MachineHpcSensor(kernel.machine, perf,
                                      with_smt_overlap=True), "sensor")
        # Two tasks: the spread scheduler puts them on separate cores.
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0))
        drive(kernel, system, clock, 1.0)
        assert reports[-1].counters[
            MachineHpcSensor.SMT_OVERLAP_EVENT] == pytest.approx(0.0)

    def test_overlap_positive_when_colocated(self, setup):
        kernel, system, clock, perf, reports = setup
        system.spawn(MachineHpcSensor(kernel.machine, perf,
                                      with_smt_overlap=True), "sensor")
        # Pin both tasks to core 0's hyperthreads (cpus 0 and 2).
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0),
                     affinity={0})
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0),
                     affinity={2})
        drive(kernel, system, clock, 1.0)
        overlap = reports[-1].counters[MachineHpcSensor.SMT_OVERLAP_EVENT]
        assert overlap > 0.4 * 0.5 * intel_i3_2120().max_frequency_hz

    def test_feeds_hyperthread_aware_formula(self, setup):
        """A model with a negative overlap weight estimates less power for
        the co-located placement — live, through the actor pipeline."""
        from repro.core.formula import HpcFormula
        from repro.core.messages import PowerReport

        kernel, system, clock, perf, reports = setup
        spec = intel_i3_2120()
        model = PowerModel(idle_w=31.48, formulas=[FrequencyFormula(
            spec.max_frequency_hz,
            {"cycles": 5e-9,
             MachineHpcSensor.SMT_OVERLAP_EVENT: -2e-9})])
        estimates = []

        from repro.actors.actor import Actor

        class PowerCollector(Actor):
            def pre_start(self):
                self.context.system.event_bus.subscribe(
                    PowerReport, self.self_ref)

            def receive(self, message):
                estimates.append(message.power_w)

        system.spawn(MachineHpcSensor(kernel.machine, perf,
                                      events=("cycles",),
                                      with_smt_overlap=True), "sensor")
        system.spawn(HpcFormula(model), "formula")
        system.spawn(PowerCollector(), "power-collector")
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0),
                     affinity={0})
        kernel.spawn(CpuStress(utilization=1.0, duration_s=100.0),
                     affinity={2})
        drive(kernel, system, clock, 1.0)
        colocated_estimate = estimates[-1]
        # Same cycles but no overlap -> higher estimate.
        cycles = 2 * 0.5 * spec.max_frequency_hz
        no_overlap = model.predict_active(
            spec.max_frequency_hz, {"cycles": cycles / 0.5})
        assert colocated_estimate < no_overlap

    def test_counters_closed_on_stop(self, setup):
        kernel, system, clock, perf, reports = setup
        sensor = MachineHpcSensor(kernel.machine, perf,
                                  with_smt_overlap=True)
        ref = system.spawn(sensor, "sensor")
        drive(kernel, system, clock, 0.5)
        system.stop(ref)
        assert sensor._counters == ()
        assert sensor._cycle_counters == {}

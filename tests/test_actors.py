"""Unit tests for the actor runtime: actors, bus, system, clock, supervision."""

import pytest

from repro.actors.actor import Actor, Mailbox, Envelope
from repro.actors.clock import ClockTick, VirtualClock
from repro.actors.eventbus import EventBus
from repro.actors.supervision import (Directive, EscalateStrategy,
                                      RestartStrategy, ResumeStrategy,
                                      StopStrategy)
from repro.actors.system import ActorSystem
from repro.errors import (ActorError, ActorStoppedError, ConfigurationError,
                          MailboxOverflowError)


class Recorder(Actor):
    """Collects everything it receives."""

    def __init__(self):
        super().__init__()
        self.received = []

    def receive(self, message):
        self.received.append(message)


class Exploder(Actor):
    """Raises on a trigger message, records the rest."""

    def __init__(self):
        super().__init__()
        self.received = []

    def receive(self, message):
        if message == "boom":
            raise ValueError("boom")
        self.received.append(message)


class TestMailbox:
    def test_fifo(self):
        mailbox = Mailbox()
        mailbox.put(Envelope("a", None))
        mailbox.put(Envelope("b", None))
        assert mailbox.get().message == "a"
        assert mailbox.get().message == "b"

    def test_empty_returns_none(self):
        assert Mailbox().get() is None

    def test_overflow(self):
        mailbox = Mailbox(capacity=2)
        mailbox.put(Envelope(1, None))
        mailbox.put(Envelope(2, None))
        with pytest.raises(MailboxOverflowError):
            mailbox.put(Envelope(3, None))


class TestBasicDelivery:
    def test_tell_then_dispatch(self):
        system = ActorSystem()
        recorder = Recorder()
        ref = system.spawn(recorder, "rec")
        ref.tell("hello")
        assert recorder.received == []  # not yet dispatched
        system.dispatch()
        assert recorder.received == ["hello"]

    def test_fifo_across_actors(self):
        system = ActorSystem()
        a, b = Recorder(), Recorder()
        ref_a = system.spawn(a, "a")
        ref_b = system.spawn(b, "b")
        ref_a.tell(1)
        ref_b.tell(2)
        ref_a.tell(3)
        system.dispatch()
        assert a.received == [1, 3]
        assert b.received == [2]

    def test_sender_available_in_context(self):
        system = ActorSystem()

        class Replier(Actor):
            def receive(self, message):
                self.context.sender.tell("pong")

        recorder = Recorder()
        recorder_ref = system.spawn(recorder, "rec")
        replier_ref = system.spawn(Replier(), "rep")
        replier_ref.tell("ping", sender=recorder_ref)
        system.dispatch()
        assert recorder.received == ["pong"]

    def test_tell_to_stopped_actor_raises(self):
        system = ActorSystem()
        ref = system.spawn(Recorder(), "rec")
        system.stop(ref)
        with pytest.raises(ActorStoppedError):
            ref.tell("late")

    def test_duplicate_name_rejected(self):
        system = ActorSystem()
        system.spawn(Recorder(), "dup")
        with pytest.raises(ActorError):
            system.spawn(Recorder(), "dup")

    def test_auto_names_unique(self):
        system = ActorSystem()
        ref_a = system.spawn(Recorder())
        ref_b = system.spawn(Recorder())
        assert ref_a.name != ref_b.name

    def test_dispatch_loop_guard(self):
        system = ActorSystem()

        class Pinger(Actor):
            def receive(self, message):
                self.self_ref.tell(message)  # infinite self-send

        ref = system.spawn(Pinger(), "loop")
        ref.tell("go")
        with pytest.raises(ActorError):
            system.dispatch(max_messages=100)

    def test_shutdown_stops_everything(self):
        system = ActorSystem()
        system.spawn(Recorder(), "a")
        system.spawn(Recorder(), "b")
        system.shutdown()
        assert system.actor_names() == ()

    def test_factory_must_build_actor(self):
        system = ActorSystem()
        with pytest.raises(ActorError):
            system.actor_of(lambda: object(), "bad")

    def test_lifecycle_hooks(self):
        events = []

        class Hooked(Actor):
            def pre_start(self):
                events.append("start")

            def post_stop(self):
                events.append("stop")

            def receive(self, message):
                pass

        system = ActorSystem()
        ref = system.spawn(Hooked(), "hooked")
        system.stop(ref)
        assert events == ["start", "stop"]


class TestEventBus:
    def test_publish_to_subscribers(self):
        system = ActorSystem()
        recorder = Recorder()
        ref = system.spawn(recorder, "rec")
        system.event_bus.subscribe(str, ref)
        system.event_bus.publish("news")
        system.dispatch()
        assert recorder.received == ["news"]

    def test_type_routing(self):
        system = ActorSystem()
        strings, numbers = Recorder(), Recorder()
        system.event_bus.subscribe(str, system.spawn(strings, "s"))
        system.event_bus.subscribe(int, system.spawn(numbers, "i"))
        system.event_bus.publish("text")
        system.event_bus.publish(42)
        system.dispatch()
        assert strings.received == ["text"]
        assert numbers.received == [42]

    def test_base_class_subscription(self):
        class Base:
            pass

        class Derived(Base):
            pass

        system = ActorSystem()
        recorder = Recorder()
        system.event_bus.subscribe(Base, system.spawn(recorder, "rec"))
        message = Derived()
        system.event_bus.publish(message)
        system.dispatch()
        assert recorder.received == [message]

    def test_no_duplicate_delivery_for_mro_overlap(self):
        class Base:
            pass

        class Derived(Base):
            pass

        system = ActorSystem()
        recorder = Recorder()
        ref = system.spawn(recorder, "rec")
        system.event_bus.subscribe(Base, ref)
        system.event_bus.subscribe(Derived, ref)
        system.event_bus.publish(Derived())
        system.dispatch()
        assert len(recorder.received) == 1

    def test_unsubscribe(self):
        system = ActorSystem()
        recorder = Recorder()
        ref = system.spawn(recorder, "rec")
        system.event_bus.subscribe(str, ref)
        system.event_bus.unsubscribe(str, ref)
        system.event_bus.publish("gone")
        system.dispatch()
        assert recorder.received == []

    def test_stop_unsubscribes(self):
        system = ActorSystem()
        ref = system.spawn(Recorder(), "rec")
        system.event_bus.subscribe(str, ref)
        system.stop(ref)
        system.event_bus.publish("late")  # must not raise
        system.dispatch()

    def test_subscriber_count(self):
        system = ActorSystem()
        ref = system.spawn(Recorder(), "rec")
        system.event_bus.subscribe(str, ref)
        assert system.event_bus.subscriber_count(str) == 1
        assert system.event_bus.subscriber_count(int) == 0


class TestSupervision:
    def test_stop_strategy(self):
        system = ActorSystem(strategy=StopStrategy())
        ref = system.spawn(Exploder(), "exp")
        ref.tell("boom")
        system.dispatch()
        assert not ref.alive

    def test_resume_strategy_keeps_state(self):
        system = ActorSystem(strategy=ResumeStrategy())
        exploder = Exploder()
        ref = system.spawn(exploder, "exp")
        ref.tell("a")
        ref.tell("boom")
        ref.tell("b")
        system.dispatch()
        assert exploder.received == ["a", "b"]
        assert ref.alive

    def test_restart_strategy_rebuilds(self):
        system = ActorSystem(strategy=RestartStrategy(max_restarts=2))
        instances = []

        def factory():
            actor = Exploder()
            instances.append(actor)
            return actor

        ref = system.actor_of(factory, "exp")
        ref.tell("a")
        ref.tell("boom")
        ref.tell("b")
        system.dispatch()
        assert len(instances) == 2
        assert instances[0].received == ["a"]
        assert instances[1].received == ["b"]

    def test_restart_budget_exhaustion_stops(self):
        system = ActorSystem(strategy=RestartStrategy(max_restarts=1))
        ref = system.actor_of(Exploder, "exp")
        ref.tell("boom")
        ref.tell("boom")
        system.dispatch()
        assert not ref.alive

    def test_escalate_strategy_raises(self):
        system = ActorSystem(strategy=EscalateStrategy())
        ref = system.spawn(Exploder(), "exp")
        ref.tell("boom")
        with pytest.raises(ValueError):
            system.dispatch()

    def test_spawned_instance_cannot_restart(self):
        # spawn() wraps an instance: restart decays to reuse of the factory
        # closure returning the same instance, which is still usable.
        system = ActorSystem(strategy=RestartStrategy())
        exploder = Exploder()
        ref = system.spawn(exploder, "exp")
        ref.tell("boom")
        ref.tell("ok")
        system.dispatch()
        assert ref.alive
        assert exploder.received == ["ok"]


class TestVirtualClock:
    def test_one_tick_per_period(self):
        system = ActorSystem()
        recorder = Recorder()
        system.event_bus.subscribe(ClockTick, system.spawn(recorder, "rec"))
        clock = VirtualClock(system.event_bus, period_s=1.0)
        for _ in range(10):
            clock.advance(0.25)
            system.dispatch()
        assert len(recorder.received) == 2
        assert clock.ticks_emitted == 2

    def test_multiple_ticks_in_large_advance(self):
        system = ActorSystem()
        recorder = Recorder()
        system.event_bus.subscribe(ClockTick, system.spawn(recorder, "rec"))
        clock = VirtualClock(system.event_bus, period_s=0.5)
        clock.advance(1.7)
        system.dispatch()
        assert len(recorder.received) == 3

    def test_tick_carries_time_and_period(self):
        system = ActorSystem()
        recorder = Recorder()
        system.event_bus.subscribe(ClockTick, system.spawn(recorder, "rec"))
        clock = VirtualClock(system.event_bus, period_s=1.0)
        clock.advance(1.0)
        system.dispatch()
        tick = recorder.received[0]
        assert tick.time_s == pytest.approx(1.0)
        assert tick.period_s == 1.0

    def test_rejects_negative_advance(self):
        clock = VirtualClock(ActorSystem().event_bus, period_s=1.0)
        with pytest.raises(ConfigurationError):
            clock.advance(-0.1)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(ActorSystem().event_bus, period_s=0.0)

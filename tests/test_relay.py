"""Relay-tree tests: origin identity across hops, multi-hop
resequencing properties, mid-chain restart exactly-once, diamond
dedup, hierarchical fleet rollup and the ``relay`` CLI node.

The property tests draw reports from ``tests/strategies`` and push
them through live 1-3 hop chains on ephemeral localhost ports; every
wait is condition-based — no sleeps.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import ConfigurationError
from repro.telemetry import (FleetAggregator, HierarchicalFleetAggregator,
                             TelemetryClient, TelemetryRelay, TelemetryServer,
                             relay_chain)
from repro.telemetry.client import ReconnectPolicy
from repro.telemetry.wire import GapTelemetry, HealthTelemetry, ReportEvent
from tests.strategies import aggregated_reports

pytestmark = pytest.mark.telemetry


def report(time_s=1.0, by_pid=None, gap=False):
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid={} if gap else (by_pid if by_pid is not None else {100: 5.5}),
        idle_w=31.48, formula="hpc", gap=gap)


def make_client(port, **kwargs):
    client = TelemetryClient("127.0.0.1", port,
                             read_timeout_s=10.0, **kwargs)
    client.connect()
    return client


def wait_chain_connected(origin, chain):
    """Every hop has its downstream neighbour subscribed."""
    assert origin.wait_for_subscribers(1, timeout=10.0)
    for relay in chain[:-1]:
        assert relay.wait_for_subscribers(1, timeout=10.0)


class TestRelayConfig:
    def test_needs_at_least_one_upstream(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            TelemetryRelay([])

    def test_server_kwargs_conflict_with_grafted_server(self):
        server = TelemetryServer(port=0)
        with pytest.raises(ConfigurationError, match="existing server"):
            TelemetryRelay(("127.0.0.1", 1), server=server,
                           replay_window=8)

    def test_chain_needs_a_hop(self):
        with pytest.raises(ConfigurationError, match=">= 1 hop"):
            relay_chain(("127.0.0.1", 1), hops=0)


class TestSingleHop:
    def test_identity_stamped_at_first_hop(self):
        origin = TelemetryServer(host_label="origin-1",
                                 replay_window=64).start()
        relay = None
        client = None
        try:
            relay = TelemetryRelay(("127.0.0.1", origin.port)).start()
            assert origin.wait_for_subscribers(1)
            client = make_client(relay.port)
            for index in range(3):
                origin.publish_report(report(time_s=float(index)))
            events = client.collect(3)
            assert [e.host for e in events] == ["origin-1"] * 3
            assert [e.origin_seq for e in events] == [0, 1, 2]
            assert all(e.origin_epoch == origin.stream_epoch
                       for e in events)
            assert [e.identity() for e in events] == [
                ("origin-1", origin.stream_epoch, i) for i in range(3)]
            assert relay.wait_until_relayed(3)
        finally:
            if client is not None:
                client.close()
            if relay is not None:
                relay.stop()
            origin.stop()

    def test_health_and_gap_frames_relay_with_identity(self):
        origin = TelemetryServer(host_label="origin-1").start()
        relay = None
        client = None
        try:
            relay = TelemetryRelay(("127.0.0.1", origin.port)).start()
            assert origin.wait_for_subscribers(1)
            client = make_client(relay.port)
            origin.publish_health(HealthEvent(
                time_s=1.0, component="sensor", kind="degraded",
                detail="hpc read failed"))
            origin.publish_gap(GapMarker(time_s=2.0, pid=7, period_s=1.0,
                                         source="sensor"))
            health, gap = client.collect(2)
            assert isinstance(health, HealthTelemetry)
            assert health.event.component == "sensor"
            assert health.host == "origin-1" and health.origin_seq == 0
            assert isinstance(gap, GapTelemetry)
            assert gap.marker.pid == 7
            assert gap.host == "origin-1" and gap.origin_seq == 1
            assert gap.origin_epoch == origin.stream_epoch
        finally:
            if client is not None:
                client.close()
            if relay is not None:
                relay.stop()
            origin.stop()

    def test_heartbeats_stay_hop_local(self):
        origin = TelemetryServer(host_label="origin-1",
                                 heartbeat_every=1).start()
        relay = None
        client = None
        try:
            relay = TelemetryRelay(("127.0.0.1", origin.port)).start()
            assert origin.wait_for_subscribers(1)
            client = make_client(relay.port)
            origin.publish_report(report(time_s=1.0))
            origin.publish_report(report(time_s=2.0))
            events = client.collect(2)
            # Only the two reports cross the relay; the origin's
            # heartbeats are consumed at the uplink and never re-sent.
            assert all(isinstance(e, ReportEvent) for e in events)
            assert relay.wait_until_relayed(2)
        finally:
            if client is not None:
                client.close()
            if relay is not None:
                relay.stop()
            origin.stop()


class TestChainProperties:
    """Multi-hop resequencing over generated report streams."""

    @settings(max_examples=10, deadline=None)
    @given(reports=st.lists(aggregated_reports(), min_size=1, max_size=6),
           hops=st.integers(2, 3))
    def test_chain_preserves_identity_order_and_payload(self, reports,
                                                        hops):
        origin = TelemetryServer(host_label="origin-1",
                                 replay_window=64).start()
        chain = []
        client = None
        try:
            chain = relay_chain(("127.0.0.1", origin.port), hops=hops)
            wait_chain_connected(origin, chain)
            client = make_client(chain[-1].port)
            for item in reports:
                origin.publish_report(item)
            events = client.collect(len(reports))
            epoch = origin.stream_epoch
            # End-to-end identity: origin (host, epoch, seq), in order,
            # no duplicates, no loss — regardless of hop count.
            assert [e.identity() for e in events] == [
                ("origin-1", epoch, i) for i in range(len(reports))]
            assert [e.report.time_s for e in events] == [
                r.time_s for r in reports]
            assert [e.report.gap for e in events] == [
                r.gap for r in reports]
            assert [e.report.total_w for e in events] == pytest.approx(
                [r.total_w for r in reports])
        finally:
            if client is not None:
                client.close()
            for relay in reversed(chain):
                relay.stop()
            origin.stop()

    @settings(max_examples=10, deadline=None)
    @given(reports=st.lists(aggregated_reports(), min_size=1, max_size=6))
    def test_fleet_dedup_key_is_stable_across_hops(self, reports):
        """The same stream consumed at hop 1 and hop 2 yields identical
        identity keys, so any consumer dedups consistently no matter
        where in the tree it is attached."""
        origin = TelemetryServer(host_label="origin-1",
                                 replay_window=64).start()
        chain = []
        near = far = None
        try:
            chain = relay_chain(("127.0.0.1", origin.port), hops=2)
            wait_chain_connected(origin, chain)
            near = make_client(chain[0].port)
            far = make_client(chain[-1].port)
            for item in reports:
                origin.publish_report(item)
            near_ids = [e.identity() for e in near.collect(len(reports))]
            far_ids = [e.identity() for e in far.collect(len(reports))]
            assert near_ids == far_ids
        finally:
            for client in (near, far):
                if client is not None:
                    client.close()
            for relay in reversed(chain):
                relay.stop()
            origin.stop()


class TestRestartExactlyOnce:
    def test_midchain_restart_no_loss(self, tmp_path):
        """A relay that crashes and restarts with its spool RESUMEs
        from the origin: downstream sees every frame exactly once.

        The consumer is a :class:`HierarchicalFleetAggregator`, which
        keys samples by the origin host each frame carries — so the
        same per-host dedup state spans both relay incarnations."""
        origin = TelemetryServer(host_label="origin-1",
                                 replay_window=128).start()
        agg = HierarchicalFleetAggregator()
        down = TelemetryServer(replay_window=128).start()
        relay = None
        try:
            # Graft the relay onto a pre-started server so the
            # consumer is subscribed before the first frame crosses.
            relay = TelemetryRelay(("127.0.0.1", origin.port),
                                   spool_dir=tmp_path, server=down)
            agg.add_uplink("edge", "127.0.0.1", down.port)
            assert down.wait_for_subscribers(1)
            relay.start()
            assert origin.wait_for_subscribers(1)
            for index in range(3):
                origin.publish_report(report(time_s=float(index)))
            assert relay.wait_until_relayed(3)
            assert agg.wait_for_samples(3)

            relay.stop()  # crash the middle of the tree
            down.stop()
            for index in range(3, 6):  # published while it was down
                origin.publish_report(report(time_s=float(index)))

            down = TelemetryServer(replay_window=128).start()
            relay = TelemetryRelay(("127.0.0.1", origin.port),
                                   spool_dir=tmp_path, server=down)
            agg.add_uplink("edge", "127.0.0.1", down.port)
            assert down.wait_for_subscribers(1)
            relay.start()
            assert relay.wait_until_relayed(3)
            assert agg.wait_for(
                lambda: len(agg._streams["origin-1"].samples) == 6)
            times = [s.time_s for s in agg.host_series("origin-1")]
            assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
            assert agg.duplicate_count() == 0
            assert relay.stats()["uplinks"][0]["resumes_sent"] == 1
        finally:
            agg.close()
            if relay is not None:
                relay.stop()
            down.stop()
            origin.stop()

    def test_diamond_duplicates_collapse_by_identity(self):
        """Two parallel relay paths deliver every frame twice; the
        origin identity makes the copies collapse to exactly-once."""
        origin = TelemetryServer(host_label="origin-1",
                                 replay_window=64).start()
        left = right = join = None
        fleet = FleetAggregator()
        try:
            left = TelemetryRelay(("127.0.0.1", origin.port)).start()
            right = TelemetryRelay(("127.0.0.1", origin.port)).start()
            assert origin.wait_for_subscribers(2)
            join = TelemetryRelay([("127.0.0.1", left.port),
                                   ("127.0.0.1", right.port)]).start()
            assert left.wait_for_subscribers(1)
            assert right.wait_for_subscribers(1)
            fleet.add_host("origin-1", "127.0.0.1", join.port)
            assert join.wait_for_subscribers(1)
            for index in range(4):
                origin.publish_report(report(time_s=float(index)))
            assert join.wait_until_relayed(8)  # both copies crossed
            assert fleet.wait_for(lambda: fleet.duplicate_count() == 4)
            times = [s.time_s for s in fleet.host_series("origin-1")]
            assert times == [0.0, 1.0, 2.0, 3.0]  # merged exactly once
        finally:
            fleet.close()
            for relay in (join, left, right):
                if relay is not None:
                    relay.stop()
            origin.stop()


class TestHierarchicalFleet:
    def test_two_cluster_rollup_through_relays(self):
        east_a = TelemetryServer(host_label="east-a").start()
        east_b = TelemetryServer(host_label="east-b").start()
        west_a = TelemetryServer(host_label="west-a").start()
        east = west = None
        agg = HierarchicalFleetAggregator()
        try:
            east = TelemetryRelay([("127.0.0.1", east_a.port),
                                   ("127.0.0.1", east_b.port)]).start()
            west = TelemetryRelay(("127.0.0.1", west_a.port)).start()
            assert east_a.wait_for_subscribers(1)
            assert east_b.wait_for_subscribers(1)
            assert west_a.wait_for_subscribers(1)
            agg.add_uplink("east", "127.0.0.1", east.port)
            agg.add_uplink("west", "127.0.0.1", west.port)
            assert east.wait_for_subscribers(1)
            assert west.wait_for_subscribers(1)
            for origin, watts in ((east_a, 10.0), (east_b, 20.0),
                                  (west_a, 40.0)):
                origin.publish_report(report(time_s=1.0,
                                             by_pid={100: watts}))
            assert agg.wait_for_samples(3)

            assert agg.cluster_of("east-a") == "east"
            assert agg.cluster_of("east-b") == "east"
            assert agg.cluster_of("west-a") == "west"
            assert agg.clusters() == ("east", "west")
            assert sorted(agg.hosts_in("east")) == ["east-a", "east-b"]

            rollup = agg.cluster_rollup()
            assert set(rollup) == {"east", "west"}
            east_point = rollup["east"][0]
            assert east_point.total_w == pytest.approx(10.0 + 20.0
                                                       + 2 * 31.48)
            assert east_point.complete
            west_point = rollup["west"][0]
            assert west_point.by_host == {
                "west-a": pytest.approx(40.0 + 31.48)}

            top = agg.global_series()[0]
            assert top.total_w == pytest.approx(
                east_point.total_w + west_point.total_w)
            energy = agg.cluster_energy_by_cluster()
            assert energy["east"] == pytest.approx(east_point.total_w)
            assert energy["west"] == pytest.approx(west_point.total_w)
        finally:
            agg.close()
            for relay in (east, west):
                if relay is not None:
                    relay.stop()
            for origin in (east_a, east_b, west_a):
                origin.stop()


class TestGraftedServer:
    def test_relay_onto_existing_server_merges_streams(self):
        upstream = TelemetryServer(host_label="edge-1").start()
        local = TelemetryServer(host_label="junction").start()
        relay = None
        client = None
        try:
            relay = TelemetryRelay(("127.0.0.1", upstream.port),
                                   server=local).start()
            assert upstream.wait_for_subscribers(1)
            client = make_client(local.port)
            upstream.publish_report(report(time_s=1.0))
            assert relay.wait_until_relayed(1)
            local.publish_report(report(time_s=2.0))
            events = client.collect(2)
            hosts = {e.host for e in events}
            assert hosts == {"edge-1", "junction"}
            relayed = next(e for e in events if e.host == "edge-1")
            assert relayed.origin_epoch == upstream.stream_epoch
        finally:
            if client is not None:
                client.close()
            if relay is not None:
                relay.stop()
            local.stop()  # grafted: the relay does not own it
            upstream.stop()

    def test_stop_leaves_grafted_server_running(self):
        upstream = TelemetryServer().start()
        local = TelemetryServer().start()
        try:
            relay = TelemetryRelay(("127.0.0.1", upstream.port),
                                   server=local).start()
            relay.stop()
            assert local.port  # still listening
            client = make_client(local.port)
            local.publish_report(report(time_s=1.0))
            assert client.collect(1)
            client.close()
        finally:
            local.stop()
            upstream.stop()


class TestRelayCli:
    def test_relay_command_bridges_a_live_stream(self, tmp_path):
        import io

        from repro.cli import main
        origin = TelemetryServer(host_label="origin-1",
                                 replay_window=64).start()
        buffer = io.StringIO()
        try:
            for index in range(3):
                origin.publish_report(report(time_s=float(index)))
            # Publish-before-subscribe is fine: the relay RESUMEs are
            # not needed here, the frames land after it connects.
            ready = threading.Event()
            rc = {}

            def run():
                rc["code"] = main([
                    "relay", "--upstream", f"127.0.0.1:{origin.port}",
                    "--duration", "2.0", "--replay-window", "16",
                    "--spool", str(tmp_path / "spool")], out=buffer)
                ready.set()

            publisher = threading.Thread(target=run, daemon=True)
            publisher.start()
            assert origin.wait_for_subscribers(1, timeout=10.0)
            for index in range(3, 6):
                origin.publish_report(report(time_s=float(index)))
            assert ready.wait(timeout=15.0)
            assert rc["code"] == 0
            out = buffer.getvalue()
            assert "relay: serving on 127.0.0.1:" in out
            assert f"uplinks: 127.0.0.1:{origin.port}" in out
            assert "relayed 3 frame(s) from 1 uplink(s)" in out
        finally:
            origin.stop()

"""Unit tests for the component registry (repro.core.components)."""

import pytest

from repro.core.components import (BuildContext, ComponentRegistry, Param,
                                   default_registry)
from repro.core.formula import CpuLoadFormula, HpcFormula
from repro.core.reporters import CsvReporter, InMemoryReporter
from repro.core.sensors import HpcSensor
from repro.errors import ConfigurationError


@pytest.fixture
def registry():
    return ComponentRegistry()


class TestRegistration:
    def test_register_and_get(self, registry):
        component = registry.register("reporter", "null", lambda ctx: None,
                                      description="discards everything")
        assert registry.get("reporter", "null") is component
        assert registry.names("reporter") == ("null",)

    def test_duplicate_name_rejected(self, registry):
        registry.register("sensor", "x", lambda ctx: None)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("sensor", "x", lambda ctx: None)

    def test_replace_allows_override(self, registry):
        registry.register("sensor", "x", lambda ctx: 1)
        registry.register("sensor", "x", lambda ctx: 2, replace=True)
        assert registry.create("sensor", "x", BuildContext()) == 2

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="unknown component kind"):
            registry.register("widget", "x", lambda ctx: None)

    def test_empty_name_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.register("sensor", "", lambda ctx: None)


class TestLookupErrors:
    def test_unknown_name_lists_available(self, registry):
        registry.register("formula", "alpha", lambda ctx: None)
        registry.register("formula", "beta", lambda ctx: None)
        with pytest.raises(ConfigurationError) as excinfo:
            registry.get("formula", "gamma")
        message = str(excinfo.value)
        assert "gamma" in message
        assert "alpha" in message and "beta" in message

    def test_default_registry_error_names_builtins(self):
        with pytest.raises(ConfigurationError) as excinfo:
            default_registry().get("reporter", "no-such-reporter")
        message = str(excinfo.value)
        for name in ("console", "csv", "jsonl", "memory", "prometheus"):
            assert name in message


class TestParamValidation:
    @pytest.fixture
    def component(self, registry):
        return registry.register(
            "reporter", "fake", lambda ctx, **kwargs: kwargs,
            params=(Param("path", str, required=True),
                    Param("flush_every", int, default=1),
                    Param("ratio", float),
                    Param("events", list),
                    Param("enabled", bool)))

    def test_unknown_param_rejected(self, component):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            component.validate_params({"path": "x", "bogus": 1})

    def test_missing_required_rejected(self, component):
        with pytest.raises(ConfigurationError, match="requires parameter"):
            component.validate_params({"flush_every": 2})

    def test_type_mismatch_rejected(self, component):
        with pytest.raises(ConfigurationError, match="expected int"):
            component.validate_params({"path": "x", "flush_every": "two"})
        with pytest.raises(ConfigurationError, match="expected str"):
            component.validate_params({"path": 7})
        with pytest.raises(ConfigurationError, match="expected a list"):
            component.validate_params({"path": "x", "events": "cycles"})
        with pytest.raises(ConfigurationError, match="expected a bool"):
            component.validate_params({"path": "x", "enabled": 1})

    def test_int_promotes_to_float(self, component):
        coerced = component.validate_params({"path": "x", "ratio": 2})
        assert coerced["ratio"] == 2.0
        assert isinstance(coerced["ratio"], float)

    def test_bool_is_not_a_number(self, component):
        with pytest.raises(ConfigurationError):
            component.validate_params({"path": "x", "flush_every": True})

    def test_list_items_become_strings(self, component):
        coerced = component.validate_params(
            {"path": "x", "events": ["cycles", "instructions"]})
        assert coerced["events"] == ("cycles", "instructions")

    def test_omitted_optionals_stay_omitted(self, component):
        # Factories keep their own defaults; the registry does not
        # inject Param.default for absent keys.
        assert component.validate_params({"path": "x"}) == {"path": "x"}


class TestBuiltins:
    def test_every_figure2_stage_registered(self):
        registry = default_registry()
        assert set(registry.names("sensor")) >= {"hpc", "procfs"}
        assert set(registry.names("formula")) >= {"hpc", "cpu-load"}
        assert set(registry.names("aggregator")) >= {"timestamp", "pid"}
        assert set(registry.names("reporter")) >= {
            "memory", "console", "csv", "jsonl", "prometheus"}

    def test_describe_covers_all_kinds(self):
        rows = default_registry().describe()
        kinds = {row[0] for row in rows}
        assert kinds == {"sensor", "formula", "aggregator", "reporter",
                         "policy"}
        assert all(row[3] for row in rows), "every builtin has a description"

    def test_factories_build_real_stages(self, i3_spec):
        from repro.os.kernel import SimKernel
        from repro.core.model import published_i3_2120_model
        from repro.perf.counting import PerfSession

        kernel = SimKernel(i3_spec)
        registry = default_registry()
        context = BuildContext(
            kernel=kernel, machine=kernel.machine,
            perf=PerfSession(kernel.machine),
            model=published_i3_2120_model(),
            pids=(1,), num_cpus=4, active_range_w=30.0, index=7)
        sensor = registry.create("sensor", "hpc", context)
        assert isinstance(sensor, HpcSensor)
        assert sensor.component == "hpc-sensor-7"
        assert isinstance(registry.create("formula", "hpc", context),
                          HpcFormula)
        cpu_load = registry.create("formula", "cpu-load", context,
                                   {"active_range_w": 12.5})
        assert isinstance(cpu_load, CpuLoadFormula)
        assert cpu_load.active_range_w == 12.5
        assert isinstance(registry.create("reporter", "memory", context),
                          InMemoryReporter)
        csv = registry.create("reporter", "csv", context,
                              {"path": "/tmp/x.csv", "flush_every": 3})
        assert isinstance(csv, CsvReporter)
        assert csv.flush_every == 3

    def test_csv_requires_path(self, i3_spec):
        with pytest.raises(ConfigurationError, match="requires parameter"):
            default_registry().create("reporter", "csv", BuildContext())

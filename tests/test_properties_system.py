"""Property-based tests on system-level invariants (kernel, virt,
attribution, parsing, traces)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.traces import PowerTrace, align
from repro.os.kernel import SimKernel
from repro.os.process import Demand
from repro.os.virt import VirtualMachine, split_vm_power
from repro.perf.parsing import parse_perf_stat_csv
from repro.simcpu.attribution import attribute_power
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.pipeline import InstructionMix
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.base import ConstantWorkload, cpu_demand
from repro.workloads.specjbb import SpecJbbWorkload

SPEC = intel_i3_2120()

utilization = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestKernelProperties:
    @given(utils=st.lists(st.floats(0.05, 1.0, allow_nan=False),
                          min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_cpu_busy_never_exceeds_capacity(self, utils):
        kernel = SimKernel(SPEC, quantum_s=0.01)
        for util in utils:
            kernel.spawn(ConstantWorkload(cpu_demand(utilization=util)))
        for record in kernel.run(0.05):
            for busy in record.cpu_busy.values():
                assert 0.0 <= busy <= 1.0 + 1e-9

    @given(utils=st.lists(st.floats(0.05, 1.0, allow_nan=False),
                          min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_granted_cpu_time_bounded_by_demand(self, utils):
        kernel = SimKernel(SPEC, quantum_s=0.01)
        pids = [kernel.spawn(ConstantWorkload(cpu_demand(utilization=u)))
                for u in utils]
        kernel.run(0.1)
        for pid, util in zip(pids, utils):
            granted = kernel.process(pid).cpu_time_s
            assert granted <= util * 0.1 + 1e-6

    @given(duration=st.floats(0.02, 0.3, allow_nan=False))
    @settings(max_examples=15, deadline=None)
    def test_energy_monotone_in_time(self, duration):
        kernel = SimKernel(SPEC, quantum_s=0.01)
        kernel.spawn(ConstantWorkload(cpu_demand()))
        previous = 0.0
        steps = int(duration / 0.01)
        for _ in range(steps):
            kernel.tick()
            assert kernel.machine.energy_j > previous
            previous = kernel.machine.energy_j


class TestAttributionProperties:
    @given(busy=st.lists(st.floats(0.05, 1.0, allow_nan=False),
                         min_size=1, max_size=4),
           seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_attribution_conserves_active_power(self, busy, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(SPEC)
        machine.set_frequency(SPEC.max_frequency_hz)
        assignments = []
        for index, fraction in enumerate(busy):
            assignments.append(ThreadAssignment(
                pid=100 + index, cpu_id=index % 4, busy_fraction=fraction,
                mix=InstructionMix(fp_fraction=float(rng.uniform(0, 0.3))),
                memory=MemoryProfile(
                    mem_ops_per_instruction=float(rng.uniform(0.1, 0.4)),
                    working_set_bytes=int(rng.uniform(1e4, 1e8)),
                    locality=float(rng.uniform(0.6, 0.99)))))
        # One assignment per cpu at most (avoid oversubscription).
        seen = set()
        assignments = [a for a in assignments
                       if a.cpu_id not in seen and not seen.add(a.cpu_id)]
        record = machine.step(assignments, 0.1)
        groups = [machine.topology.core_cpus(p, c)
                  for p, c in machine.topology.cores()]
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, groups)
        active = (record.power.cores + record.power.wakeup
                  + record.power.uncore + record.power.dram)
        assert sum(shares.values()) == pytest.approx(active, rel=1e-6)
        assert all(share >= 0 for share in shares.values())


class TestVirtProperties:
    @given(guest_utils=st.lists(st.floats(0.05, 1.0, allow_nan=False),
                                min_size=1, max_size=5),
           vcpus=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_vm_demand_within_vcpu_capacity(self, guest_utils, vcpus):
        vm = VirtualMachine("vm", vcpus=vcpus, guests=[
            ConstantWorkload(cpu_demand(utilization=u))
            for u in guest_utils])
        demand = vm.demand(0.0)
        assert demand is not None
        assert demand.threads <= vcpus
        assert demand.utilization * demand.threads <= vcpus + 1e-9

    @given(guest_utils=st.lists(st.floats(0.05, 1.0, allow_nan=False),
                                min_size=1, max_size=5),
           power=st.floats(0.0, 100.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_guest_split_conserves_power(self, guest_utils, power):
        vm = VirtualMachine("vm", vcpus=4, guests=[
            ConstantWorkload(cpu_demand(utilization=u), name=f"g{i}")
            for i, u in enumerate(guest_utils)])
        vm.demand(0.0)
        shares = split_vm_power(vm, power)
        assert sum(shares.values()) == pytest.approx(power, rel=1e-9)


class TestWorkloadProperties:
    @given(seed=st.integers(0, 50), t=st.floats(0, 499, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_specjbb_demand_deterministic_and_bounded(self, seed, t):
        a = SpecJbbWorkload(duration_s=500, seed=seed)
        b = SpecJbbWorkload(duration_s=500, seed=seed)
        demand_a = a.demand(t)
        demand_b = b.demand(t)
        assert demand_a.utilization == demand_b.utilization
        assert 0.0 < demand_a.utilization <= 1.0


class TestParsingProperties:
    @given(values=st.lists(st.integers(0, 10 ** 14), min_size=1,
                           max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_csv_roundtrip_any_magnitude(self, values):
        events = ["instructions", "cycles", "cache-references",
                  "cache-misses", "branches", "branch-misses"]
        lines = [f"{value},,{event},1000,100.0,,"
                 for value, event in zip(values, events)]
        parsed = parse_perf_stat_csv("\n".join(lines))
        for value, event in zip(values, events):
            assert parsed[event] == value

    @given(garbage=st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_parser_never_crashes_on_garbage(self, garbage):
        assume("\x00" not in garbage)
        try:
            parse_perf_stat_csv(garbage)
        except Exception as error:  # noqa: BLE001
            from repro.errors import ReproError
            assert isinstance(error, ReproError)


class TestTraceProperties:
    @given(n=st.integers(2, 40), jitter=st.floats(0, 0.2, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_alignment_matches_jittered_clone(self, n, jitter):
        times = [float(i) for i in range(n)]
        powers = [30.0 + i for i in range(n)]
        reference = PowerTrace.from_series("a", times, powers)
        rng = np.random.default_rng(n)
        other_times = [t + float(rng.uniform(-jitter, jitter))
                       for t in times]
        other_times = sorted(other_times)
        other = PowerTrace.from_series("b", other_times, powers)
        matched_times, ref, oth = align(reference, other, tolerance_s=0.5)
        assert len(matched_times) == n
        assert list(ref) == pytest.approx(list(oth))

"""Unit tests for repro.os.kernel and repro.os.procfs."""

import pytest

from repro.errors import ConfigurationError, ProcessError
from repro.os.governor import OndemandGovernor, PowersaveGovernor
from repro.os.kernel import SimKernel
from repro.os.process import ProcessState
from repro.os.scheduler import PackScheduler
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.base import ConstantWorkload, cpu_demand
from repro.workloads.idle import IdleWorkload
from repro.workloads.stress import CpuStress


@pytest.fixture
def kernel(i3_spec):
    return SimKernel(i3_spec, quantum_s=0.01)


class TestSpawning:
    def test_spawn_returns_increasing_pids(self, kernel):
        pid1 = kernel.spawn(CpuStress(duration_s=1.0))
        pid2 = kernel.spawn(CpuStress(duration_s=1.0))
        assert pid2 > pid1

    def test_process_lookup(self, kernel):
        pid = kernel.spawn(CpuStress(duration_s=1.0), name="stress")
        assert kernel.process(pid).name == "stress"

    def test_unknown_pid_raises(self, kernel):
        with pytest.raises(ProcessError):
            kernel.process(1)

    def test_live_pids(self, kernel):
        pid = kernel.spawn(CpuStress(duration_s=1.0))
        assert kernel.live_pids == (pid,)

    def test_kill(self, kernel):
        pid = kernel.spawn(CpuStress(duration_s=10.0))
        kernel.kill(pid)
        assert kernel.live_pids == ()
        assert kernel.process(pid).state is ProcessState.EXITED


class TestRunning:
    def test_run_advances_time(self, kernel):
        kernel.run(0.1)
        assert kernel.time_s == pytest.approx(0.1)

    def test_rejects_negative_duration(self, kernel):
        with pytest.raises(ConfigurationError):
            kernel.run(-1.0)

    def test_rejects_bad_quantum(self, i3_spec):
        with pytest.raises(ConfigurationError):
            SimKernel(i3_spec, quantum_s=0.0)

    def test_finite_workload_exits(self, kernel):
        kernel.spawn(CpuStress(duration_s=0.05))
        kernel.run(0.1)
        assert kernel.live_pids == ()

    def test_run_until_idle_stops_at_exit(self, kernel):
        kernel.spawn(CpuStress(duration_s=0.05))
        kernel.run_until_idle(max_duration_s=10.0)
        assert kernel.time_s < 0.2

    def test_run_until_idle_bounded(self, kernel):
        kernel.spawn(ConstantWorkload(cpu_demand()))  # never exits
        kernel.run_until_idle(max_duration_s=0.05)
        assert kernel.time_s == pytest.approx(0.05, abs=0.02)

    def test_cpu_time_accounted(self, kernel):
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=1.0))
        kernel.run(0.1)
        assert kernel.process(pid).cpu_time_s == pytest.approx(0.1, rel=0.2)

    def test_partial_utilization_accounted(self, kernel):
        pid = kernel.spawn(CpuStress(utilization=0.5, duration_s=1.0))
        kernel.run(0.1)
        assert kernel.process(pid).cpu_time_s == pytest.approx(0.05, rel=0.2)


class TestGovernorIntegration:
    def test_powersave_runs_slow(self, i3_spec):
        kernel = SimKernel(i3_spec, governor_factory=PowersaveGovernor,
                           quantum_s=0.01)
        kernel.spawn(CpuStress(duration_s=1.0))
        record = kernel.run(0.05)[-1]
        assert record.core_frequencies_hz[(0, 0)] == i3_spec.min_frequency_hz

    def test_ondemand_raises_frequency_under_load(self, i3_spec):
        kernel = SimKernel(i3_spec, governor_factory=OndemandGovernor,
                           quantum_s=0.01)
        kernel.spawn(CpuStress(utilization=1.0, duration_s=2.0))
        records = kernel.run(0.05)
        assert records[-1].core_frequencies_hz[(0, 0)] == i3_spec.max_frequency_hz

    def test_pack_scheduler_consolidates(self, i3_spec):
        kernel = SimKernel(i3_spec, scheduler_factory=PackScheduler,
                           quantum_s=0.01)
        kernel.spawn(CpuStress(duration_s=1.0))
        kernel.spawn(CpuStress(duration_s=1.0))
        record = kernel.run(0.02)[-1]
        busy_cpus = {cpu for cpu, busy in record.cpu_busy.items() if busy > 0}
        assert busy_cpus == {0, 2}  # both hyperthreads of core 0


class TestProcFs:
    def test_process_cpu_time(self, kernel):
        pid = kernel.spawn(CpuStress(utilization=1.0, duration_s=1.0))
        kernel.run(0.1)
        assert kernel.procfs.process_cpu_time_s(pid) == pytest.approx(
            0.1, rel=0.15)

    def test_unknown_pid_raises(self, kernel):
        kernel.run(0.02)
        with pytest.raises(ProcessError):
            kernel.procfs.process_cpu_time_s(1)

    def test_machine_load_idle(self, kernel):
        kernel.spawn(IdleWorkload())
        kernel.run(0.1)
        assert kernel.procfs.machine_load() == pytest.approx(0.0, abs=0.01)

    def test_machine_load_one_of_four(self, kernel):
        kernel.spawn(CpuStress(utilization=1.0, duration_s=1.0))
        kernel.run(0.1)
        assert kernel.procfs.machine_load() == pytest.approx(0.25, rel=0.1)

    def test_uptime(self, kernel):
        kernel.run(0.07)
        assert kernel.procfs.uptime_s() == pytest.approx(0.07)

    def test_known_pids(self, kernel):
        pid = kernel.spawn(CpuStress(duration_s=1.0))
        kernel.run(0.05)
        assert pid in kernel.procfs.known_pids()

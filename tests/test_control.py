"""Unit and integration tests for the closed control loop.

Covers the `repro.control` subsystem bottom-up: policies (hysteresis,
anti-windup), the `repro.os.actuation` backends (DVFS ceiling, process
throttling), the PowerCapActor in the Figure-2 graph, spec/fluent/CLI
integration, reporter surfacing, and end-to-end cap adherence across
three workload scenarios.
"""

import io
import json

import pytest

from repro.control.actor import PowerCapActor
from repro.control.policy import DeadBandPolicy, PIPolicy
from repro.core.messages import AggregatedPowerReport, CapEvent, SetCap
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.pipeline import ControlSpec, PipelineSpec, StageSpec
from repro.core.reporters import (CsvReporter, InMemoryReporter,
                                  JsonlReporter, PrometheusReporter)
from repro.errors import ConfigurationError
from repro.os.actuation import (CeilingGovernor, FrequencyCapActuator,
                                ProcessThrottle)
from repro.os.governor import OndemandGovernor, PerformanceGovernor
from repro.os.kernel import SimKernel
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress

pytestmark = pytest.mark.control


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


@pytest.fixture(scope="module")
def model(spec):
    """A frequency-aware model matching the published one's shape."""
    formulas = []
    for frequency in spec.frequencies_hz:
        scale = (frequency / spec.max_frequency_hz) ** 3
        formulas.append(FrequencyFormula(frequency, {
            "instructions": 2.8e-9 * scale,
            "cache-references": 3.8e-8 * scale,
            "cache-misses": 3.5e-7 * scale,
        }))
    return PowerModel(idle_w=31.48, formulas=formulas, name="control-model")


def report(total_active, time_s=1.0, idle_w=31.48, gap=False, by_pid=None):
    return AggregatedPowerReport(
        time_s=time_s, period_s=0.5,
        by_pid=by_pid if by_pid is not None else {1: total_active},
        idle_w=idle_w, formula="f", gap=gap)


# ---------------------------------------------------------------------------
# Policies


class TestDeadBandPolicy:
    def test_overshoot_steps_down_immediately(self):
        policy = DeadBandPolicy(band_w=2.0, up_patience=2)
        assert policy.decide(0.1, 0.5) == -1

    def test_step_up_requires_patience(self):
        policy = DeadBandPolicy(band_w=2.0, up_patience=3)
        assert policy.decide(-5.0, 0.5) == 0
        assert policy.decide(-5.0, 0.5) == 0
        assert policy.decide(-5.0, 0.5) == 1

    def test_overshoot_resets_patience_streak(self):
        policy = DeadBandPolicy(band_w=2.0, up_patience=2)
        assert policy.decide(-5.0, 0.5) == 0
        assert policy.decide(1.0, 0.5) == -1
        # The streak restarted: one low reading is not enough again.
        assert policy.decide(-5.0, 0.5) == 0
        assert policy.decide(-5.0, 0.5) == 1

    def test_dead_band_holds(self):
        policy = DeadBandPolicy(band_w=2.0, up_patience=1)
        for _ in range(10):
            assert policy.decide(-1.0, 0.5) == 0

    def test_reset_clears_streak(self):
        policy = DeadBandPolicy(band_w=2.0, up_patience=2)
        policy.decide(-5.0, 0.5)
        policy.reset()
        assert policy.decide(-5.0, 0.5) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeadBandPolicy(band_w=0.0)
        with pytest.raises(ConfigurationError):
            DeadBandPolicy(up_patience=0)


class TestPIPolicy:
    def test_large_error_steps_down(self):
        policy = PIPolicy(step_w=3.0, kp=1.0, ki=0.0, band_w=1.0)
        assert policy.decide(6.0, 0.5) < 0

    def test_hysteresis_band_holds(self):
        policy = PIPolicy(step_w=3.0, kp=1.0, ki=0.0, band_w=2.0)
        assert policy.decide(1.5, 0.5) == 0
        assert policy.decide(-1.5, 0.5) == 0

    def test_max_step_clamps(self):
        policy = PIPolicy(step_w=1.0, kp=1.0, ki=0.0, band_w=0.5,
                          max_step=2)
        assert policy.decide(100.0, 0.5) == -2
        assert policy.decide(-100.0, 0.5) == 2

    def test_integral_accumulates(self):
        policy = PIPolicy(step_w=2.0, kp=0.0, ki=1.0, band_w=1.0)
        # Small persistent error: the integral eventually drives a step
        # even though kp alone never would.
        decisions = [policy.decide(1.0, 1.0) for _ in range(5)]
        assert -1 in decisions

    def test_anti_windup_bounds_integral(self):
        policy = PIPolicy(step_w=1.0, kp=0.0, ki=1.0, band_w=0.5,
                          max_step=10, windup_w=5.0)
        # Saturate hard: a huge banked integral would demand many
        # up-steps for a long time after the error flips sign.
        for _ in range(100):
            policy.decide(50.0, 1.0)
        # ki * integral is clamped at windup_w -> at most windup/step
        # steps demanded, not 5000.
        assert policy.decide(0.0, 1.0) >= -10
        # And the integral drains quickly once the error reverses.
        recovered = 0
        for _ in range(15):
            if policy.decide(-2.0, 1.0) >= 0:
                recovered += 1
        assert recovered > 0

    def test_reset_clears_integral(self):
        policy = PIPolicy(step_w=1.0, kp=0.0, ki=1.0, band_w=0.5)
        for _ in range(10):
            policy.decide(5.0, 1.0)
        policy.reset()
        assert policy.decide(0.0, 1.0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PIPolicy(step_w=0.0)
        with pytest.raises(ConfigurationError):
            PIPolicy(step_w=1.0, kp=0.0, ki=0.0)
        with pytest.raises(ConfigurationError):
            PIPolicy(step_w=1.0, max_step=0)
        with pytest.raises(ConfigurationError):
            PIPolicy(step_w=1.0, windup_w=0.0)


# ---------------------------------------------------------------------------
# Actuation backends


class TestCeilingGovernor:
    def test_clamps_above_ceiling(self, spec):
        kernel = SimKernel(spec)
        wrapper = CeilingGovernor(kernel.governor)
        wrapper.ceiling_hz = spec.frequencies_hz[2]
        kernel.governor = wrapper
        kernel.tick()
        assert kernel.machine.frequency.target(0, 0) == spec.frequencies_hz[2]

    def test_none_ceiling_is_passthrough(self, spec):
        kernel = SimKernel(spec)
        wrapper = CeilingGovernor(kernel.governor)
        kernel.governor = wrapper
        kernel.tick()
        assert kernel.machine.frequency.target(0, 0) == spec.max_frequency_hz

    def test_inner_policy_keeps_authority_below_ceiling(self, spec):
        kernel = SimKernel(spec, governor_factory=OndemandGovernor)
        wrapper = CeilingGovernor(kernel.governor)
        wrapper.ceiling_hz = spec.frequencies_hz[-2]
        kernel.governor = wrapper
        # Idle machine: ondemand wants the minimum, far below the
        # ceiling — the clamp must not touch it.
        kernel.tick()
        assert kernel.machine.frequency.target(0, 0) == spec.min_frequency_hz


class TestFrequencyCapActuator:
    def test_arm_wraps_and_release_restores(self, spec):
        kernel = SimKernel(spec)
        original = kernel.governor
        actuator = FrequencyCapActuator(kernel)
        actuator.arm()
        assert isinstance(kernel.governor, CeilingGovernor)
        assert kernel.governor.inner is original
        actuator.release()
        assert kernel.governor is original

    def test_arm_is_idempotent(self, spec):
        kernel = SimKernel(spec)
        actuator = FrequencyCapActuator(kernel)
        actuator.arm()
        wrapper = kernel.governor
        actuator.arm()
        assert kernel.governor is wrapper

    def test_second_actuator_rejected(self, spec):
        kernel = SimKernel(spec)
        FrequencyCapActuator(kernel).arm()
        with pytest.raises(ConfigurationError):
            FrequencyCapActuator(kernel).arm()

    def test_top_level_is_noop_clamp(self, spec):
        kernel = SimKernel(spec)
        actuator = FrequencyCapActuator(kernel)
        actuator.arm()
        kernel.tick()
        # Ceiling at the top of the table: the governor's choice stands.
        assert kernel.machine.frequency.target(0, 0) == spec.max_frequency_hz

    def test_step_walks_ladder_and_clamps(self, spec):
        kernel = SimKernel(spec)
        actuator = FrequencyCapActuator(kernel)
        actuator.arm()
        top = len(actuator.ladder) - 1
        assert actuator.at_ceiling
        assert actuator.step(-2) == -2
        assert actuator.level == top - 2
        assert actuator.step(-100) == -(top - 2)
        assert actuator.at_floor
        assert actuator.step(-1) == 0
        assert actuator.step(100) == top
        assert actuator.at_ceiling

    def test_step_down_caps_kernel_frequency(self, spec):
        kernel = SimKernel(spec)
        actuator = FrequencyCapActuator(kernel)
        actuator.arm()
        actuator.step(-3)
        kernel.tick()
        assert (kernel.machine.frequency.target(0, 0)
                == actuator.frequency_hz)

    def test_set_level_validates(self, spec):
        actuator = FrequencyCapActuator(SimKernel(spec))
        with pytest.raises(ConfigurationError):
            actuator.set_level(-1)
        with pytest.raises(ConfigurationError):
            actuator.set_level(len(actuator.ladder))


class TestProcessThrottle:
    def make_kernel(self, spec):
        kernel = SimKernel(spec)
        pids = [kernel.spawn(CpuStress(utilization=1.0, threads=1,
                                       duration_s=60), name=f"w{i}")
                for i in range(3)]
        return kernel, pids

    def test_throttles_hungriest(self, spec):
        kernel, pids = self.make_kernel(spec)
        throttle = ProcessThrottle(kernel, step=5)
        chosen = throttle.throttle_hungriest(
            {pids[0]: 5.0, pids[1]: 20.0, pids[2]: 10.0})
        assert chosen == pids[1]
        assert kernel.process(pids[1]).nice == 5
        assert kernel.process(pids[0]).nice == 0

    def test_lifo_unwind_restores_nice(self, spec):
        kernel, pids = self.make_kernel(spec)
        throttle = ProcessThrottle(kernel, step=5)
        throttle.throttle_hungriest({pids[0]: 20.0})
        throttle.throttle_hungriest({pids[0]: 20.0})
        assert kernel.process(pids[0]).nice == 10
        assert throttle.unthrottle_last() == pids[0]
        assert kernel.process(pids[0]).nice == 5
        assert throttle.unthrottle_last() == pids[0]
        assert kernel.process(pids[0]).nice == 0
        assert throttle.unthrottle_last() is None

    def test_restore_all(self, spec):
        kernel, pids = self.make_kernel(spec)
        throttle = ProcessThrottle(kernel, step=7)
        for _ in range(4):
            throttle.throttle_hungriest(
                {pid: 10.0 for pid in pids})
        assert throttle.restore_all() == 4
        assert all(kernel.process(pid).nice == 0 for pid in pids)
        assert throttle.depth() == 0

    def test_nice_ceiling_exhausts(self, spec):
        kernel, pids = self.make_kernel(spec)
        throttle = ProcessThrottle(kernel, step=19)
        by_pid = {pid: 10.0 for pid in pids}
        for _ in range(3):
            assert throttle.throttle_hungriest(by_pid) is not None
        # Every candidate is at nice 19 now.
        assert throttle.throttle_hungriest(by_pid) is None
        assert not throttle.can_throttle(by_pid)

    def test_dead_pids_skipped(self, spec):
        kernel, pids = self.make_kernel(spec)
        throttle = ProcessThrottle(kernel)
        kernel.kill(pids[1])
        chosen = throttle.throttle_hungriest({pids[1]: 50.0, pids[0]: 1.0})
        assert chosen == pids[0]


# ---------------------------------------------------------------------------
# The actor (driven directly, no pipeline)


class DirectCapActor(PowerCapActor):
    """PowerCapActor with bus publication stubbed for direct driving."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.published = []

    def publish(self, message):
        self.published.append(message)

    def report_health(self, time_s, kind, detail=""):
        self.published.append(("health", kind))


class TestPowerCapActor:
    def make(self, spec, cap_w=40.0, **kwargs):
        kernel = SimKernel(spec)
        self.pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                          duration_s=60), name="w")
        actor = DirectCapActor(kernel, cap_w=cap_w, **kwargs)
        actor.actuator.arm()
        return actor

    def test_over_cap_steps_down(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0)
        level = actor.actuator.level
        actor.handle(report(20.0))  # 51.48 W > 40
        assert actor.actuator.level == level - 1
        assert actor.events[-1].action == "step-down"

    def test_grace_window_skips_reports(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=2)
        actor.handle(report(20.0))
        level = actor.actuator.level
        actor.handle(report(20.0))  # grace 1
        actor.handle(report(20.0))  # grace 2
        assert actor.actuator.level == level
        actor.handle(report(20.0))  # grace over: acts again
        assert actor.actuator.level == level - 1

    def test_under_cap_steps_back_up(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0,
                          policy=DeadBandPolicy(band_w=2.0, up_patience=1))
        actor.handle(report(20.0))
        down_level = actor.actuator.level
        actor.handle(report(1.0))  # 32.48 W, far below the cap
        assert actor.actuator.level == down_level + 1
        assert actor.events[-1].action == "step-up"

    def test_throttle_at_frequency_floor(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0,
                          policy=DeadBandPolicy(band_w=2.0, up_patience=1))
        actor.actuator.set_level(0)
        actor.handle(report(20.0, by_pid={self.pid: 20.0}))
        assert actor.events[-1].action == "throttle"
        assert actor.throttle.depth() == 1

    def test_unthrottle_before_step_up(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0,
                          policy=DeadBandPolicy(band_w=2.0, up_patience=1))
        actor.actuator.set_level(0)
        actor.handle(report(20.0, by_pid={self.pid: 20.0}))  # throttle
        actor.handle(report(1.0))   # low: unwind throttle first
        assert actor.events[-1].action == "unthrottle"
        assert actor.throttle.depth() == 0
        actor.handle(report(1.0))   # next: frequency back up
        assert actor.events[-1].action == "step-up"

    def test_throttle_disabled(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0,
                          throttle=False)
        actor.actuator.set_level(0)
        actor.handle(report(20.0))
        assert actor.throttle.depth() == 0
        assert actor.events[-1].action == "unattainable"

    def test_cap_below_idle_floor_is_unattainable_once(self, spec):
        actor = self.make(spec, cap_w=10.0)
        actor.handle(report(5.0, idle_w=31.48))
        actor.handle(report(5.0, idle_w=31.48))
        unattainable = [e for e in actor.events
                        if e.action == "unattainable"]
        assert len(unattainable) == 1
        assert "idle floor" in unattainable[0].detail

    def test_set_cap_rearms_unattainable(self, spec):
        actor = self.make(spec, cap_w=10.0)
        actor.handle(report(5.0))
        actor.handle(SetCap(cap_w=60.0))
        actor.handle(SetCap(cap_w=10.0))
        actor.handle(report(5.0))
        unattainable = [e for e in actor.events
                        if e.action == "unattainable"]
        assert len(unattainable) == 2

    def test_remove_cap_unwinds_actuation(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0)
        actor.actuator.set_level(0)
        actor.handle(report(20.0))  # throttle at floor
        actor.handle(SetCap(cap_w=None))
        assert not actor.actuator.armed
        assert actor.throttle.depth() == 0
        assert actor.events[-1].action == "cap-removed"
        # Without a cap, reports are ignored.
        actor.handle(report(50.0))
        assert actor.events[-1].action == "cap-removed"

    def test_gap_reports_freeze_loop(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0)
        level = actor.actuator.level
        actor.handle(report(0.0, gap=True, by_pid={}))
        assert actor.actuator.level == level
        assert actor.events == []

    def test_events_mirror_to_health(self, spec):
        actor = self.make(spec, cap_w=40.0, grace_periods=0)
        actor.handle(report(20.0))
        kinds = [entry[1] for entry in actor.published
                 if isinstance(entry, tuple) and entry[0] == "health"]
        assert "cap-step-down" in kinds

    def test_rejects_bad_construction(self, spec):
        kernel = SimKernel(spec)
        with pytest.raises(ConfigurationError):
            PowerCapActor(kernel, cap_w=-1.0)
        with pytest.raises(ConfigurationError):
            PowerCapActor(kernel, cap_w=40.0, grace_periods=-1)


# ---------------------------------------------------------------------------
# Spec / fluent / registry integration


class TestControlSpec:
    def test_round_trips_through_json(self):
        spec = PipelineSpec(
            pids=(1,), reporters=(StageSpec("memory"),),
            control=ControlSpec(cap_w=42.0,
                                policy=StageSpec("pi", {"kp": 0.5}),
                                grace_periods=2, throttle=False))
        again = PipelineSpec.from_json(spec.to_json())
        assert again == spec
        assert again.control.policy.params["kp"] == 0.5

    def test_round_trips_through_toml(self):
        spec = PipelineSpec(
            pids=(1,), reporters=(StageSpec("memory"),),
            control=ControlSpec(cap_w=42.0))
        assert PipelineSpec.from_toml(spec.to_toml()) == spec

    def test_no_control_section_omitted(self):
        spec = PipelineSpec(pids=(1,), reporters=(StageSpec("memory"),))
        assert "control" not in spec.to_dict()

    def test_unknown_control_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown control"):
            ControlSpec.from_dict({"cap_w": 40.0, "bogus": 1})

    def test_missing_cap_rejected(self):
        with pytest.raises(ConfigurationError, match="cap_w"):
            ControlSpec.from_dict({"grace_periods": 1})

    def test_validate_rejects_unknown_policy(self):
        spec = PipelineSpec(
            pids=(1,), reporters=(StageSpec("memory"),),
            control=ControlSpec(cap_w=40.0,
                                policy=StageSpec("fuzzy-logic")))
        with pytest.raises(ConfigurationError, match="unknown policy"):
            spec.validate()

    def test_validate_rejects_bad_policy_params(self):
        spec = PipelineSpec(
            pids=(1,), reporters=(StageSpec("memory"),),
            control=ControlSpec(cap_w=40.0,
                                policy=StageSpec("deadband",
                                                 {"bogus": True})))
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            spec.validate()

    def test_fluent_cap_matches_config_spec(self, spec, model):
        kernel = SimKernel(spec)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=1,
                                     duration_s=5), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        fluent = (api.monitor(pid).every(0.5)
                  .cap(40.0, policy="pi", grace_periods=2, kp=0.5)
                  .spec())
        config = PipelineSpec.from_dict({
            "pids": [pid], "period_s": 0.5,
            "control": {"cap_w": 40.0,
                        "policy": {"type": "pi", "kp": 0.5},
                        "grace_periods": 2}})
        assert fluent.control == config.control
        api.shutdown()


# ---------------------------------------------------------------------------
# End-to-end: the actor in the pipeline, three scenarios


def run_capped(spec, model, workload, cap_w, duration_s=25.0,
               policy="deadband", **cap_kwargs):
    kernel = SimKernel(spec, quantum_s=0.02)
    pid = kernel.spawn(workload, name="workload")
    api = PowerAPI(kernel, model, period_s=0.5)
    memory = InMemoryReporter()
    handle = (api.monitor(pid).every(0.5)
              .cap(cap_w, policy=policy, **cap_kwargs).to(memory))
    api.run(duration_s)
    api.shutdown()
    return handle, memory


SCENARIOS = [
    ("cpu", lambda: CpuStress(utilization=1.0, threads=4, duration_s=60)),
    ("memory", lambda: MemoryStress(utilization=1.0, threads=4,
                                    duration_s=60)),
    ("mixed", lambda: MixedStress(utilization=1.0, threads=4,
                                  duration_s=60)),
]


class TestEndToEndAdherence:
    @pytest.mark.parametrize("name,factory", SCENARIOS,
                             ids=[s[0] for s in SCENARIOS])
    def test_holds_cap_within_5_percent(self, spec, model, name, factory):
        cap = 40.0
        handle, memory = run_capped(spec, model, factory(), cap)
        totals = memory.total_series()
        assert len(totals) >= 40
        # The cap must actually bind: the loop had to act.
        assert any(e.action == "step-down"
                   for e in handle.control.events), name
        steady = totals[int(len(totals) * 0.6):]
        mean = sum(steady) / len(steady)
        assert mean <= cap * 1.05, (name, mean)
        adherence = sum(1 for t in steady if t <= cap * 1.05) / len(steady)
        assert adherence >= 0.9, (name, adherence)

    def test_pi_policy_holds_cap(self, spec, model):
        cap = 40.0
        handle, memory = run_capped(
            spec, model, CpuStress(utilization=1.0, threads=4,
                                   duration_s=60), cap, policy="pi")
        steady = memory.total_series()[30:]
        mean = sum(steady) / len(steady)
        assert mean <= cap * 1.05
        assert any(e.action == "step-down" for e in handle.control.events)

    def test_unconstrained_cap_never_actuates(self, spec, model):
        handle, memory = run_capped(
            spec, model, CpuStress(utilization=1.0, threads=4,
                                   duration_s=60), 500.0, duration_s=10.0)
        assert handle.control.events == []
        assert memory.cap_events == []

    def test_mid_run_set_cap(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                     duration_s=60), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        memory = InMemoryReporter()
        handle = api.monitor(pid).every(0.5).cap(500.0).to(memory)
        api.run(5.0)
        assert handle.control.events == []
        handle.set_cap(40.0)
        api.run(15.0)
        api.shutdown()
        assert any(e.action == "cap-set" for e in handle.control.events)
        steady = memory.total_series()[-10:]
        assert sum(steady) / len(steady) <= 40.0 * 1.05

    def test_stop_restores_governor(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        original = kernel.governor
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                     duration_s=60), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = (api.monitor(pid).every(0.5).cap(40.0)
                  .to(InMemoryReporter()))
        api.run(5.0)
        assert kernel.governor is not original
        handle.stop()
        api.system.dispatch()
        assert kernel.governor is original
        api.shutdown()

    def test_set_cap_without_control_raises(self, spec, model):
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=1,
                                     duration_s=5), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        handle = api.monitor(pid).every(0.5).to(InMemoryReporter())
        with pytest.raises(ConfigurationError, match="no control loop"):
            handle.set_cap(40.0)
        api.shutdown()


# ---------------------------------------------------------------------------
# Reporter surfacing


class TestReporterSurfacing:
    def test_memory_reporter_collects_cap_events(self, spec, model):
        handle, memory = run_capped(
            spec, model, CpuStress(utilization=1.0, threads=4,
                                   duration_s=60), 40.0, duration_s=10.0)
        assert memory.cap_events
        assert memory.cap_events[0].action == "step-down"
        assert memory.cap_events == handle.control.events

    def test_csv_control_columns(self, spec, model, tmp_path):
        path = tmp_path / "capped.csv"
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                     duration_s=60), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        builder = api.monitor(pid).every(0.5).cap(40.0)
        handle = builder.to("csv", path=str(path), control=True)
        api.run(10.0)
        api.shutdown()
        lines = path.read_text().strip().splitlines()
        assert lines[0].endswith("gap,cap_w,cap_hz")
        last = lines[-1].split(",")
        assert last[-2] == "40.0000"
        assert int(last[-1]) < spec.max_frequency_hz

    def test_csv_without_control_keeps_historical_header(self, tmp_path):
        reporter = CsvReporter(tmp_path / "plain.csv", pids=[7])
        reporter.on_start()
        reporter.on_stop()
        header = (tmp_path / "plain.csv").read_text().strip()
        assert header == "time_s,total_w,idle_w,pid_7_w,gap"

    def test_jsonl_control_records(self, spec, model, tmp_path):
        path = tmp_path / "capped.jsonl"
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                     duration_s=60), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(pid).every(0.5).cap(40.0).to(
            "jsonl", path=str(path), control=True)
        api.run(10.0)
        api.shutdown()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        cap_events = [r for r in records if "cap_event" in r]
        reports = [r for r in records if "control" in r]
        assert cap_events and reports
        assert cap_events[0]["cap_event"]["action"] == "step-down"
        assert reports[-1]["control"]["cap_w"] == 40.0

    def test_prometheus_cap_gauges(self, spec, model, tmp_path):
        path = tmp_path / "metrics.prom"
        kernel = SimKernel(spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                     duration_s=60), name="w")
        api = PowerAPI(kernel, model, period_s=0.5)
        api.monitor(pid).every(0.5).cap(40.0).to(
            "prometheus", path=str(path))
        api.run(10.0)
        api.shutdown()
        text = path.read_text()
        assert "powerapi_cap_watts 40.0000" in text
        assert "powerapi_cap_hertz" in text

    def test_prometheus_without_cap_unchanged(self, tmp_path):
        path = tmp_path / "plain.prom"
        reporter = PrometheusReporter(path)
        reporter.handle(report(5.0))
        assert "powerapi_cap" not in path.read_text()

    def test_cap_health_events_reach_health_log(self, spec, model):
        handle, _memory = run_capped(
            spec, model, CpuStress(utilization=1.0, threads=4,
                                   duration_s=60), 40.0, duration_s=10.0)
        kinds = {event.kind for event in handle.health}
        assert "cap-step-down" in kinds


# ---------------------------------------------------------------------------
# CapEvent wire form


class TestCapEventWire:
    def test_round_trip(self):
        event = CapEvent(time_s=2.5, action="throttle", cap_w=40.0,
                         estimate_w=45.2, frequency_hz=1600000000,
                         level=0, pid=1003, detail="nice 5")
        assert CapEvent.from_wire(event.to_wire()) == event

    def test_round_trip_no_cap(self):
        event = CapEvent(time_s=2.5, action="cap-removed", cap_w=None,
                         estimate_w=0.0, frequency_hz=3300000000, level=9)
        again = CapEvent.from_wire(json.loads(json.dumps(event.to_wire())))
        assert again == event

    def test_set_cap_validates(self):
        with pytest.raises(ConfigurationError):
            SetCap(cap_w=0.0)
        assert SetCap(cap_w=None).cap_w is None


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        from repro.cli import main
        path = tmp_path_factory.mktemp("control-cli") / "model.json"
        out = io.StringIO()
        main(["learn", "--quick", "--output", str(path)], out=out)
        return path

    def run_cli(self, argv):
        from repro.cli import main
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_monitor_with_cap(self, model_path):
        code, output = self.run_cli(
            ["monitor", "--model", str(model_path), "--workload", "cpu",
             "--duration", "8", "--period", "0.5", "--cap", "40"])
        assert code == 0
        assert "power cap: 40.0 W (deadband policy)" in output
        assert "cap actuations:" in output
        assert "step-down" in output

    def test_monitor_with_pi_policy(self, model_path):
        code, output = self.run_cli(
            ["monitor", "--model", str(model_path), "--workload", "cpu",
             "--duration", "6", "--period", "0.5", "--cap", "40",
             "--cap-policy", "pi"])
        assert code == 0
        assert "pi policy" in output

    def test_monitor_without_cap_prints_nothing_about_caps(self,
                                                           model_path):
        code, output = self.run_cli(
            ["monitor", "--model", str(model_path), "--workload", "cpu",
             "--duration", "3"])
        assert code == 0
        assert "cap actuations" not in output

"""Unit tests for the power-model registry."""

import dataclasses

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.registry import ModelRegistry, machine_signature
from repro.errors import ConfigurationError, ModelError
from repro.simcpu.spec import intel_core2duo_e6600, intel_i3_2120
from repro.units import ghz


@pytest.fixture
def model():
    return PowerModel(idle_w=31.48, formulas=[
        FrequencyFormula(ghz(3.3), {"instructions": 2.22e-9})],
        name="registry-test")


class TestSignature:
    def test_stable_across_instances(self):
        assert machine_signature(intel_i3_2120()) == machine_signature(
            intel_i3_2120())

    def test_different_machines_differ(self):
        assert machine_signature(intel_i3_2120()) != machine_signature(
            intel_core2duo_e6600())

    def test_frequency_ladder_part_of_identity(self):
        spec = intel_i3_2120()
        clipped = dataclasses.replace(
            spec, frequencies_hz=spec.frequencies_hz[:-1])
        assert machine_signature(spec) != machine_signature(clipped)

    def test_signature_is_filesystem_safe(self):
        signature = machine_signature(intel_i3_2120())
        assert "/" not in signature
        assert " " not in signature


class TestRegistry:
    def test_save_then_load(self, tmp_path, model):
        registry = ModelRegistry(tmp_path)
        spec = intel_i3_2120()
        registry.save(spec, model)
        loaded = registry.load(spec)
        assert loaded is not None
        assert loaded.name == "registry-test"
        assert loaded.idle_w == pytest.approx(31.48)

    def test_load_missing_returns_none(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.load(intel_i3_2120()) is None

    def test_models_keyed_per_machine(self, tmp_path, model):
        registry = ModelRegistry(tmp_path)
        registry.save(intel_i3_2120(), model)
        assert registry.load(intel_core2duo_e6600()) is None

    def test_entries_listed(self, tmp_path, model):
        registry = ModelRegistry(tmp_path)
        registry.save(intel_i3_2120(), model)
        registry.save(intel_core2duo_e6600(), model)
        assert len(registry.entries()) == 2

    def test_delete(self, tmp_path, model):
        registry = ModelRegistry(tmp_path)
        spec = intel_i3_2120()
        registry.save(spec, model)
        assert registry.delete(spec)
        assert not registry.delete(spec)
        assert registry.load(spec) is None

    def test_corrupt_model_raises(self, tmp_path, model):
        registry = ModelRegistry(tmp_path)
        spec = intel_i3_2120()
        key = registry.save(spec, model)
        (tmp_path / f"{key}.json").write_text("{broken")
        with pytest.raises(ModelError):
            registry.load(spec)

    def test_load_or_learn_uses_cache(self, tmp_path, model):
        registry = ModelRegistry(tmp_path)
        spec = intel_i3_2120()
        calls = []

        def learner(the_spec):
            calls.append(the_spec)
            return model

        first = registry.load_or_learn(spec, learner=learner)
        second = registry.load_or_learn(spec, learner=learner)
        assert len(calls) == 1
        assert first.name == second.name

    def test_creates_root_directory(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "nested" / "models")
        registry.save(intel_i3_2120(), model)
        assert registry.entries()


class TestPathHardening:
    """_path must confine every signature to the registry root."""

    @pytest.mark.parametrize("signature", [
        "",
        "/etc/passwd",
        "models/extra",
        "..",
        "../outside",
        "a/../../outside",
        "..\\outside",
        "windows\\path",
        ".",
        "trailing..",
        "mid..dle",
    ])
    def test_traversal_attempts_rejected(self, tmp_path, signature):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ConfigurationError, match="invalid signature"):
            registry._path(signature)

    def test_real_signatures_still_accepted(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        signature = machine_signature(intel_i3_2120())
        path = registry._path(signature)
        assert path.parent == tmp_path
        assert path.name == f"{signature}.json"

    def test_dotted_but_safe_names_accepted(self, tmp_path):
        # Single dots are legitimate (e.g. model numbers like "e5-2.4").
        registry = ModelRegistry(tmp_path)
        assert registry._path("intel-e5-2.4-abc123").parent == tmp_path

"""Unit tests for the baseline models and the evaluation harness."""

import pytest

from repro.baselines.bertran import (BERTRAN_EVENTS, bertran_campaign,
                                     learn_bertran_model)
from repro.baselines.cpuload import CPU_LOAD_EVENTS, learn_cpu_load_model
from repro.baselines.evaluation import (SMT_OVERLAP, run_windows,
                                        score_model, smt_overlap_rate)
from repro.baselines.happy import learn_happy_model
from repro.baselines.raplmodel import (RaplEstimator,
                                       calibrate_rest_of_system)
from repro.core.sampling import SamplingCampaign
from repro.errors import ConfigurationError, PowerMeterError
from repro.os.kernel import SimKernel
from repro.simcpu.counters import CYCLES
from repro.simcpu.spec import intel_core2duo_e6600, intel_i3_2120
from repro.workloads.stress import CpuStress, MemoryStress


@pytest.fixture(scope="module")
def spec():
    return intel_i3_2120()


class TestRunWindows:
    def test_collects_one_window_per_second(self, spec):
        windows = run_windows(spec, [CpuStress(duration_s=100)],
                              frequency_hz=spec.max_frequency_hz,
                              duration_s=5.0, window_s=1.0, quantum_s=0.05)
        assert len(windows) == 5

    def test_features_are_rates(self, spec):
        windows = run_windows(spec, [CpuStress(duration_s=100)],
                              frequency_hz=spec.max_frequency_hz,
                              duration_s=3.0, quantum_s=0.05)
        for window in windows:
            assert window.features["instructions"] > 1e8

    def test_frequency_recorded(self, spec):
        windows = run_windows(spec, [CpuStress(duration_s=100)],
                              frequency_hz=spec.min_frequency_hz,
                              duration_s=2.0, quantum_s=0.05)
        assert all(w.frequency_hz == spec.min_frequency_hz for w in windows)

    def test_smt_overlap_feature(self, spec):
        colocated = run_windows(
            spec, [CpuStress(duration_s=100), CpuStress(duration_s=100)],
            frequency_hz=spec.max_frequency_hz, duration_s=2.0,
            quantum_s=0.05, with_smt_overlap=True, pin_each_to_core=False)
        assert all(SMT_OVERLAP in w.features for w in colocated)

    def test_pinning_creates_overlap(self, spec):
        pinned = run_windows(
            spec, [CpuStress(duration_s=100), CpuStress(duration_s=100)],
            frequency_hz=spec.max_frequency_hz, duration_s=2.0,
            quantum_s=0.05, with_smt_overlap=True, pin_each_to_core=True)
        # Both pinned to core 0's hyperthreads -> overlap cycles near the
        # full clock rate.
        assert pinned[-1].features[SMT_OVERLAP] > 0.5 * spec.max_frequency_hz

    def test_spread_has_no_overlap(self, spec):
        spread = run_windows(
            spec, [CpuStress(duration_s=100)],
            frequency_hz=spec.max_frequency_hz, duration_s=2.0,
            quantum_s=0.05, with_smt_overlap=True)
        assert spread[-1].features[SMT_OVERLAP] == pytest.approx(0.0)

    def test_rejects_bad_duration(self, spec):
        with pytest.raises(ConfigurationError):
            run_windows(spec, [CpuStress()], duration_s=0.0)

    def test_score_model_requires_windows(self, spec):
        from repro.core.model import FrequencyFormula, PowerModel
        model = PowerModel(30.0, [FrequencyFormula(1, {"instructions": 1.0})])
        with pytest.raises(ConfigurationError):
            score_model(model, [])


class TestSmtOverlapRate:
    def test_min_of_siblings(self):
        rate = smt_overlap_rate({0: 10.0, 2: 6.0}, [(0, 2)], window_s=2.0)
        assert rate == pytest.approx(3.0)

    def test_single_thread_core_contributes_nothing(self):
        rate = smt_overlap_rate({0: 10.0}, [(0,)], window_s=1.0)
        assert rate == 0.0


class TestCpuLoadBaseline:
    def test_model_uses_only_cycles(self, spec):
        campaign = SamplingCampaign(
            spec, events=CPU_LOAD_EVENTS,
            workloads=[CpuStress(utilization=u, threads=4)
                       for u in (0.25, 0.5, 1.0)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=3, settle_s=0.2, quantum_s=0.05)
        report = learn_cpu_load_model(spec, campaign=campaign,
                                      idle_duration_s=3.0)
        assert report.model.events == (CYCLES,)

    def test_load_model_tracks_utilization(self, spec):
        campaign = SamplingCampaign(
            spec, events=CPU_LOAD_EVENTS,
            workloads=[CpuStress(utilization=u, threads=4)
                       for u in (0.25, 0.5, 1.0)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=3, settle_s=0.2, quantum_s=0.05)
        report = learn_cpu_load_model(spec, campaign=campaign,
                                      idle_duration_s=3.0)
        low = report.model.predict_total(spec.max_frequency_hz,
                                         {CYCLES: 1e9})
        high = report.model.predict_total(spec.max_frequency_hz,
                                          {CYCLES: 1e10})
        assert high > low > report.model.idle_w


class TestBertranBaseline:
    def test_event_set_is_decomposable(self):
        assert len(BERTRAN_EVENTS) >= 6

    def test_campaign_uses_steady_state_settle(self, spec):
        campaign = bertran_campaign(spec)
        assert campaign.settle_s >= 60.0

    def test_learns_on_simple_architecture(self):
        spec = intel_core2duo_e6600()
        campaign = SamplingCampaign(
            spec, events=BERTRAN_EVENTS,
            workloads=[CpuStress(utilization=1.0, threads=2),
                       MemoryStress(utilization=1.0, threads=2),
                       CpuStress(utilization=0.5, threads=1),
                       MemoryStress(utilization=0.5, threads=1,
                                    working_set_bytes=2 * 1024 ** 2)],
            frequencies_hz=[spec.max_frequency_hz],
            window_s=0.5, windows_per_run=4, settle_s=1.0, quantum_s=0.05)
        report = learn_bertran_model(spec, campaign=campaign,
                                     idle_duration_s=3.0)
        assert set(report.model.events) == set(BERTRAN_EVENTS)


class TestHappyBaseline:
    def test_rejects_non_smt_spec(self):
        with pytest.raises(ConfigurationError):
            learn_happy_model(intel_core2duo_e6600())

    def test_learns_negative_overlap_weight(self, spec):
        report = learn_happy_model(
            spec, frequencies_hz=[spec.max_frequency_hz],
            duration_per_run_s=3.0, settle_s=0.5, window_s=0.5,
            quantum_s=0.05, idle_duration_s=3.0)
        formula = report.model.formula(spec.max_frequency_hz)
        assert formula.coefficients[SMT_OVERLAP] < 0.0

    def test_model_includes_overlap_event(self, spec):
        report = learn_happy_model(
            spec, frequencies_hz=[spec.max_frequency_hz],
            duration_per_run_s=3.0, settle_s=0.5, window_s=0.5,
            quantum_s=0.05, idle_duration_s=3.0)
        assert SMT_OVERLAP in report.model.events


class TestRaplBaseline:
    def test_rejects_amd(self):
        import dataclasses
        spec = dataclasses.replace(intel_i3_2120(), vendor="AMD")
        kernel = SimKernel(spec, quantum_s=0.05)
        with pytest.raises(PowerMeterError):
            RaplEstimator(kernel.machine, rest_of_system_w=30.0)

    def test_rest_of_system_calibration(self, spec):
        rest = calibrate_rest_of_system(spec, duration_s=5.0)
        # Nearly all idle power is outside the package.
        assert 25.0 < rest < 33.0

    def test_estimates_track_wall_power(self, spec):
        kernel = SimKernel(spec, quantum_s=0.05)
        rest = 31.0
        estimator = RaplEstimator(kernel.machine, rest_of_system_w=rest)
        kernel.spawn(CpuStress(duration_s=100, threads=4))
        kernel.run(5.0)
        estimate = estimator.estimate_w()
        truth = kernel.machine.last_record.wall_power_w
        assert estimate == pytest.approx(truth, rel=0.1)

"""Unit tests for the perf layer: events, pfm resolution, counting."""

import pytest

from repro.errors import (ConfigurationError, CounterStateError,
                          UnknownEventError)
from repro.perf.counting import PerfSession
from repro.perf.events import (EventType, all_events, available_on,
                               event_def, portable_events)
from repro.perf.multiplex import MultiplexScheduler
from repro.perf.pfm import resolve, resolve_many
from repro.simcpu import counters as ev
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.pipeline import InstructionMix
from repro.simcpu.spec import intel_i3_2120


class TestEventDefs:
    def test_known_event(self):
        definition = event_def(ev.INSTRUCTIONS)
        assert definition.perf_constant == "PERF_COUNT_HW_INSTRUCTIONS"
        assert definition.type is EventType.HARDWARE

    def test_unknown_event_raises(self):
        with pytest.raises(UnknownEventError):
            event_def("flux-capacitor-cycles")

    def test_portable_events_exclude_intel_only(self):
        portable = portable_events()
        assert ev.REF_CYCLES not in portable
        assert ev.BUS_CYCLES not in portable
        assert ev.INSTRUCTIONS in portable

    def test_generic_trio_is_portable(self):
        portable = set(portable_events())
        assert {ev.INSTRUCTIONS, ev.CACHE_REFERENCES,
                ev.CACHE_MISSES} <= portable

    def test_available_on_amd(self):
        amd = available_on("amd")
        assert ev.REF_CYCLES not in amd
        assert ev.INSTRUCTIONS in amd

    def test_all_events_covers_simulated_pmu(self):
        assert set(all_events()) == set(ev.ALL_EVENTS)


class TestPfmResolution:
    def test_canonical_passthrough(self):
        assert resolve("instructions") == ev.INSTRUCTIONS

    def test_case_and_separator_insensitive(self):
        assert resolve("Cache_Misses") == ev.CACHE_MISSES
        assert resolve("CACHE-REFERENCES") == ev.CACHE_REFERENCES

    def test_perf_constant(self):
        assert resolve("PERF_COUNT_HW_INSTRUCTIONS") == ev.INSTRUCTIONS

    def test_intel_mnemonic(self):
        assert resolve("INST_RETIRED:ANY_P") == ev.INSTRUCTIONS
        assert resolve("LONGEST_LAT_CACHE.MISS") == ev.CACHE_MISSES

    def test_amd_mnemonic(self):
        assert resolve("RETIRED_INSTRUCTIONS") == ev.INSTRUCTIONS

    def test_unknown_raises(self):
        with pytest.raises(UnknownEventError):
            resolve("NOT_A_COUNTER")

    def test_resolve_many_dedupes(self):
        names = ["instructions", "INST_RETIRED:ANY_P", "cache-misses"]
        assert resolve_many(names) == (ev.INSTRUCTIONS, ev.CACHE_MISSES)


def busy_assignment(pid=100, cpu=0):
    return ThreadAssignment(
        pid=pid, cpu_id=cpu, busy_fraction=1.0,
        mix=InstructionMix(),
        memory=MemoryProfile(working_set_bytes=8192, locality=0.99,
                             mem_ops_per_instruction=0.2))


class TestPerfCounter:
    @pytest.fixture
    def machine(self):
        machine = Machine(intel_i3_2120())
        machine.set_frequency(machine.spec.max_frequency_hz)
        return machine

    def test_counts_matching_pid(self, machine):
        session = PerfSession(machine)
        counter = session.open("instructions", pid=100)
        machine.run([busy_assignment(pid=100)], 0.1, dt_s=0.01)
        assert counter.read().raw > 0

    def test_ignores_other_pid(self, machine):
        session = PerfSession(machine)
        counter = session.open("instructions", pid=999)
        machine.run([busy_assignment(pid=100)], 0.1, dt_s=0.01)
        assert counter.read().raw == 0

    def test_cpu_filter(self, machine):
        session = PerfSession(machine)
        cpu0 = session.open("instructions", cpu=0)
        cpu1 = session.open("instructions", cpu=1)
        machine.run([busy_assignment(cpu=0)], 0.1, dt_s=0.01)
        assert cpu0.read().raw > 0
        assert cpu1.read().raw == 0

    def test_disabled_counter_freezes(self, machine):
        session = PerfSession(machine)
        counter = session.open("instructions")
        machine.run([busy_assignment()], 0.05, dt_s=0.01)
        frozen = counter.read().raw
        counter.disable()
        machine.run([busy_assignment()], 0.05, dt_s=0.01)
        assert counter.read().raw == frozen

    def test_reset(self, machine):
        session = PerfSession(machine)
        counter = session.open("instructions")
        machine.run([busy_assignment()], 0.05, dt_s=0.01)
        counter.reset()
        value = counter.read()
        assert value.raw == 0
        assert value.time_enabled_s == 0

    def test_closed_counter_raises(self, machine):
        session = PerfSession(machine)
        counter = session.open("instructions")
        counter.close()
        with pytest.raises(CounterStateError):
            counter.read()

    def test_open_resolves_aliases(self, machine):
        session = PerfSession(machine)
        counter = session.open("INST_RETIRED:ANY_P")
        assert counter.event == ev.INSTRUCTIONS

    def test_session_context_manager(self, machine):
        with PerfSession(machine) as session:
            counter = session.open("cycles")
            machine.run([busy_assignment()], 0.02, dt_s=0.01)
            assert counter.read().raw > 0
        # Session closed: machine no longer notifies it.
        assert counter.closed


class TestMultiplexing:
    @pytest.fixture
    def machine(self):
        machine = Machine(intel_i3_2120())  # 4 counter slots
        machine.set_frequency(machine.spec.max_frequency_hz)
        return machine

    def test_within_slots_no_scaling(self, machine):
        session = PerfSession(machine)
        counters = session.open_group(["instructions", "cycles",
                                       "cache-references"])
        machine.run([busy_assignment()], 0.1, dt_s=0.01)
        for counter in counters:
            value = counter.read()
            assert not value.multiplexed
            assert value.scaled == pytest.approx(value.raw)

    def test_oversubscription_multiplexes(self, machine):
        session = PerfSession(machine)
        events = ["instructions", "cycles", "cache-references",
                  "cache-misses", "branches", "branch-misses"]
        counters = session.open_group(events)
        machine.run([busy_assignment()], 1.0, dt_s=0.01)
        assert any(counter.read().multiplexed for counter in counters)

    def test_scaling_approximates_truth(self, machine):
        session = PerfSession(machine)
        events = ["instructions", "cycles", "cache-references",
                  "cache-misses", "branches", "branch-misses"]
        counters = session.open_group(events)
        machine.run([busy_assignment()], 1.0, dt_s=0.01)
        instructions = next(c for c in counters if c.event == ev.INSTRUCTIONS)
        truth = machine.counters.read(ev.INSTRUCTIONS)
        assert instructions.read().scaled == pytest.approx(truth, rel=0.15)

    def test_separate_targets_do_not_contend(self, machine):
        session = PerfSession(machine)
        counters = [session.open("instructions", pid=pid)
                    for pid in range(100, 110)]
        machine.run([busy_assignment(pid=100)], 0.1, dt_s=0.01)
        assert not counters[0].read().multiplexed

    def test_scheduler_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            MultiplexScheduler(slots=0)

    def test_pressure_metric(self):
        scheduler = MultiplexScheduler(slots=2)

        class FakeCounter:
            def __init__(self, cid):
                self.counter_id = cid
                self.pid = -1
                self.cpu = -1
        counters = [FakeCounter(i) for i in range(6)]
        assert scheduler.pressure(counters) == pytest.approx(3.0)
        assert scheduler.pressure([]) == 0.0

    def test_rotation_covers_all_counters(self):
        scheduler = MultiplexScheduler(slots=1)

        class FakeCounter:
            def __init__(self, cid):
                self.counter_id = cid
                self.pid = -1
                self.cpu = -1
        counters = [FakeCounter(i) for i in range(3)]
        seen = set()
        for _ in range(3):
            seen |= scheduler.schedule(counters)
        assert seen == {0, 1, 2}

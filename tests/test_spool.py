"""Durable spool tests: CRC-checked records, torn-tail recovery at any
byte offset, and epoch-aware resume-state reconstruction.

The central property (pinned by ``test_truncation_at_every_byte_offset``)
is the crash-safety contract: truncating the journal at *any* byte
offset yields a file that re-opens cleanly and recovers exactly the
records that were completely written before the cut.
"""

import pytest
from hypothesis import given

from repro.errors import SpoolError
from repro.telemetry import wire
from repro.telemetry.spool import (MAGIC, MAX_RECORD_BYTES,
                                   RECORD_HEADER_SIZE, Spool)
from repro.telemetry.wire import FrameKind
from tests.strategies import (default_settings, spool_payload_lists,
                              torn_journals)

pytestmark = [pytest.mark.telemetry, pytest.mark.chaos]


class TestRoundTrip:

    def test_append_and_read_back(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            assert spool.append(b"alpha") == 0
            assert spool.append(b"beta") == 1
            assert list(spool.records()) == [b"alpha", b"beta"]
            assert len(spool) == 2

    def test_reopen_recovers_records(self, tmp_path):
        path = tmp_path / "s.spool"
        with Spool(path) as spool:
            spool.append(b"one")
            spool.append(b"two")
        reopened = Spool(path)
        assert reopened.recovered_records == 2
        assert reopened.truncated_bytes == 0
        assert list(reopened.records()) == [b"one", b"two"]
        # Appending after recovery continues the journal.
        assert reopened.append(b"three") == 2
        assert list(reopened.records()) == [b"one", b"two", b"three"]
        reopened.close()

    def test_iteration_safe_while_open(self, tmp_path):
        spool = Spool(tmp_path / "s.spool")
        spool.append(b"a")
        iterated = list(spool.records())
        spool.append(b"b")
        assert iterated == [b"a"]
        assert list(spool.records()) == [b"a", b"b"]
        spool.close()


class TestValidation:

    def test_rejects_negative_fsync_every(self, tmp_path):
        with pytest.raises(SpoolError):
            Spool(tmp_path / "s.spool", fsync_every=-1)

    def test_rejects_empty_record(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            with pytest.raises(SpoolError):
                spool.append(b"")

    def test_rejects_oversized_record(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            with pytest.raises(SpoolError, match="exceeds"):
                # Fake the length check without allocating 64 MiB.
                spool.append(b"\x00" * (MAX_RECORD_BYTES + 1))

    def test_append_after_close_raises(self, tmp_path):
        spool = Spool(tmp_path / "s.spool")
        spool.close()
        assert spool.closed
        with pytest.raises(SpoolError):
            spool.append(b"late")
        spool.close()  # idempotent

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "notaspool"
        path.write_bytes(b"definitely not a spool file")
        with pytest.raises(SpoolError, match="bad magic"):
            Spool(path)

    def test_fsync_every_batches(self, tmp_path):
        with Spool(tmp_path / "s.spool", fsync_every=2) as spool:
            for index in range(5):
                spool.append(b"%d" % index)
            spool.sync()
        assert Spool(tmp_path / "s.spool").recovered_records == 5


class TestTornWrites:

    def _build(self, tmp_path, payloads):
        path = tmp_path / "s.spool"
        with Spool(path) as spool:
            for payload in payloads:
                spool.append(payload)
        return path

    def test_truncation_at_every_byte_offset(self, tmp_path):
        """The crash-safety property: any prefix recovers cleanly."""
        payloads = [b"r0", b"record-one", b"rr2", b"x" * 40, b"tail-rec"]
        source = self._build(tmp_path, payloads)
        blob = source.read_bytes()
        # Byte offsets at which each record becomes complete.
        boundaries = []
        offset = len(MAGIC)
        for payload in payloads:
            offset += RECORD_HEADER_SIZE + len(payload)
            boundaries.append(offset)
        assert boundaries[-1] == len(blob)

        for cut in range(len(blob) + 1):
            torn = tmp_path / "torn.spool"
            torn.write_bytes(blob[:cut])
            spool = Spool(torn)
            expected = sum(1 for end in boundaries if end <= cut)
            assert spool.recovered_records == expected, f"cut at {cut}"
            assert list(spool.records()) == payloads[:expected]
            if cut >= len(MAGIC):
                good_end = ([len(MAGIC)]
                            + [b for b in boundaries if b <= cut])[-1]
                assert spool.truncated_bytes == cut - good_end
            # The recovered journal accepts new appends.
            spool.append(b"after-crash")
            assert list(spool.records()) == payloads[:expected] \
                + [b"after-crash"]
            spool.close()
            torn.unlink()

    def test_crc_corruption_cuts_the_tail(self, tmp_path):
        source = self._build(tmp_path, [b"good-0", b"good-1", b"good-2"])
        blob = bytearray(source.read_bytes())
        # Flip one payload byte of the middle record.
        middle = len(MAGIC) + (RECORD_HEADER_SIZE + 6) + RECORD_HEADER_SIZE
        blob[middle] ^= 0xFF
        source.write_bytes(bytes(blob))
        spool = Spool(source)
        assert spool.recovered_records == 1
        assert list(spool.records()) == [b"good-0"]
        spool.close()

    def test_corrupt_length_field_is_a_torn_tail(self, tmp_path):
        source = self._build(tmp_path, [b"good-0"])
        with source.open("ab") as file:
            file.write(b"\xFF\xFF\xFF\xFF\x00\x00\x00\x00payloadish")
        spool = Spool(source)
        assert spool.recovered_records == 1
        assert spool.truncated_bytes > 0
        spool.close()

    @given(payloads=spool_payload_lists)
    @default_settings
    def test_arbitrary_payloads_roundtrip(self, tmp_path_factory, payloads):
        tmp_path = tmp_path_factory.mktemp("spool-prop")
        source = self._build(tmp_path, payloads)
        spool = Spool(source)
        assert spool.recovered_records == len(payloads)
        assert list(spool.records()) == payloads
        spool.close()

    @given(journal=torn_journals())
    @default_settings
    def test_arbitrary_torn_tail_recovers_prefix(self, tmp_path_factory,
                                                 journal):
        payloads, fraction = journal
        tmp_path = tmp_path_factory.mktemp("spool-torn")
        blob = self._build(tmp_path, payloads).read_bytes()
        cut = int(len(blob) * fraction)
        torn = tmp_path / "torn.spool"
        torn.write_bytes(blob[:cut])
        spool = Spool(torn)
        recovered = list(spool.records())
        # Recovery yields a clean prefix of what was fully written.
        assert recovered == payloads[:len(recovered)]
        assert spool.recovered_records == len(recovered)
        # And appending after recovery continues the journal.
        spool.append(b"after-crash")
        assert list(spool.records())[-1] == b"after-crash"
        spool.close()
        torn.unlink()


class TestResumeState:

    def _hello(self, epoch):
        return wire.encode_frame(FrameKind.HELLO, {"epoch": epoch})

    def _report(self, seq, time_s=1.0):
        from repro.core.messages import AggregatedPowerReport
        report = AggregatedPowerReport(
            time_s=time_s, period_s=1.0, by_pid={100: 5.0},
            idle_w=31.48, formula="hpc", gap=False)
        return wire.report_frame(report, seq=seq)

    def test_empty_spool_has_no_state(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            assert spool.resume_state() == (None, None)
            assert spool.last_seq() is None

    def test_highest_seq_wins(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            spool.append(self._hello("epoch-a"))
            for seq in (0, 1, 2):
                spool.append(self._report(seq))
            assert spool.resume_state() == ("epoch-a", 2)
            assert spool.last_seq() == 2

    def test_epoch_change_resets_seq_tracking(self, tmp_path):
        """A journal spanning a server restart resumes in the new
        server's sequence space, not with the stale high-water mark."""
        with Spool(tmp_path / "s.spool") as spool:
            spool.append(self._hello("epoch-a"))
            for seq in (0, 1, 2, 3, 4):
                spool.append(self._report(seq))
            spool.append(self._hello("epoch-b"))
            spool.append(self._report(0))
            assert spool.resume_state() == ("epoch-b", 0)

    def test_epoch_with_no_frames_yet(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            spool.append(self._hello("epoch-a"))
            spool.append(self._report(7))
            spool.append(self._hello("epoch-b"))
            assert spool.resume_state() == ("epoch-b", None)

    def test_non_frame_records_are_skipped(self, tmp_path):
        with Spool(tmp_path / "s.spool") as spool:
            spool.append(b"not a frame at all")
            spool.append(self._report(3))
            assert spool.last_seq() == 3

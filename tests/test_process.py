"""Unit tests for repro.os.process."""

import pytest

from repro.errors import ConfigurationError, ProcessError
from repro.os.process import Demand, ProcessState, SimProcess
from repro.workloads.base import ConstantWorkload, cpu_demand


class TestDemand:
    def test_valid(self):
        demand = Demand(utilization=0.5)
        assert demand.threads == 1

    def test_rejects_negative_utilization(self):
        with pytest.raises(ConfigurationError):
            Demand(utilization=-0.1)

    def test_rejects_over_one(self):
        with pytest.raises(ConfigurationError):
            Demand(utilization=1.1)

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigurationError):
            Demand(utilization=0.5, threads=0)


class _ScriptedProgram:
    """Program returning a fixed list of demands, then None."""

    def __init__(self, demands):
        self._demands = list(demands)
        self.calls = 0

    def demand(self, local_time_s):
        self.calls += 1
        if not self._demands:
            return None
        return self._demands.pop(0)


class TestSimProcess:
    def test_rejects_negative_pid(self):
        with pytest.raises(ConfigurationError):
            SimProcess(pid=-1, name="x", program=_ScriptedProgram([]))

    def test_rejects_extreme_nice(self):
        with pytest.raises(ConfigurationError):
            SimProcess(pid=1, name="x", program=_ScriptedProgram([]), nice=25)

    def test_starts_runnable(self):
        process = SimProcess(1, "x", _ScriptedProgram([]))
        assert process.state is ProcessState.RUNNABLE

    def test_poll_demand_passes_through(self):
        demand = Demand(utilization=0.7)
        process = SimProcess(1, "x", _ScriptedProgram([demand]))
        assert process.poll_demand() is demand

    def test_zero_utilization_sleeps(self):
        process = SimProcess(1, "x", _ScriptedProgram([Demand(0.0)]))
        process.poll_demand()
        assert process.state is ProcessState.SLEEPING

    def test_none_exits(self):
        process = SimProcess(1, "x", _ScriptedProgram([]))
        assert process.poll_demand() is None
        assert process.state is ProcessState.EXITED
        assert not process.alive

    def test_poll_after_exit_raises(self):
        process = SimProcess(1, "x", _ScriptedProgram([]))
        process.poll_demand()
        with pytest.raises(ProcessError):
            process.poll_demand()

    def test_accounting(self):
        process = SimProcess(1, "x", _ScriptedProgram([Demand(1.0)] * 3))
        process.account(0.01, 0.01)
        process.account(0.005, 0.01)
        assert process.cpu_time_s == pytest.approx(0.015)
        assert process.wall_time_s == pytest.approx(0.02)

    def test_accounting_rejects_negative(self):
        process = SimProcess(1, "x", _ScriptedProgram([]))
        with pytest.raises(ConfigurationError):
            process.account(-0.01, 0.01)

    def test_affinity_allows(self):
        process = SimProcess(1, "x", _ScriptedProgram([]), affinity={1, 2})
        assert process.allowed_on(1)
        assert not process.allowed_on(0)

    def test_no_affinity_allows_all(self):
        process = SimProcess(1, "x", _ScriptedProgram([]))
        assert process.allowed_on(99)

    def test_workload_is_a_program(self):
        workload = ConstantWorkload(cpu_demand(), duration_s=1.0)
        process = SimProcess(1, "stress", workload)
        assert process.poll_demand().utilization == 1.0

    def test_repr(self):
        process = SimProcess(7, "jbb", _ScriptedProgram([]))
        assert "pid=7" in repr(process)
        assert "jbb" in repr(process)

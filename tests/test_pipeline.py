"""Unit tests for repro.simcpu.pipeline (IPC and SMT contention)."""

import pytest

from repro.errors import ConfigurationError
from repro.simcpu.caches import CacheModel, MemoryProfile
from repro.simcpu.pipeline import (SMT_THROUGHPUT_FACTOR, InstructionMix,
                                   PipelineModel)
from repro.simcpu.spec import intel_core2duo_e6600, intel_i3_2120


@pytest.fixture
def pipeline():
    return PipelineModel(intel_i3_2120())


@pytest.fixture
def cache_behaviour():
    model = CacheModel(intel_i3_2120())
    return model.behaviour(MemoryProfile(mem_ops_per_instruction=0.2,
                                         working_set_bytes=16 * 1024,
                                         locality=0.98))


class TestInstructionMix:
    def test_int_fraction_is_remainder(self):
        mix = InstructionMix(fp_fraction=0.2, simd_fraction=0.1,
                             branch_fraction=0.15)
        assert mix.int_fraction == pytest.approx(0.55)

    def test_rejects_fractions_over_one(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(fp_fraction=0.5, simd_fraction=0.4,
                           branch_fraction=0.2)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(fp_fraction=-0.1)

    def test_simd_issues_slower_than_int(self):
        integer = InstructionMix(branch_fraction=0.0)
        simd = InstructionMix(simd_fraction=0.5, branch_fraction=0.0)
        assert simd.issue_ipc_factor() < integer.issue_ipc_factor()

    def test_simd_burns_more_power_per_instruction(self):
        integer = InstructionMix()
        simd = InstructionMix(simd_fraction=0.5, branch_fraction=0.1)
        assert simd.power_weight() > integer.power_weight()

    def test_pure_integer_weight_is_unity(self):
        assert InstructionMix(branch_fraction=0.0).power_weight() == 1.0


class TestIpc:
    def test_cpu_bound_ipc_reasonable(self, pipeline, cache_behaviour):
        rates = pipeline.rates(InstructionMix(), cache_behaviour)
        assert 0.3 < rates.ipc < 2.0

    def test_memory_stalls_reduce_ipc(self, pipeline, cache_behaviour):
        model = CacheModel(intel_i3_2120())
        slow = model.behaviour(MemoryProfile(mem_ops_per_instruction=0.4,
                                             working_set_bytes=64 * 1024 ** 2,
                                             locality=0.6))
        fast_rates = pipeline.rates(InstructionMix(), cache_behaviour)
        slow_rates = pipeline.rates(InstructionMix(), slow)
        assert slow_rates.ipc < fast_rates.ipc

    def test_branch_misses_reduce_ipc(self, pipeline, cache_behaviour):
        clean = pipeline.rates(
            InstructionMix(branch_fraction=0.2, branch_miss_rate=0.0),
            cache_behaviour)
        flushy = pipeline.rates(
            InstructionMix(branch_fraction=0.2, branch_miss_rate=0.15),
            cache_behaviour)
        assert flushy.ipc < clean.ipc

    def test_branch_rates_propagate(self, pipeline, cache_behaviour):
        mix = InstructionMix(branch_fraction=0.2, branch_miss_rate=0.1)
        rates = pipeline.rates(mix, cache_behaviour)
        assert rates.branches_per_instruction == pytest.approx(0.2)
        assert rates.branch_misses_per_instruction == pytest.approx(0.02)


class TestSmtContention:
    def test_busy_sibling_reduces_throughput(self, pipeline, cache_behaviour):
        alone = pipeline.rates(InstructionMix(), cache_behaviour,
                               sibling_busy_fraction=0.0)
        contended = pipeline.rates(InstructionMix(), cache_behaviour,
                                   sibling_busy_fraction=1.0)
        assert contended.ipc < alone.ipc

    def test_core_throughput_rises_with_smt(self, pipeline, cache_behaviour):
        # Two contended threads together must beat one thread alone.
        alone = pipeline.rates(InstructionMix(), cache_behaviour, 0.0)
        contended = pipeline.rates(InstructionMix(), cache_behaviour, 1.0)
        assert 2 * contended.ipc > alone.ipc

    def test_contention_interpolates(self, pipeline, cache_behaviour):
        half = pipeline.rates(InstructionMix(), cache_behaviour, 0.5)
        full = pipeline.rates(InstructionMix(), cache_behaviour, 1.0)
        alone = pipeline.rates(InstructionMix(), cache_behaviour, 0.0)
        assert full.ipc < half.ipc < alone.ipc

    def test_no_smt_spec_ignores_sibling(self, cache_behaviour):
        pipeline = PipelineModel(intel_core2duo_e6600())
        alone = pipeline.rates(InstructionMix(), cache_behaviour, 0.0)
        contended = pipeline.rates(InstructionMix(), cache_behaviour, 1.0)
        assert contended.ipc == pytest.approx(alone.ipc)

    def test_rejects_bad_sibling_fraction(self, pipeline, cache_behaviour):
        with pytest.raises(ConfigurationError):
            pipeline.rates(InstructionMix(), cache_behaviour, 1.5)

    def test_smt_factor_in_sane_range(self):
        assert 0.5 < SMT_THROUGHPUT_FACTOR < 1.0


class TestInstructionCounting:
    def test_instructions_scale_with_time(self, pipeline, cache_behaviour):
        rates = pipeline.rates(InstructionMix(), cache_behaviour)
        one = pipeline.instructions_in(rates, 3_300_000_000, 1.0)
        two = pipeline.instructions_in(rates, 3_300_000_000, 2.0)
        assert two == pytest.approx(2 * one)

    def test_instructions_scale_with_frequency(self, pipeline, cache_behaviour):
        rates = pipeline.rates(InstructionMix(), cache_behaviour)
        slow = pipeline.instructions_in(rates, 1_600_000_000, 1.0)
        fast = pipeline.instructions_in(rates, 3_300_000_000, 1.0)
        assert fast > slow

    def test_rejects_negative_time(self, pipeline, cache_behaviour):
        rates = pipeline.rates(InstructionMix(), cache_behaviour)
        with pytest.raises(ConfigurationError):
            pipeline.instructions_in(rates, 3_300_000_000, -1.0)

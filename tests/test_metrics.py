"""Unit tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.core.metrics import (absolute_percentage_errors, error_summary,
                                max_ape, mean_ape, median_ape, r_squared,
                                rmse)
from repro.errors import ConfigurationError


class TestApe:
    def test_perfect_estimate(self):
        assert median_ape([10, 20], [10, 20]) == 0.0

    def test_known_errors(self):
        errors = absolute_percentage_errors([100, 100], [110, 80])
        assert errors == pytest.approx([0.1, 0.2])

    def test_median_vs_mean(self):
        measured = [100, 100, 100]
        estimated = [101, 101, 160]
        assert median_ape(measured, estimated) == pytest.approx(0.01)
        assert mean_ape(measured, estimated) == pytest.approx(0.62 / 3)

    def test_max(self):
        assert max_ape([100, 100], [105, 150]) == pytest.approx(0.5)

    def test_symmetric_in_direction(self):
        # Under- and over-estimation count the same.
        assert median_ape([100], [90]) == median_ape([100], [110])

    def test_rejects_zero_measured(self):
        with pytest.raises(ConfigurationError):
            median_ape([0.0], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            median_ape([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            median_ape([], [])


class TestRmse:
    def test_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_zero_for_perfect(self):
        assert rmse([5, 6], [5, 6]) == 0.0


class TestR2:
    def test_perfect_fit(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_predictor_is_zero(self):
        measured = [1.0, 2.0, 3.0]
        estimated = [2.0, 2.0, 2.0]
        assert r_squared(measured, estimated) == pytest.approx(0.0)

    def test_constant_measured(self):
        assert r_squared([2, 2], [2, 2]) == 1.0
        assert r_squared([2, 2], [3, 3]) == 0.0

    def test_worse_than_mean_is_negative(self):
        assert r_squared([1, 2, 3], [3, 2, 1]) < 0


class TestSummary:
    def test_contains_all_metrics(self):
        summary = error_summary([10, 20, 30], [11, 19, 33])
        assert set(summary) == {"median_ape", "mean_ape", "max_ape",
                                "rmse_w", "r2", "samples"}
        assert summary["samples"] == 3

"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.metrics import (absolute_percentage_errors, median_ape,
                                r_squared, rmse)
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.regression import fit_nnls, fit_ols
from repro.perf.multiplex import MultiplexScheduler
from repro.simcpu.caches import CacheModel, MemoryProfile
from repro.simcpu.counters import EventDelta
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.machine import Machine, ThreadAssignment
from repro.simcpu.pipeline import InstructionMix, PipelineModel
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz

SPEC = intel_i3_2120()

utilization = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)
working_sets = st.integers(min_value=0, max_value=512 * 1024 ** 2)
localities = st.floats(min_value=0.01, max_value=1.0,
                       allow_nan=False, allow_infinity=False)
mem_ops = st.floats(min_value=0.0, max_value=1.0,
                    allow_nan=False, allow_infinity=False)


class TestCacheProperties:
    @given(ws=working_sets, locality=localities, ops=mem_ops)
    @settings(max_examples=80, deadline=None)
    def test_misses_bounded_by_references(self, ws, locality, ops):
        model = CacheModel(SPEC)
        behaviour = model.behaviour(MemoryProfile(
            mem_ops_per_instruction=ops, working_set_bytes=ws,
            locality=locality))
        assert 0.0 <= behaviour.llc_misses <= behaviour.llc_references + 1e-12
        assert behaviour.llc_references <= behaviour.l1_references + 1e-12
        assert behaviour.stall_cycles >= 0.0

    @given(ws=working_sets, locality=localities)
    @settings(max_examples=40, deadline=None)
    def test_contention_never_reduces_misses(self, ws, locality):
        model = CacheModel(SPEC)
        profile = MemoryProfile(mem_ops_per_instruction=0.3,
                                working_set_bytes=ws, locality=locality)
        alone = model.behaviour(profile)
        contended = model.behaviour(profile,
                                    coresident_sets=[16 * 1024 ** 2])
        assert contended.llc_misses >= alone.llc_misses - 1e-12


class TestPipelineProperties:
    @given(fp=st.floats(0, 0.5, allow_nan=False),
           branch=st.floats(0, 0.4, allow_nan=False),
           sibling=utilization)
    @settings(max_examples=80, deadline=None)
    def test_ipc_positive_and_bounded(self, fp, branch, sibling):
        assume(fp + branch <= 1.0)
        pipeline = PipelineModel(SPEC)
        cache = CacheModel(SPEC).behaviour(MemoryProfile())
        rates = pipeline.rates(
            InstructionMix(fp_fraction=fp, branch_fraction=branch),
            cache, sibling_busy_fraction=sibling)
        assert 0.0 < rates.ipc <= SPEC.base_ipc

    @given(sibling=utilization)
    @settings(max_examples=40, deadline=None)
    def test_contention_monotone_in_sibling_load(self, sibling):
        pipeline = PipelineModel(SPEC)
        cache = CacheModel(SPEC).behaviour(MemoryProfile())
        mix = InstructionMix()
        base = pipeline.rates(mix, cache, 0.0).ipc
        contended = pipeline.rates(mix, cache, sibling).ipc
        assert contended <= base + 1e-12


class TestMachineProperties:
    @given(busy=st.lists(utilization, min_size=4, max_size=4),
           dt=st.floats(0.001, 0.1, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_power_within_physical_envelope(self, busy, dt):
        machine = Machine(SPEC)
        machine.set_frequency(SPEC.max_frequency_hz)
        assignments = [
            ThreadAssignment(pid=100 + cpu, cpu_id=cpu, busy_fraction=b,
                             mix=InstructionMix(),
                             memory=MemoryProfile())
            for cpu, b in enumerate(busy)]
        record = machine.step(assignments, dt)
        assert record.wall_power_w >= SPEC.power.idle_w - 1e-9
        assert record.wall_power_w <= SPEC.power.idle_w + SPEC.power.tdp_w * 1.6

    @given(busy=utilization, dt=st.floats(0.001, 0.1, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_counters_monotone(self, busy, dt):
        machine = Machine(SPEC)
        assignment = ThreadAssignment(
            pid=1, cpu_id=0, busy_fraction=busy,
            mix=InstructionMix(), memory=MemoryProfile())
        machine.step([assignment], dt)
        first = machine.counters.read("instructions")
        machine.step([assignment], dt)
        second = machine.counters.read("instructions")
        assert second >= first

    @given(dt=st.floats(0.001, 0.5, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_energy_equals_power_times_time(self, dt):
        machine = Machine(SPEC)
        record = machine.step([], dt)
        assert machine.energy_j == pytest.approx(
            record.wall_power_w * dt, rel=1e-9)


class TestEventDeltaProperties:
    @given(counts=st.lists(st.floats(0, 1e12, allow_nan=False), min_size=1,
                           max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_merge_preserves_totals(self, counts):
        a = EventDelta()
        b = EventDelta()
        for index, count in enumerate(counts):
            target = a if index % 2 == 0 else b
            target.add("instructions", count)
        merged = a.merged_with(b)
        assert merged["instructions"] == pytest.approx(sum(counts), rel=1e-9)


class TestRegressionProperties:
    @given(coefficient=st.floats(0.1, 100, allow_nan=False),
           intercept=st.floats(0, 100, allow_nan=False),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_ols_recovers_noiseless_models(self, coefficient, intercept,
                                           seed):
        rng = np.random.default_rng(seed)
        samples = [{"x": float(rng.uniform(0, 10))} for _ in range(10)]
        targets = [intercept + coefficient * s["x"] for s in samples]
        assume(len({s["x"] for s in samples}) > 2)
        result = fit_ols(samples, targets, ["x"])
        assert result.coefficients["x"] == pytest.approx(coefficient,
                                                         rel=1e-6)
        assert result.intercept == pytest.approx(intercept, abs=1e-6 * max(
            1.0, intercept))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_nnls_never_negative(self, seed):
        rng = np.random.default_rng(seed)
        samples = [{"a": float(rng.uniform(0, 10)),
                    "b": float(rng.uniform(0, 10))} for _ in range(12)]
        targets = [float(rng.uniform(-5, 5)) for _ in range(12)]
        result = fit_nnls(samples, targets, ["a", "b"])
        assert result.intercept >= 0.0
        assert all(value >= 0.0 for value in result.coefficients.values())


class TestModelProperties:
    @given(rates=st.dictionaries(
        st.sampled_from(["instructions", "cache-references",
                         "cache-misses"]),
        st.floats(0, 1e11, allow_nan=False), max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_prediction_at_least_idle(self, rates):
        model = PowerModel(idle_w=31.48, formulas=[
            FrequencyFormula(ghz(3.3), {"instructions": 2.22e-9,
                                        "cache-references": 2.48e-8,
                                        "cache-misses": 1.87e-7})])
        assert model.predict_total(ghz(3.3), rates) >= model.idle_w

    @given(idle=st.floats(0, 100, allow_nan=False),
           weight=st.floats(0, 1e-6, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip(self, idle, weight):
        model = PowerModel(idle_w=idle, formulas=[
            FrequencyFormula(ghz(2.0), {"instructions": weight})])
        clone = PowerModel.from_json(model.to_json())
        rates = {"instructions": 1e9}
        assert clone.predict_total(ghz(2.0), rates) == pytest.approx(
            model.predict_total(ghz(2.0), rates))


class TestMetricProperties:
    @given(values=st.lists(st.floats(1, 1000, allow_nan=False), min_size=1,
                           max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_perfect_estimates_score_zero(self, values):
        assert median_ape(values, values) == 0.0
        assert rmse(values, values) == 0.0
        assert r_squared(values, values) == 1.0

    @given(measured=st.lists(st.floats(1, 1000, allow_nan=False),
                             min_size=2, max_size=30),
           scale=st.floats(0.5, 2.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_uniform_scaling_gives_uniform_ape(self, measured, scale):
        estimated = [value * scale for value in measured]
        errors = absolute_percentage_errors(measured, estimated)
        assert np.allclose(errors, abs(scale - 1.0))


class TestMultiplexProperties:
    @given(n_counters=st.integers(1, 12), slots=st.integers(1, 6),
           rounds=st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_schedule_respects_slots_and_fairness(self, n_counters, slots,
                                                  rounds):
        class FakeCounter:
            def __init__(self, cid):
                self.counter_id = cid
                self.pid = -1
                self.cpu = -1

        scheduler = MultiplexScheduler(slots=slots)
        counters = [FakeCounter(i) for i in range(n_counters)]
        scheduled_counts = {c.counter_id: 0 for c in counters}
        for _ in range(rounds):
            chosen = scheduler.schedule(counters)
            assert len(chosen) <= max(slots, min(n_counters, slots))
            for cid in chosen:
                scheduled_counts[cid] += 1
        if n_counters <= slots:
            assert all(count == rounds
                       for count in scheduled_counts.values())
        elif rounds >= n_counters:
            # Over enough rounds everyone gets PMU time.
            assert all(count > 0 for count in scheduled_counts.values())


class TestFrequencyProperties:
    @given(index=st.integers(0, len(SPEC.frequencies_hz) - 1),
           active=st.integers(1, 2))
    @settings(max_examples=30, deadline=None)
    def test_effective_frequency_is_supported(self, index, active):
        domain = FrequencyDomain(SPEC)
        frequency = SPEC.frequencies_hz[index]
        domain.set_all_targets(frequency)
        granted = domain.effective(0, 0, active_cores_in_package=active)
        assert granted in SPEC.all_frequencies_hz
        assert granted == frequency  # sustained states granted exactly

"""Unit tests for repro.simcpu.power (the hidden ground-truth model)."""

import pytest

from repro.errors import ConfigurationError
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.power import (LEAKAGE_EQUILIBRIUM_FRACTION,
                                SMT_SECOND_THREAD_FACTOR, CoreActivity,
                                GroundTruthPower, PowerBreakdown,
                                ThermalModel)
from repro.simcpu.spec import intel_i3_2120
from repro.units import ghz


@pytest.fixture
def truth():
    spec = intel_i3_2120()
    return GroundTruthPower(spec, FrequencyDomain(spec))


def activity(busy, frequency=ghz(3.3), weight=1.0):
    return CoreActivity(frequency_hz=frequency, thread_busy=busy,
                        power_weight=weight, idle_power_fraction=0.03)


class TestCorePower:
    def test_idle_core_draws_little(self, truth):
        idle = truth.core_power(activity((0.0, 0.0)))
        busy = truth.core_power(activity((1.0, 0.0)))
        assert idle < busy * 0.1

    def test_smt_second_thread_cheaper(self, truth):
        one = truth.core_power(activity((1.0, 0.0)))
        two = truth.core_power(activity((1.0, 1.0)))
        # Second thread adds only the SMT factor, far below double.
        assert one < two < 1.5 * one

    def test_smt_factor_applied_exactly(self, truth):
        one = truth.core_power(activity((1.0, 0.0)))
        two = truth.core_power(activity((1.0, 1.0)))
        idle_part = truth.core_power(activity((0.0, 0.0)))
        active_one = one - 0.0  # busiest=1.0 -> no idle component
        assert (two - one) / active_one == pytest.approx(
            SMT_SECOND_THREAD_FACTOR, rel=0.05)

    def test_frequency_scaling_superlinear(self, truth):
        slow = truth.core_power(activity((1.0, 0.0), frequency=ghz(1.6)))
        fast = truth.core_power(activity((1.0, 0.0), frequency=ghz(3.3)))
        assert fast / slow > 3.3 / 1.6

    def test_power_weight_scales_active_power(self, truth):
        light = truth.core_power(activity((1.0, 0.0), weight=1.0))
        heavy = truth.core_power(activity((1.0, 0.0), weight=1.5))
        assert heavy == pytest.approx(1.5 * light)

    def test_rejects_bad_busy(self):
        with pytest.raises(ConfigurationError):
            CoreActivity(frequency_hz=ghz(3.3), thread_busy=(1.5,))


class TestWakeupPower:
    def test_zero_at_idle_and_full(self, truth):
        assert truth.wakeup_power(activity((0.0, 0.0))) == 0.0
        assert truth.wakeup_power(activity((1.0, 0.0))) == 0.0

    def test_peaks_at_half_load(self, truth):
        half = truth.wakeup_power(activity((0.5, 0.0)))
        quarter = truth.wakeup_power(activity((0.25, 0.0)))
        assert half > quarter > 0.0


class TestWallPower:
    def test_idle_machine_draws_idle_constant(self, truth):
        breakdown = truth.wall_power(
            [activity((0.0, 0.0)), activity((0.0, 0.0))],
            llc_references_per_s=0.0, dram_bytes_per_s=0.0)
        assert breakdown.total == pytest.approx(
            intel_i3_2120().power.idle_w, rel=0.02)

    def test_traffic_adds_uncore_and_dram(self, truth):
        quiet = truth.wall_power([activity((1.0, 0.0))], 0.0, 0.0)
        loud = truth.wall_power([activity((1.0, 0.0))], 5e8, 3e9)
        assert loud.uncore > quiet.uncore
        assert loud.dram > quiet.dram

    def test_dram_power_sublinear(self, truth):
        low = truth.wall_power([activity((1.0, 0.0))], 0.0, 1e9).dram
        high = truth.wall_power([activity((1.0, 0.0))], 0.0, 4e9).dram
        assert high < 4 * low

    def test_rejects_negative_traffic(self, truth):
        with pytest.raises(ConfigurationError):
            truth.wall_power([], -1.0, 0.0)

    def test_breakdown_total_is_sum(self):
        breakdown = PowerBreakdown(idle=30, cores=10, uncore=2, dram=1,
                                   leakage=3, wakeup=0.5)
        assert breakdown.total == pytest.approx(46.5)


class TestThermalModel:
    def test_cold_start_no_leakage(self):
        thermal = ThermalModel()
        assert thermal.step(20.0, 0.01) < 0.05

    def test_sustained_load_reaches_equilibrium(self):
        thermal = ThermalModel()
        leak = 0.0
        for _ in range(3000):  # 300 s at 0.1 s steps
            leak = thermal.step(20.0, 0.1)
        assert leak == pytest.approx(LEAKAGE_EQUILIBRIUM_FRACTION * 20.0,
                                     rel=0.02)

    def test_cooldown_reduces_leakage(self):
        thermal = ThermalModel()
        for _ in range(2000):
            hot = thermal.step(20.0, 0.1)
        for _ in range(2000):
            cold = thermal.step(0.0, 0.1)
        assert cold < hot * 0.05

    def test_monotone_warming(self):
        thermal = ThermalModel()
        leaks = [thermal.step(15.0, 1.0) for _ in range(30)]
        assert leaks == sorted(leaks)

    def test_rejects_negative_inputs(self):
        thermal = ThermalModel()
        with pytest.raises(ConfigurationError):
            thermal.step(-1.0, 0.1)

    def test_leakage_in_wall_power(self):
        spec = intel_i3_2120()
        truth = GroundTruthPower(spec, FrequencyDomain(spec))
        thermal = ThermalModel()
        # Preheat.
        for _ in range(500):
            truth.wall_power([activity((1.0, 1.0)), activity((1.0, 1.0))],
                             1e8, 1e9, thermal=thermal, dt_s=1.0)
        hot = truth.wall_power([activity((1.0, 1.0)), activity((1.0, 1.0))],
                               1e8, 1e9, thermal=thermal, dt_s=1.0)
        assert hot.leakage > 3.0

"""Parallel campaign execution: the executor, determinism, and the
hot-path satellite fixes that ride along with it."""

from __future__ import annotations

import pytest

from repro.core.parallel import resolve_workers, run_tasks
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.errors import ConfigurationError
from repro.simcpu import Machine, intel_i3_2120
from repro.workloads.stress import CpuStress, MemoryStress


def _square(x: int) -> int:
    return x * x


def _maybe_fail(x: int) -> int:
    if x == 3:
        raise ConfigurationError("boom")
    return x


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        values = list(range(20))
        assert run_tasks(_square, values, workers=4) == [v * v for v in values]

    def test_empty_task_list(self):
        assert run_tasks(_square, [], workers=4) == []

    def test_task_errors_propagate(self):
        with pytest.raises(ConfigurationError):
            run_tasks(_maybe_fail, [1, 2, 3, 4], workers=2)

    def test_unpicklable_falls_back_to_serial(self):
        # A lambda cannot be shipped to pool workers; run_tasks must
        # degrade to the serial loop instead of raising.
        assert run_tasks(lambda x: x + 1, [1, 2], workers=2) == [2, 3]

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)


def _small_campaign(spec) -> SamplingCampaign:
    return SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=spec.num_threads),
                   MemoryStress(utilization=0.75, threads=2,
                                working_set_bytes=16 * 1024 ** 2)],
        frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=0.5, windows_per_run=2, settle_s=0.25, quantum_s=0.05)


class TestCampaignDeterminism:
    @pytest.fixture(scope="class")
    def spec(self):
        return intel_i3_2120()

    def test_worker_count_does_not_change_dataset(self, spec):
        serial = _small_campaign(spec).run(workers=1)
        parallel = _small_campaign(spec).run(workers=4)
        assert serial.events == parallel.events
        assert len(serial) == len(parallel) > 0
        # Identical points, in identical order, with identical values.
        for ours, theirs in zip(serial.points, parallel.points):
            assert ours == theirs

    def test_learned_model_bit_identical(self, spec):
        serial = learn_power_model(
            spec, campaign=_small_campaign(spec), idle_duration_s=2.0,
            workers=1)
        parallel = learn_power_model(
            spec, campaign=_small_campaign(spec), idle_duration_s=2.0,
            workers=4)
        assert serial.idle_w == parallel.idle_w
        assert (serial.model.frequencies_hz
                == parallel.model.frequencies_hz)
        for frequency_hz in serial.model.frequencies_hz:
            ours = serial.model.formula(frequency_hz)
            theirs = parallel.model.formula(frequency_hz)
            assert dict(ours.coefficients) == dict(theirs.coefficients)

    def test_run_plan_assigns_stable_indices(self, spec):
        campaign = _small_campaign(spec)
        plan = campaign.run_plan()
        assert [index for _f, _w, index in plan] == [1, 2, 3, 4]
        assert plan == campaign.run_plan()


class TestSatelliteFixes:
    def test_explicit_workloads_report_real_thread_count(self):
        spec = intel_i3_2120()
        campaign = SamplingCampaign(
            spec, workloads=[CpuStress(utilization=1.0, threads=4),
                             MemoryStress(utilization=1.0, threads=2),
                             CpuStress(utilization=0.5)])
        assert [threads for _w, threads in campaign._workloads()] == [4, 2, 1]

    def test_remove_observer_is_idempotent(self):
        machine = Machine(intel_i3_2120())
        seen = []
        machine.add_observer(seen.append)
        machine.remove_observer(seen.append)
        machine.remove_observer(seen.append)  # double-close: no error
        machine.remove_observer(lambda record: None)  # never subscribed

    def test_machine_events_is_cached_and_correct(self, machine,
                                                  cpu_bound_assignment):
        record = machine.step([cpu_bound_assignment], dt_s=0.01)
        first = record.machine_events()
        assert first is record.machine_events()
        merged = {}
        for delta in record.events.values():
            for event, count in delta.items():
                merged[event] = merged.get(event, 0.0) + count
        assert dict(first) == merged

"""Network chaos layer tests: fault plan parsing, the seeded campaign,
the injector/transport mechanics (driven by a fake clock — zero real
waiting), and the circuit breaker state machine.
"""

import pytest
from hypothesis import given

from repro.core.messages import HealthEvent
from repro.errors import ConfigurationError
from repro.faults import (BreakerState, ByteCorruption, CircuitBreaker,
                          ConnectionReset, FaultyTransport,
                          NetworkFaultInjector, NetworkFaultPlan, Partition,
                          SlowReader, TruncatedFrame)
from tests.strategies import default_settings, net_fault_plans

pytestmark = [pytest.mark.faults, pytest.mark.chaos]


class FakeSocket:
    """Just enough socket for FaultyTransport: records sends, serves
    canned recv chunks, and exposes a delegated attribute."""

    def __init__(self, chunks=()):
        self.sent = []
        self.chunks = list(chunks)
        self.closed = False
        self.timeout = None

    def sendall(self, data):
        self.sent.append(bytes(data))

    def recv(self, bufsize, *args):
        return self.chunks.pop(0) if self.chunks else b""

    def settimeout(self, timeout):
        self.timeout = timeout

    def close(self):
        self.closed = True


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def injector(plan, clock=None, sleeps=None):
    clock = clock or FakeClock()
    return NetworkFaultInjector(
        plan, clock=clock,
        sleep=(sleeps.append if sleeps is not None else (lambda s: None))), \
        clock


class TestPlanParsing:

    def test_parse_every_kind(self):
        plan = NetworkFaultPlan.parse(
            "partition@1:2.5;reset@2;corrupt@3:4;truncate@4;stall@5:0.3:0.01")
        assert [type(e) for e in plan] == [
            Partition, ConnectionReset, ByteCorruption, TruncatedFrame,
            SlowReader]
        partition, _reset, corrupt, _trunc, stall = plan
        assert partition.duration_s == 2.5
        assert corrupt.nbytes == 4
        assert stall.duration_s == 0.3 and stall.delay_s == 0.01

    def test_defaults_and_separators(self):
        plan = NetworkFaultPlan.parse("partition@1, corrupt@2 ;; stall@3")
        partition, corrupt, stall = plan
        assert partition.duration_s == 1.0
        assert corrupt.nbytes == 1
        assert stall.duration_s == 0.5 and stall.delay_s == 0.05

    def test_events_sorted_by_time(self):
        plan = NetworkFaultPlan.parse("reset@9;corrupt@1;truncate@5")
        assert [e.at_s for e in plan] == [1.0, 5.0, 9.0]

    def test_describe_round_trips(self):
        spec = "corrupt@1:2;truncate@3;partition@4:0.5;stall@6:0.2:0.01"
        plan = NetworkFaultPlan.parse(spec)
        assert NetworkFaultPlan.parse(plan.describe()).events == plan.events

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown network"):
            NetworkFaultPlan.parse("meteor@3")

    def test_missing_at_rejected(self):
        with pytest.raises(ConfigurationError, match="bad network fault"):
            NetworkFaultPlan.parse("reset")

    def test_bad_number_rejected(self):
        with pytest.raises(ConfigurationError, match="bad network fault"):
            NetworkFaultPlan.parse("reset@soon")
        with pytest.raises(ConfigurationError, match="bad network fault"):
            NetworkFaultPlan.parse("corrupt@1:lots")

    def test_bad_random_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="bad random"):
            NetworkFaultPlan.parse("random:notaseed")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            NetworkFaultPlan([ConnectionReset(-1.0)])

    @given(plan=net_fault_plans())
    @default_settings
    def test_to_spec_round_trips_losslessly(self, plan):
        # to_spec() is the machine-oriented serialisation: reparsing it
        # must reproduce the exact event tuple for any plan.
        again = NetworkFaultPlan.parse(plan.to_spec())
        assert again.events == plan.events

    def test_to_spec_keeps_awkward_floats(self):
        plan = NetworkFaultPlan([Partition(at_s=0.1 + 0.2,
                                           duration_s=1e-4)])
        assert NetworkFaultPlan.parse(plan.to_spec()).events == plan.events

    def test_parse_error_names_entry_and_position(self):
        with pytest.raises(ConfigurationError,
                           match=r"'meteor@3' at position 8"):
            NetworkFaultPlan.parse("reset@2;meteor@3")

    def test_parse_error_names_bad_argument(self):
        with pytest.raises(ConfigurationError,
                           match=r"'partition@1:long' at position 11.*"
                                 r"duration"):
            NetworkFaultPlan.parse("truncate@4;partition@1:long")

    def test_parse_error_rejects_extra_arguments(self):
        with pytest.raises(ConfigurationError,
                           match=r"at position 0.*argument"):
            NetworkFaultPlan.parse("reset@2:9")


class TestRandomCampaign:

    def test_same_seed_same_plan(self):
        assert NetworkFaultPlan.random(42).describe() \
            == NetworkFaultPlan.random(42).describe()

    def test_different_seeds_differ(self):
        assert NetworkFaultPlan.random(1).describe() \
            != NetworkFaultPlan.random(2).describe()

    def test_counts_and_window(self):
        plan = NetworkFaultPlan.random(7, duration_s=20.0, partitions=2,
                                       resets=3, corruptions=1,
                                       truncations=1, stalls=1)
        assert len(plan) == 8
        assert all(2.0 <= event.at_s <= 18.0 for event in plan)

    def test_parse_random_composes(self):
        plan = NetworkFaultPlan.parse("reset@0;random:42:10")
        assert plan.seed == 42
        assert len(plan) == 1 + len(NetworkFaultPlan.random(42, 10.0))

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkFaultPlan.random(1, duration_s=0.0)


class TestInjector:

    def test_reset_fires_once_across_connections(self):
        inject, clock = injector(NetworkFaultPlan([ConnectionReset(1.0)]))
        first = inject.wrap(FakeSocket())
        second = inject.wrap(FakeSocket())
        clock.now = 1.5
        with pytest.raises(ConnectionResetError):
            first.sendall(b"doomed")
        # The one-shot is spent plan-wide: the second transport works.
        second.sendall(b"fine")
        assert inject.resets_injected == 1
        assert inject.injected and "reset@1" in inject.injected[0][1]

    def test_not_due_yet(self):
        inject, _clock = injector(NetworkFaultPlan([ConnectionReset(5.0)]))
        transport = inject.wrap(FakeSocket())
        transport.sendall(b"early is safe")
        assert inject.resets_injected == 0

    def test_corruption_flips_received_bytes(self):
        inject, clock = injector(
            NetworkFaultPlan([ByteCorruption(1.0, nbytes=2)]))
        transport = inject.wrap(FakeSocket(chunks=[b"\x00\x00\x00\x00"]))
        clock.now = 2.0
        assert transport.recv(4096) == b"\xFF\xFF\x00\x00"
        assert inject.corruptions_injected == 1

    def test_truncation_sends_half_then_kills(self):
        inject, clock = injector(NetworkFaultPlan([TruncatedFrame(0.0)]))
        sock = FakeSocket()
        transport = inject.wrap(sock)
        clock.now = 0.1
        with pytest.raises(BrokenPipeError):
            transport.sendall(b"0123456789")
        assert sock.sent == [b"01234"]  # half the payload hit the wire
        # The transport is dead for every later operation.
        with pytest.raises(ConnectionResetError):
            transport.recv(4096)
        assert inject.truncations_injected == 1

    def test_partition_window(self):
        inject, clock = injector(
            NetworkFaultPlan([Partition(2.0, duration_s=1.0)]))
        transport = inject.wrap(FakeSocket(chunks=[b"x", b"y"]))
        clock.now = 2.5
        with pytest.raises(ConnectionResetError):
            transport.recv(4096)
        with pytest.raises(ConnectionResetError):
            transport.sendall(b"blocked")
        clock.now = 3.5  # window over
        transport.sendall(b"through")
        assert transport.recv(4096) == b"x"
        assert inject.partition_hits == 2

    def test_stall_sleeps_reads(self):
        sleeps = []
        inject, clock = injector(
            NetworkFaultPlan([SlowReader(1.0, duration_s=2.0,
                                         delay_s=0.25)]),
            sleeps=sleeps)
        transport = inject.wrap(FakeSocket(chunks=[b"slow"]))
        clock.now = 1.5
        assert transport.recv(4096) == b"slow"
        assert sleeps == [0.25]
        assert inject.stall_hits == 1

    def test_exhausted(self):
        inject, clock = injector(NetworkFaultPlan(
            [ConnectionReset(0.0), Partition(1.0, duration_s=1.0)]))
        assert not inject.exhausted
        transport = inject.wrap(FakeSocket())
        with pytest.raises(ConnectionResetError):
            transport.sendall(b"x")
        assert not inject.exhausted  # partition window still ahead
        clock.now = 2.5
        assert inject.exhausted

    def test_delegates_other_attributes(self):
        inject, _clock = injector(NetworkFaultPlan())
        sock = FakeSocket()
        transport = inject.wrap(sock)
        transport.settimeout(7.5)
        transport.close()
        assert sock.timeout == 7.5 and sock.closed
        assert isinstance(transport, FaultyTransport)


class TestCircuitBreaker:

    def make(self, threshold=3, reset_s=10.0, events=None):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout_s=reset_s,
            clock=clock,
            on_event=(events.append if events is not None else None))
        return breaker, clock

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_s=0.0)

    def test_opens_at_threshold(self):
        breaker, _clock = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 1

    def test_open_refuses_until_timeout(self):
        breaker, clock = self.make(threshold=1, reset_s=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.refusals == 1
        assert breaker.retry_in_s() == pytest.approx(10.0)
        clock.now = 4.0
        assert breaker.retry_in_s() == pytest.approx(6.0)
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()  # the probe
        assert breaker.state == BreakerState.HALF_OPEN

    def test_half_open_single_probe(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        assert not breaker.allow()  # a second caller is refused
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()  # full timeout again
        clock.now = 20.0
        assert breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _clock = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_health_events_and_transitions(self):
        events = []
        breaker, clock = self.make(threshold=1, events=events)
        breaker.record_failure()
        clock.now = 10.0
        breaker.allow()
        breaker.record_success()
        assert [event.kind for event in events] == [
            "breaker-open", "breaker-half-open", "breaker-closed"]
        assert all(isinstance(event, HealthEvent) for event in events)
        assert [state for _t, state in breaker.transitions] == [
            BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED]

    def test_stale_success_cannot_close_an_open_breaker(self):
        # Regression: a redial dialed *before* the breaker opened may
        # land its success while the breaker is OPEN; that stale result
        # must not bypass the reset timeout.
        breaker, _clock = self.make(threshold=1, reset_s=10.0)
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        breaker.record_success()
        assert breaker.state == BreakerState.OPEN
        assert breaker.stale_successes == 1
        assert breaker.retry_in_s() == pytest.approx(10.0)
        assert not breaker.allow()  # the timeout still stands

    def test_concurrent_redials_race_for_one_probe(self):
        # Regression: two redial threads hitting the expired-open
        # breaker together must get exactly one probe and exactly one
        # open -> half-open transition.
        import threading

        breaker, clock = self.make(threshold=1, reset_s=10.0)
        breaker.record_failure()
        clock.now = 10.0
        barrier = threading.Barrier(2)
        grants = []

        def redial():
            barrier.wait()
            grants.append(breaker.allow())

        threads = [threading.Thread(target=redial) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(grants) == [False, True]
        assert breaker.state == BreakerState.HALF_OPEN
        half_opens = [s for _t, s in breaker.transitions
                      if s == BreakerState.HALF_OPEN]
        assert len(half_opens) == 1
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED

"""The pluggable invariant suite matrix cells are judged against.

Each invariant is a pure function over one cell's
:class:`CellObservations` — the reports, cap events, health log,
injected-fault ground truth and (for telemetry cells) the delivery
record a run produced.  Invariants return :class:`Violation` lists;
an empty list is a pass.  They are registered by name via
:func:`invariant`, which is what makes the suite pluggable: a matrix
TOML's ``[invariants] suite`` key selects any subset, and test code
can register extra invariants before expanding a spec.

The built-ins encode the guarantees earlier PRs claimed:

* ``frame-conservation`` — the report stream tiles virtual time
  exactly: one frame per period, no holes, no extras; a truncated
  series is only legal when the monitored pid demonstrably died.
* ``gap-accounting`` — every ``gap=True`` frame is explained by an
  injected fault close enough in time to have caused it.
* ``monotonic-seq`` — telemetry frames arrive in strictly increasing
  per-epoch sequence order (duplicates or reordering fail).
* ``exactly-once`` — every sequence number the server published was
  delivered exactly once, or its loss explicitly declared by a
  replay-eviction gap; silent loss fails.
* ``zero-loss`` — the strict form: *no* frame may be lost at all,
  declared or not.  Replay-enabled streams meet it through RESUME
  replay; a no-replay stream that loses its subscriber mid-run cannot,
  which is exactly the degradation a campaign wants to surface.
* ``cap-adherence`` — after a settle window, non-gap estimates stay
  within tolerance of the cap unless the controller declared the cap
  unattainable.
* ``health-consistency`` — the health log agrees with the injector's
  ground truth: every applied fault surfaced as a health event, and
  no event carries an impossible timestamp.
* ``determinism`` — re-running the cell under the same seed produced
  a bit-identical artifact digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.network import NetworkFaultPlan
from repro.faults.plan import FaultPlan

#: Absolute slack for virtual-time comparisons (the clock accumulates
#: one float addition per quantum; 800 ticks drift ~1e-13).
TIME_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with JSON-ready evidence."""

    invariant: str
    detail: str
    evidence: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "detail": self.detail,
                "evidence": dict(self.evidence)}


@dataclass(frozen=True)
class ReceivedFrame:
    """One telemetry frame as the subscriber saw it."""

    seq: int
    kind: str
    epoch: str


@dataclass
class TelemetryObservations:
    """What one cell's loopback telemetry session delivered."""

    #: Frames in arrival order, sentinel excluded.
    received: Tuple[ReceivedFrame, ...] = ()
    #: Stream seq of the first end-of-run sentinel the client saw;
    #: every seq below it was published during the run.
    sentinel_seq: Optional[int] = None
    #: Inclusive seq ranges declared lost by replay-eviction gaps.
    declared_lost: Tuple[Tuple[int, int], ...] = ()
    #: Times the client re-dialed after losing the connection.
    reconnects: int = 0
    #: Network faults the injector actually fired, as
    #: ``(plan_time_s, description)``.
    injected: Tuple[Tuple[float, str], ...] = ()


@dataclass
class CellObservations:
    """Everything invariants may inspect about one cell run."""

    duration_s: float
    period_s: float
    cap_w: float
    faults: str
    net_faults: str
    #: ``(time_s, period_s, total_w, gap)`` per aggregated report.
    reports: Tuple[Tuple[float, float, float, bool], ...] = ()
    #: ``(time_s, action, estimate_w)`` per control CapEvent.
    cap_events: Tuple[Tuple[float, str, float], ...] = ()
    #: ``(time_s, component, kind, detail)`` — the health log signature.
    health: Tuple[Tuple[float, str, str, str], ...] = ()
    #: Faults the injector actually applied: ``(time_s, label)``.
    applied: Tuple[Tuple[float, str], ...] = ()
    telemetry: Optional[TelemetryObservations] = None
    #: Artifact digests of the primary run and the verification re-run
    #: (None when the determinism re-run was disabled).
    digest: Optional[str] = None
    rerun_digest: Optional[str] = None


InvariantFn = Callable[[CellObservations, "object"], List[Violation]]

#: The registry ``InvariantConfig.suite`` selects from.
INVARIANTS: Dict[str, InvariantFn] = {}


def invariant(name: str) -> Callable[[InvariantFn], InvariantFn]:
    """Register an invariant under *name* (later wins, so tests can
    override a built-in)."""

    def register(fn: InvariantFn) -> InvariantFn:
        INVARIANTS[name] = fn
        return fn

    return register


def evaluate(obs: CellObservations, config) -> List[Violation]:
    """Run the configured suite over one cell's observations."""
    violations: List[Violation] = []
    for name in config.suite:
        violations.extend(INVARIANTS[name](obs, config))
    return violations


# -- built-ins ---------------------------------------------------------


@invariant("frame-conservation")
def frame_conservation(obs: CellObservations, config) -> List[Violation]:
    violations: List[Violation] = []
    expected = int(round(obs.duration_s / obs.period_s))
    for i, (time_s, period_s, _total, _gap) in enumerate(obs.reports):
        want = (i + 1) * obs.period_s
        if abs(time_s - want) > TIME_EPS:
            violations.append(Violation(
                "frame-conservation",
                f"frame {i} at t={time_s:g} breaks the period tiling "
                f"(expected t={want:g})",
                {"frame": i, "time_s": time_s, "expected_s": want}))
            return violations  # later frames are all off by the same hole
        if abs(period_s - obs.period_s) > TIME_EPS:
            violations.append(Violation(
                "frame-conservation",
                f"frame {i} claims period {period_s:g}s, pipeline runs "
                f"at {obs.period_s:g}s",
                {"frame": i, "period_s": period_s}))
    count = len(obs.reports)
    if count > expected:
        violations.append(Violation(
            "frame-conservation",
            f"{count} frames for a {obs.duration_s:g}s run at "
            f"{obs.period_s:g}s ({expected} expected): duplicated frames",
            {"frames": count, "expected": expected}))
    elif count < expected:
        # A shorter series is legal only when the monitored pid died:
        # the sensor reports `pid-lost` and the series ends there.
        lost = [t for t, _c, kind, _d in obs.health if kind == "pid-lost"]
        end_s = count * obs.period_s
        if not lost or min(lost) > end_s + 2 * obs.period_s + TIME_EPS:
            violations.append(Violation(
                "frame-conservation",
                f"only {count}/{expected} frames and no pid loss "
                f"explains the truncation at t={end_s:g}",
                {"frames": count, "expected": expected,
                 "pid_lost_times": lost}))
    return violations


def _fault_windows(spec: str) -> List[Tuple[float, float]]:
    """``(start, end)`` spans during which a plan event can explain
    degradations; one-shots get a zero-length span at their time."""
    if not spec:
        return []
    windows = []
    for event in FaultPlan.parse(spec):
        duration = max(getattr(event, "down_s", 0.0),
                       getattr(event, "duration_s", 0.0))
        windows.append((event.at_s, event.at_s + duration))
    return windows


@invariant("gap-accounting")
def gap_accounting(obs: CellObservations, config) -> List[Violation]:
    violations: List[Violation] = []
    windows = _fault_windows(obs.faults)
    slack = config.gap_window_s
    for i, (time_s, _period, _total, gap) in enumerate(obs.reports):
        if not gap:
            continue
        explained = any(start - TIME_EPS <= time_s <= end + slack + TIME_EPS
                        for start, end in windows)
        if not explained:
            violations.append(Violation(
                "gap-accounting",
                f"gap frame at t={time_s:g} has no injected fault within "
                f"{slack:g}s to explain it",
                {"frame": i, "time_s": time_s,
                 "fault_windows": [[s, e] for s, e in windows]}))
    return violations


@invariant("monotonic-seq")
def monotonic_seq(obs: CellObservations, config) -> List[Violation]:
    if obs.telemetry is None:
        return []
    violations: List[Violation] = []
    last_by_epoch: Dict[str, int] = {}
    for frame in obs.telemetry.received:
        last = last_by_epoch.get(frame.epoch)
        if last is not None and frame.seq <= last:
            violations.append(Violation(
                "monotonic-seq",
                f"seq {frame.seq} arrived after seq {last} in epoch "
                f"{frame.epoch!r} ({frame.kind} frame)",
                {"seq": frame.seq, "previous": last,
                 "epoch": frame.epoch}))
        last_by_epoch[frame.epoch] = max(last or 0, frame.seq)
    return violations


@invariant("exactly-once")
def exactly_once(obs: CellObservations, config) -> List[Violation]:
    telemetry = obs.telemetry
    if telemetry is None or telemetry.sentinel_seq is None:
        return []
    violations: List[Violation] = []
    seen: Dict[int, int] = {}
    for frame in telemetry.received:
        if frame.seq < telemetry.sentinel_seq:
            seen[frame.seq] = seen.get(frame.seq, 0) + 1
    duplicates = sorted(seq for seq, n in seen.items() if n > 1)
    if duplicates:
        violations.append(Violation(
            "exactly-once",
            f"{len(duplicates)} frame(s) delivered more than once "
            f"(first: seq {duplicates[0]})",
            {"duplicate_seqs": duplicates[:16]}))
    missing = [seq for seq in range(telemetry.sentinel_seq)
               if seq not in seen]
    declared = [seq for seq in missing
                if any(lo <= seq <= hi
                       for lo, hi in telemetry.declared_lost)]
    silent = sorted(set(missing) - set(declared))
    if silent:
        violations.append(Violation(
            "exactly-once",
            f"{len(silent)} frame(s) silently lost out of "
            f"{telemetry.sentinel_seq} published (first: seq {silent[0]}; "
            f"no replay-eviction gap declared them)",
            {"lost_seqs": silent[:16],
             "published": telemetry.sentinel_seq,
             "declared_lost": [list(r) for r in telemetry.declared_lost],
             "reconnects": telemetry.reconnects}))
    return violations


@invariant("zero-loss")
def zero_loss(obs: CellObservations, config) -> List[Violation]:
    telemetry = obs.telemetry
    if telemetry is None or telemetry.sentinel_seq is None:
        return []
    seen = {frame.seq for frame in telemetry.received
            if frame.seq < telemetry.sentinel_seq}
    declared = {seq for lo, hi in telemetry.declared_lost
                for seq in range(lo, min(hi, telemetry.sentinel_seq - 1)
                                 + 1)}
    # A declared-lost seq may still carry a received frame: the server
    # sends the eviction gap *in place of* the evicted range, so the
    # payload is gone even when a frame with that seq arrived.
    lost = sorted(declared | {seq for seq in
                              range(telemetry.sentinel_seq)
                              if seq not in seen})
    if not lost:
        return []
    silent = len([seq for seq in lost if seq not in declared])
    return [Violation(
        "zero-loss",
        f"{len(lost)} of {telemetry.sentinel_seq} published frame(s) "
        f"never reached the subscriber ({len(declared)} declared by "
        f"replay eviction, {silent} silent)",
        {"lost_seqs": lost[:16],
         "declared_lost": [list(r) for r in telemetry.declared_lost],
         "published": telemetry.sentinel_seq,
         "reconnects": telemetry.reconnects})]


@invariant("cap-adherence")
def cap_adherence(obs: CellObservations, config) -> List[Violation]:
    """The *converged* estimate respects the cap.

    The controller steps actuators down one grace window at a time, so
    convergence takes time proportional to the initial overshoot; the
    invariant therefore judges the final ``cap_settle_periods``
    reporting periods — the steady tail — and waives everything after
    an explicit ``unattainable`` verdict.
    """
    if obs.cap_w <= 0:
        return []
    tail_s = obs.duration_s - config.cap_settle_periods * obs.period_s
    limit = obs.cap_w * (1.0 + config.cap_tolerance_pct / 100.0)
    unattainable = [t for t, action, _e in obs.cap_events
                    if action == "unattainable"]
    waiver_s = min(unattainable) if unattainable else None
    worst: Optional[Tuple[float, float]] = None
    over = 0
    for time_s, _period, total_w, gap in obs.reports:
        # Frames at t = (i+1)*period: the final N periods are exactly
        # the frames strictly past duration - N*period.
        if gap or time_s <= tail_s + TIME_EPS:
            continue
        if waiver_s is not None and time_s >= waiver_s - TIME_EPS:
            continue
        if total_w > limit:
            over += 1
            if worst is None or total_w > worst[1]:
                worst = (time_s, total_w)
    if worst is None:
        return []
    return [Violation(
        "cap-adherence",
        f"{over} converged frame(s) exceed the {obs.cap_w:g}W cap "
        f"(+{config.cap_tolerance_pct:g}% tolerance); worst "
        f"{worst[1]:.2f}W at t={worst[0]:g}",
        {"cap_w": obs.cap_w, "limit_w": limit, "frames_over": over,
         "worst_w": worst[1], "worst_t_s": worst[0]})]


@invariant("health-consistency")
def health_consistency(obs: CellObservations, config) -> List[Violation]:
    violations: List[Violation] = []
    injected_events = [(t, detail) for t, _c, kind, detail in obs.health
                       if kind == "fault-injected"]
    if len(injected_events) != len(obs.applied):
        violations.append(Violation(
            "health-consistency",
            f"injector applied {len(obs.applied)} fault(s) but the "
            f"health log records {len(injected_events)} "
            f"fault-injected event(s)",
            {"applied": [list(a) for a in obs.applied],
             "health_injected": [list(e) for e in injected_events]}))
    else:
        for (t_applied, label), (t_health, detail) in zip(
                obs.applied, injected_events):
            if label not in detail or abs(t_applied - t_health) > TIME_EPS:
                violations.append(Violation(
                    "health-consistency",
                    f"applied fault {label!r} at t={t_applied:g} does "
                    f"not match health record {detail!r} at "
                    f"t={t_health:g}",
                    {"applied": [t_applied, label],
                     "health": [t_health, detail]}))
    horizon = obs.duration_s + obs.period_s + TIME_EPS
    for t, component, kind, _detail in obs.health:
        if t < -TIME_EPS or t > horizon:
            violations.append(Violation(
                "health-consistency",
                f"health event {kind!r} from {component!r} carries "
                f"impossible time t={t:g} (run is {obs.duration_s:g}s)",
                {"time_s": t, "component": component, "kind": kind}))
    return violations


@invariant("determinism")
def determinism(obs: CellObservations, config) -> List[Violation]:
    if obs.rerun_digest is None:
        return []
    if obs.digest == obs.rerun_digest:
        return []
    return [Violation(
        "determinism",
        "re-running the cell under the same seed produced a different "
        "artifact digest",
        {"digest": obs.digest, "rerun_digest": obs.rerun_digest})]


def net_plan_summary(spec: str) -> Dict[str, int]:
    """Event counts by kind, for report metrics (empty spec → {})."""
    if not spec:
        return {}
    counts: Dict[str, int] = {}
    for event in NetworkFaultPlan.parse(spec):
        kind = type(event).__name__
        counts[kind] = counts.get(kind, 0) + 1
    return counts

"""Delta-debugging failing cells into minimal repros.

A failing matrix cell usually fails for one reason buried in a pile of
coincidental configuration: a fault plan with five events of which one
matters, a governor that is irrelevant, a workload that could be the
cheapest one.  :func:`shrink_cell` reduces the cell while preserving
the *same* invariant violation:

1. **Fault events** — classic ddmin over the cell's fault-plan events,
   then over its network-fault events: remove chunks, keep any removal
   that still reproduces, tighten granularity until 1-minimal.
2. **Axes** — substitute each axis with the matrix's baseline (its
   first declared value) when the failure survives the substitution.

Every candidate is a full cell re-run, so the whole search is bounded
by a run *budget*; when it runs out the best reduction so far is
returned.  The result embeds a standalone one-cell matrix TOML and the
CLI command that re-runs it — any failure becomes a one-line repro.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.network import NetworkFaultPlan
from repro.faults.plan import FaultPlan
from repro.matrix.spec import MatrixCell, MatrixSpec, single_cell_spec


class _Budget:
    """Counts candidate runs; exhaustion conservatively stops reducing."""

    def __init__(self, runs: int) -> None:
        self.remaining = runs
        self.used = 0

    def take(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        self.used += 1
        return True


def ddmin(items: Sequence[object],
          fails: Callable[[Sequence[object]], bool]) -> List[object]:
    """Zeller's ddmin: a minimal sublist of *items* for which *fails*
    still holds.  Assumes ``fails(items)`` is True on entry."""
    items = list(items)
    if fails([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, (len(items) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate and fails(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def _fails_invariant(result_violations: List[Dict[str, object]],
                     target: str) -> bool:
    return any(v["invariant"] == target for v in result_violations)


def shrink_cell(spec: MatrixSpec, cell: MatrixCell, target: str,
                budget: int = 48) -> Dict[str, object]:
    """Reduce *cell* to a minimal cell still violating *target*.

    Returns a JSON-ready record: the minimal axes, the reduced fault
    specs, the standalone repro matrix TOML and its CLI command, plus
    how many candidate runs the search spent.
    """
    from repro.matrix.runner import run_cell
    from repro.matrix.spec import replace_cell

    runs = _Budget(budget)

    def fails(candidate: MatrixCell) -> bool:
        if not runs.take():
            return False
        return _fails_invariant(run_cell(candidate).violations, target)

    current = cell

    # Phase 1: ddmin the fault plans, events-first (usually the axis
    # with the most redundancy).  Plans are rebuilt through to_spec()
    # so the reduced cell stays a copy-pasteable spec string.
    if current.faults:
        events = list(FaultPlan.parse(current.faults))

        def fails_with_faults(subset: Sequence[object]) -> bool:
            reduced = FaultPlan(tuple(subset)).to_spec()
            return fails(replace_cell(current, faults=reduced))

        kept = ddmin(events, fails_with_faults)
        current = replace_cell(current,
                               faults=FaultPlan(tuple(kept)).to_spec())
    if current.net_faults:
        events = list(NetworkFaultPlan.parse(current.net_faults))

        def fails_with_nets(subset: Sequence[object]) -> bool:
            reduced = NetworkFaultPlan(tuple(subset)).to_spec()
            return fails(replace_cell(current, net_faults=reduced))

        kept = ddmin(events, fails_with_nets)
        current = replace_cell(
            current, net_faults=NetworkFaultPlan(tuple(kept)).to_spec())

    # Phase 2: fold axes back to the matrix baseline (first declared
    # value) wherever the violation survives the substitution.
    baselines: List[Tuple[str, object]] = [
        ("cpu", spec.cpus[0]),
        ("governor", spec.governors[0]),
        ("workload", spec.workloads[0]),
        ("pipeline", spec.pipelines[0]),
        ("cap_w", spec.caps_w[0]),
    ]
    for attr, baseline in baselines:
        if getattr(current, attr) == baseline:
            continue
        candidate = replace_cell(current, **{attr: baseline})
        if fails(candidate):
            current = candidate

    repro_spec = single_cell_spec(
        current, name=f"{spec.name}-repro-{cell.index}")
    matrix_toml = repro_spec.to_toml()
    command = "python -m repro matrix run --matrix <repro.toml>"
    return {
        "target_invariant": target,
        "from_cell": cell.cell_id,
        "axes": current.axes(),
        "faults": current.faults,
        "net_faults": current.net_faults,
        "events_removed": (
            (len(FaultPlan.parse(cell.faults)) if cell.faults else 0)
            + (len(NetworkFaultPlan.parse(cell.net_faults))
               if cell.net_faults else 0)
            - (len(FaultPlan.parse(current.faults))
               if current.faults else 0)
            - (len(NetworkFaultPlan.parse(current.net_faults))
               if current.net_faults else 0)),
        "runs_used": runs.used,
        "matrix_toml": matrix_toml,
        "command": command,
    }


def reverify(shrunk: Dict[str, object]) -> bool:
    """Whether a shrunk repro's standalone matrix still triggers the
    same invariant violation (the acceptance check for any shrink)."""
    from repro.matrix.runner import run_cell

    repro_spec = MatrixSpec.from_toml(shrunk["matrix_toml"])
    (cell,) = repro_spec.cells()
    result = run_cell(cell)
    return _fails_invariant(result.violations,
                            shrunk["target_invariant"])

"""Declarative scenario matrices: one TOML, a cartesian product of cells.

A :class:`MatrixSpec` names the axes of a robustness campaign — CPU
presets, governors, workloads, fault plans, network-fault plans,
pipeline variants and power caps — and expands them into the full
cartesian product of :class:`MatrixCell` runs.  Each cell is a seeded,
virtual-time pipeline run evaluated against the invariant suite in
:mod:`repro.matrix.invariants`; :mod:`repro.matrix.runner` executes
cells (fanned out over :func:`repro.core.parallel.run_tasks` workers)
and :mod:`repro.matrix.shrink` reduces failing cells to minimal repros.

The spec follows the same conventions as
:class:`~repro.core.pipeline.PipelineSpec`: frozen values, lossless
TOML/JSON round-trips through :mod:`repro.configio`, and unknown keys
rejected loudly so typos never silently change a campaign.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import configio
from repro.errors import ConfigurationError
from repro.faults.network import (ConnectionReset, NetworkFaultPlan,
                                  Partition, SlowReader)
from repro.faults.plan import FaultPlan
from repro.simcpu.spec import PRESETS

#: Governor names a matrix axis may use.  ``userspace`` is excluded:
#: it needs an explicit pinned frequency, which is not an axis value.
GOVERNOR_NAMES = ("performance", "powersave", "ondemand", "conservative")

#: Workload names a matrix axis may use (the CLI's workload set).
WORKLOAD_NAMES = ("cpu", "memory", "mixed", "specjbb")

#: The built-in invariants, in evaluation order.
DEFAULT_SUITE = (
    "frame-conservation",
    "gap-accounting",
    "monotonic-seq",
    "exactly-once",
    "zero-loss",
    "cap-adherence",
    "health-consistency",
    "determinism",
)


def _require_keys(payload: Dict[str, object], known: Sequence[str],
                  what: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ConfigurationError(
            f"unknown {what} key(s): {', '.join(unknown)}; "
            f"known keys: {', '.join(sorted(known))}")


@dataclass(frozen=True)
class PipelineVariant:
    """One named pipeline configuration a matrix sweeps over.

    ``replay_window=None`` runs the cell simulation-only (no telemetry
    session); any integer — including 0, which disables the replay
    ring and therefore RESUME — runs a loopback TCP telemetry session
    with the network-fault plan armed on the subscriber's socket.
    """

    name: str
    replay_window: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pipeline variant needs a name")
        if self.replay_window is not None and self.replay_window < 0:
            raise ConfigurationError(
                f"pipeline variant {self.name!r}: replay_window "
                f"must be >= 0, got {self.replay_window}")

    @property
    def telemetry(self) -> bool:
        return self.replay_window is not None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"name": self.name}
        if self.replay_window is not None:
            payload["replay_window"] = self.replay_window
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PipelineVariant":
        _require_keys(payload, ("name", "replay_window"),
                      "pipeline variant")
        window = payload.get("replay_window")
        return cls(name=str(payload.get("name", "")),
                   replay_window=None if window is None else int(window))


@dataclass(frozen=True)
class InvariantConfig:
    """Which invariants run per cell, and their tolerances."""

    suite: Tuple[str, ...] = DEFAULT_SUITE
    #: Cap overshoot allowed after settling, percent of the cap.
    cap_tolerance_pct: float = 10.0
    #: Reporting periods at the *end* of the run cap-adherence judges
    #: (the converged tail; everything earlier is settling time).
    cap_settle_periods: int = 6
    #: Seconds after a fault window within which a gap marker is still
    #: "explained" by that fault.
    gap_window_s: float = 2.0
    #: Whether the determinism invariant re-runs the cell simulation
    #: under the same seed and compares digests.
    rerun: bool = True

    def __post_init__(self) -> None:
        from repro.matrix.invariants import INVARIANTS
        unknown = sorted(set(self.suite) - set(INVARIANTS))
        if unknown:
            raise ConfigurationError(
                f"unknown invariant(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(INVARIANTS))}")
        if self.cap_tolerance_pct < 0:
            raise ConfigurationError("cap_tolerance_pct must be >= 0")
        if self.cap_settle_periods < 0:
            raise ConfigurationError("cap_settle_periods must be >= 0")
        if self.gap_window_s < 0:
            raise ConfigurationError("gap_window_s must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": list(self.suite),
            "cap_tolerance_pct": self.cap_tolerance_pct,
            "cap_settle_periods": self.cap_settle_periods,
            "gap_window_s": self.gap_window_s,
            "rerun": self.rerun,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "InvariantConfig":
        _require_keys(payload, ("suite", "cap_tolerance_pct",
                                "cap_settle_periods", "gap_window_s",
                                "rerun"), "invariants")
        kwargs: Dict[str, object] = {}
        if "suite" in payload:
            kwargs["suite"] = tuple(str(n) for n in payload["suite"])
        if "cap_tolerance_pct" in payload:
            kwargs["cap_tolerance_pct"] = float(payload["cap_tolerance_pct"])
        if "cap_settle_periods" in payload:
            kwargs["cap_settle_periods"] = int(payload["cap_settle_periods"])
        if "gap_window_s" in payload:
            kwargs["gap_window_s"] = float(payload["gap_window_s"])
        if "rerun" in payload:
            kwargs["rerun"] = bool(payload["rerun"])
        return cls(**kwargs)


@dataclass(frozen=True)
class MatrixCell:
    """One fully-resolved point of the cartesian product."""

    index: int
    cell_id: str
    cpu: str
    governor: str
    workload: str
    faults: str
    net_faults: str
    pipeline: PipelineVariant
    cap_w: float
    seed: int
    duration_s: float
    period_s: float
    invariants: InvariantConfig = field(default_factory=InvariantConfig)
    xfail: bool = False

    def axes(self) -> Dict[str, object]:
        """The cell's coordinates, JSON-ready (for reports and repros)."""
        return {
            "cpu": self.cpu,
            "governor": self.governor,
            "workload": self.workload,
            "faults": self.faults,
            "net_faults": self.net_faults,
            "pipeline": self.pipeline.to_dict(),
            "cap_w": self.cap_w,
        }


class MatrixSpec:
    """An immutable scenario matrix, loadable from one TOML file."""

    _KEYS = ("name", "seed", "duration_s", "period_s", "xfail", "axes",
             "pipelines", "invariants")
    _AXIS_KEYS = ("cpu", "governor", "workload", "faults", "net_faults",
                  "cap_w")

    def __init__(self, name: str = "matrix", seed: int = 0,
                 duration_s: float = 8.0, period_s: float = 0.5,
                 cpus: Sequence[str] = ("i3-2120",),
                 governors: Sequence[str] = ("performance",),
                 workloads: Sequence[str] = ("cpu",),
                 faults: Sequence[str] = ("",),
                 net_faults: Sequence[str] = ("",),
                 pipelines: Sequence[PipelineVariant] = (
                     PipelineVariant("sim"),),
                 caps_w: Sequence[float] = (0.0,),
                 invariants: Optional[InvariantConfig] = None,
                 xfail: Sequence[str] = ()) -> None:
        self.name = name
        self.seed = int(seed)
        self.duration_s = float(duration_s)
        self.period_s = float(period_s)
        self.cpus = tuple(cpus)
        self.governors = tuple(governors)
        self.workloads = tuple(workloads)
        self.faults = tuple(faults)
        self.net_faults = tuple(net_faults)
        self.pipelines = tuple(pipelines)
        self.caps_w = tuple(float(c) for c in caps_w)
        self.invariants = (invariants if invariants is not None
                           else InvariantConfig())
        self.xfail = tuple(xfail)
        self._validate()

    # -- validation -----------------------------------------------------

    def _validate(self) -> None:
        if not self.name:
            raise ConfigurationError("matrix needs a name")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.period_s <= 0 or self.period_s > self.duration_s:
            raise ConfigurationError(
                "period_s must be positive and <= duration_s")
        for axis, values in (("cpu", self.cpus),
                             ("governor", self.governors),
                             ("workload", self.workloads),
                             ("faults", self.faults),
                             ("net_faults", self.net_faults),
                             ("pipelines", self.pipelines),
                             ("cap_w", self.caps_w)):
            if not values:
                raise ConfigurationError(f"axis {axis!r} must not be empty")
            if len(set(values)) != len(values):
                raise ConfigurationError(
                    f"axis {axis!r} has duplicate values")
        for cpu in self.cpus:
            if cpu not in PRESETS:
                raise ConfigurationError(
                    f"unknown cpu preset {cpu!r}; known: "
                    f"{', '.join(sorted(PRESETS))}")
        for governor in self.governors:
            if governor not in GOVERNOR_NAMES:
                raise ConfigurationError(
                    f"unknown governor {governor!r}; known: "
                    f"{', '.join(GOVERNOR_NAMES)}")
        for workload in self.workloads:
            if workload not in WORKLOAD_NAMES:
                raise ConfigurationError(
                    f"unknown workload {workload!r}; known: "
                    f"{', '.join(WORKLOAD_NAMES)}")
        names = [variant.name for variant in self.pipelines]
        if len(set(names)) != len(names):
            raise ConfigurationError("pipeline variant names must be unique")
        for cap in self.caps_w:
            if cap < 0:
                raise ConfigurationError(
                    f"cap_w values must be >= 0 (0 disables), got {cap}")
        for spec in self.faults:
            FaultPlan.parse(spec)  # raises ConfigurationError on bad specs
        for spec in self.net_faults:
            self._validate_net(spec)

    def _validate_net(self, spec: str) -> None:
        """Network plans must resolve inside the virtual run.

        The injector is driven by the kernel's virtual clock, which
        stops advancing when the run ends: a one-shot scheduled at or
        after ``duration_s``, or a window reaching past it, would hang
        the post-run drain forever instead of firing.
        """
        plan = NetworkFaultPlan.parse(spec)
        for event in plan:
            end = event.at_s + getattr(event, "duration_s", 0.0)
            if isinstance(event, (Partition, SlowReader)):
                if end > self.duration_s:
                    raise ConfigurationError(
                        f"network fault window {event.describe()!r} "
                        f"reaches past the run ({end:g}s > "
                        f"{self.duration_s:g}s duration)")
            elif event.at_s >= self.duration_s:
                raise ConfigurationError(
                    f"network fault {event.describe()!r} is scheduled "
                    f"at/after the end of the run "
                    f"({self.duration_s:g}s duration)")

    # -- expansion ------------------------------------------------------

    def axis_sizes(self) -> Dict[str, int]:
        return {
            "cpu": len(self.cpus),
            "governor": len(self.governors),
            "workload": len(self.workloads),
            "faults": len(self.faults),
            "net_faults": len(self.net_faults),
            "pipeline": len(self.pipelines),
            "cap_w": len(self.caps_w),
        }

    def __len__(self) -> int:
        count = 1
        for size in self.axis_sizes().values():
            count *= size
        return count

    @staticmethod
    def _plan_label(prefix: str, index: int, spec: str) -> str:
        return "none" if not spec.strip() else f"{prefix}{index}"

    def cell_id(self, cpu: str, governor: str, workload: str,
                fault_index: int, net_index: int,
                variant: PipelineVariant, cap_w: float) -> str:
        return "/".join((
            f"cpu={cpu}",
            f"gov={governor}",
            f"wl={workload}",
            f"faults={self._plan_label('f', fault_index, self.faults[fault_index])}",
            f"net={self._plan_label('n', net_index, self.net_faults[net_index])}",
            f"pipe={variant.name}",
            f"cap={cap_w:g}",
        ))

    def cells(self) -> Tuple[MatrixCell, ...]:
        """Expand the axes into the full cartesian product.

        Cell order (and therefore each cell's ``seed = matrix seed +
        index``) is the deterministic product order of the declared
        axis values; re-expanding the same spec always yields the
        identical cells.
        """
        expanded: List[MatrixCell] = []
        product = itertools.product(
            self.cpus, self.governors, self.workloads,
            range(len(self.faults)), range(len(self.net_faults)),
            self.pipelines, self.caps_w)
        for index, (cpu, governor, workload, fi, ni, variant,
                    cap_w) in enumerate(product):
            cell_id = self.cell_id(cpu, governor, workload, fi, ni,
                                   variant, cap_w)
            expanded.append(MatrixCell(
                index=index, cell_id=cell_id, cpu=cpu, governor=governor,
                workload=workload, faults=self.faults[fi],
                net_faults=self.net_faults[ni], pipeline=variant,
                cap_w=cap_w, seed=self.seed + index,
                duration_s=self.duration_s, period_s=self.period_s,
                invariants=self.invariants,
                xfail=self.expected_to_fail(cell_id)))
        return tuple(expanded)

    def expected_to_fail(self, cell_id: str) -> bool:
        """Whether *cell_id* matches any declared ``xfail`` pattern."""
        return any(fnmatch(cell_id, pattern) for pattern in self.xfail)

    # -- round-trips ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "period_s": self.period_s,
            "xfail": list(self.xfail),
            "axes": {
                "cpu": list(self.cpus),
                "governor": list(self.governors),
                "workload": list(self.workloads),
                "faults": list(self.faults),
                "net_faults": list(self.net_faults),
                "cap_w": list(self.caps_w),
            },
            "pipelines": [variant.to_dict() for variant in self.pipelines],
            "invariants": self.invariants.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MatrixSpec":
        _require_keys(payload, cls._KEYS, "matrix")
        axes = dict(payload.get("axes", {}))
        _require_keys(axes, cls._AXIS_KEYS, "matrix axes")
        kwargs: Dict[str, object] = {}
        if "name" in payload:
            kwargs["name"] = str(payload["name"])
        if "seed" in payload:
            kwargs["seed"] = int(payload["seed"])
        if "duration_s" in payload:
            kwargs["duration_s"] = float(payload["duration_s"])
        if "period_s" in payload:
            kwargs["period_s"] = float(payload["period_s"])
        if "xfail" in payload:
            kwargs["xfail"] = tuple(str(p) for p in payload["xfail"])
        if "cpu" in axes:
            kwargs["cpus"] = tuple(str(v) for v in axes["cpu"])
        if "governor" in axes:
            kwargs["governors"] = tuple(str(v) for v in axes["governor"])
        if "workload" in axes:
            kwargs["workloads"] = tuple(str(v) for v in axes["workload"])
        if "faults" in axes:
            kwargs["faults"] = tuple(str(v) for v in axes["faults"])
        if "net_faults" in axes:
            kwargs["net_faults"] = tuple(str(v) for v in axes["net_faults"])
        if "cap_w" in axes:
            kwargs["caps_w"] = tuple(float(v) for v in axes["cap_w"])
        if "pipelines" in payload:
            kwargs["pipelines"] = tuple(
                PipelineVariant.from_dict(dict(entry))
                for entry in payload["pipelines"])
        if "invariants" in payload:
            kwargs["invariants"] = InvariantConfig.from_dict(
                dict(payload["invariants"]))
        return cls(**kwargs)

    def to_toml(self) -> str:
        return configio.dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "MatrixSpec":
        return cls.from_dict(configio.loads_toml(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "MatrixSpec":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read matrix file {path}: {exc}") from None
        return cls.from_toml(text)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatrixSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"MatrixSpec(name={self.name!r}, cells={len(self)}, "
                f"seed={self.seed})")


def single_cell_spec(cell: MatrixCell, name: str) -> MatrixSpec:
    """A standalone one-cell matrix reproducing *cell* exactly.

    Fault specs are flattened through ``parse().to_spec()`` first so a
    seeded ``random:`` campaign reproduces as its explicit events and
    the repro no longer depends on the original cell's seed or index.
    """
    faults = FaultPlan.parse(cell.faults).to_spec() if cell.faults else ""
    nets = (NetworkFaultPlan.parse(cell.net_faults).to_spec()
            if cell.net_faults else "")
    return MatrixSpec(
        name=name, seed=cell.seed, duration_s=cell.duration_s,
        period_s=cell.period_s, cpus=(cell.cpu,),
        governors=(cell.governor,), workloads=(cell.workload,),
        faults=(faults,), net_faults=(nets,), pipelines=(cell.pipeline,),
        caps_w=(cell.cap_w,), invariants=cell.invariants)


def replace_cell(cell: MatrixCell, **changes: object) -> MatrixCell:
    """``dataclasses.replace`` for cells, recomputing nothing: the
    shrinker keeps the original id/seed so a reduced candidate is
    traceable back to the failing cell it came from."""
    return replace(cell, **changes)

"""Scenario-matrix chaos campaigns with runtime invariant checking.

One TOML file declares the axes of a robustness campaign; the package
expands them into the cartesian product of cells, runs each cell as a
seeded virtual-time pipeline (optionally fanned out over worker
processes), judges every run against a pluggable invariant suite, and
delta-debugs failing cells into minimal one-line repros.

* :mod:`repro.matrix.spec` — :class:`MatrixSpec` /
  :class:`MatrixCell` / :class:`PipelineVariant` /
  :class:`InvariantConfig`, with lossless TOML round-trips,
* :mod:`repro.matrix.invariants` — the :func:`invariant` registry and
  the built-in suite (frame conservation, gap accounting, monotonic
  seq, exactly-once delivery, cap adherence, health consistency,
  determinism),
* :mod:`repro.matrix.runner` — :func:`run_cell` / :func:`run_matrix`
  and the JSON campaign report,
* :mod:`repro.matrix.shrink` — :func:`ddmin` / :func:`shrink_cell` /
  :func:`reverify` minimal-repro reduction.
"""

from repro.matrix.invariants import (INVARIANTS, CellObservations,
                                     TelemetryObservations, Violation,
                                     evaluate, invariant)
from repro.matrix.runner import (CellResult, bench_headline, run_cell,
                                 run_matrix)
from repro.matrix.shrink import ddmin, reverify, shrink_cell
from repro.matrix.spec import (DEFAULT_SUITE, GOVERNOR_NAMES,
                               WORKLOAD_NAMES, InvariantConfig, MatrixCell,
                               MatrixSpec, PipelineVariant,
                               single_cell_spec)

__all__ = [
    "CellObservations",
    "CellResult",
    "DEFAULT_SUITE",
    "GOVERNOR_NAMES",
    "INVARIANTS",
    "InvariantConfig",
    "MatrixCell",
    "MatrixSpec",
    "PipelineVariant",
    "TelemetryObservations",
    "Violation",
    "WORKLOAD_NAMES",
    "bench_headline",
    "ddmin",
    "evaluate",
    "invariant",
    "reverify",
    "run_cell",
    "run_matrix",
    "shrink_cell",
    "single_cell_spec",
]

"""Execute matrix cells and whole campaigns.

One cell = one seeded virtual-time pipeline: a fresh
:class:`~repro.os.kernel.SimKernel` on the cell's CPU preset and
governor, the cell's workload spawned on it, a monitoring pipeline at
the cell's period with the cell's fault plan and power cap, and — for
telemetry variants — a loopback TCP telemetry session whose subscriber
socket is wrapped by the cell's
:class:`~repro.faults.network.NetworkFaultInjector` driven by the
*kernel's* virtual clock, so network chaos lands at deterministic
points of the run.

The sim side is deterministic end to end (same seed → bit-identical
reports, health log and cap events; the ``determinism`` invariant
re-runs it to prove that per cell).  The telemetry side crosses real
threads and sockets, so frame *identity* under chaos can vary run to
run — but the invariant verdicts are designed to be stable: a reset
against a no-replay stream always silently loses at least one frame,
and a replay-enabled stream always recovers every frame.

Campaigns fan cells out over :func:`repro.core.parallel.run_tasks`
worker processes and assemble one JSON-ready report; failing cells are
handed to :mod:`repro.matrix.shrink` for delta-debugging.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import HealthEvent
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.parallel import run_tasks
from repro.core.reporters import InMemoryReporter
from repro.errors import ReproError
from repro.faults.network import NetworkFaultInjector, NetworkFaultPlan
from repro.matrix.invariants import (CellObservations, ReceivedFrame,
                                     TelemetryObservations, Violation,
                                     evaluate, net_plan_summary)
from repro.matrix.spec import MatrixCell, MatrixSpec
from repro.os.governor import (ConservativeGovernor, OndemandGovernor,
                               PerformanceGovernor, PowersaveGovernor)
from repro.os.kernel import SimKernel
from repro.simcpu.spec import preset
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress

GOVERNORS = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
}

WORKLOADS = {
    "cpu": lambda duration: CpuStress(utilization=1.0, threads=4,
                                      duration_s=duration),
    "memory": lambda duration: MemoryStress(utilization=1.0, threads=4,
                                            duration_s=duration),
    "mixed": lambda duration: MixedStress(utilization=1.0, threads=4,
                                          duration_s=duration),
    "specjbb": lambda duration: SpecJbbWorkload(duration_s=duration,
                                                threads=4),
}

#: The fixed per-frequency calibration every cell's estimator uses
#: (the fault-suite fixture model): cells compare *configurations*,
#: not model quality, so a learned model would only add noise.
MODEL_COEFFS = {"instructions": 3e-9, "cache-references": 2e-8,
                "cache-misses": 2e-7}
MODEL_IDLE_W = 31.48

_SENTINEL_KIND = "matrix-sentinel"


def _model_for(cpu: str) -> PowerModel:
    frequencies = preset(cpu).frequencies_hz
    return PowerModel(
        idle_w=MODEL_IDLE_W,
        formulas=[FrequencyFormula(f, dict(MODEL_COEFFS))
                  for f in frequencies],
        name=f"matrix-{cpu}")


def _poll(predicate: Callable[[], bool], timeout_s: float) -> bool:
    """Busy-wait (1 ms steps) until *predicate* holds; False on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return predicate()


@dataclass
class _SimArtifacts:
    """What one simulation pass produced (telemetry excluded)."""

    reports: Tuple[Tuple[float, float, float, bool], ...]
    cap_events: Tuple[Tuple[float, str, float], ...]
    health: Tuple[Tuple[float, str, str, str], ...]
    applied: Tuple[Tuple[float, str], ...]
    energy_j: float
    telemetry: Optional[TelemetryObservations] = None

    def digest(self) -> str:
        """A stable content hash of the deterministic artifacts.

        Telemetry observations are excluded on purpose: thread and
        socket timing make delivery details run-dependent, while the
        virtual-time sim artifacts must be bit-identical per seed.
        """
        payload = json.dumps({
            "reports": [list(r) for r in self.reports],
            "cap_events": [list(e) for e in self.cap_events],
            "health": [list(h) for h in self.health],
            "applied": [list(a) for a in self.applied],
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


def _execute(cell: MatrixCell, with_telemetry: bool) -> _SimArtifacts:
    """Run one cell's pipeline to completion and collect artifacts."""
    kernel = SimKernel(preset(cell.cpu),
                       governor_factory=GOVERNORS[cell.governor])
    api = PowerAPI(kernel, _model_for(cell.cpu), period_s=cell.period_s)
    try:
        pid = kernel.spawn(WORKLOADS[cell.workload](cell.duration_s),
                           name=f"{cell.workload}-0")
        builder = api.monitor(pid).every(cell.period_s)
        if cell.faults:
            builder = builder.with_faults(cell.faults)
        if cell.cap_w > 0:
            builder = builder.cap(cell.cap_w)
        memory = InMemoryReporter()
        handle = builder.to(memory)
        session = None
        if with_telemetry and cell.pipeline.telemetry:
            session = _TelemetrySession(api, kernel, cell, pid)
        if session is None:
            api.run(cell.duration_s)
            api.flush()
        else:
            with session:
                session.drive()
        telemetry = session.observations() if session is not None else None
        return _SimArtifacts(
            reports=tuple((r.time_s, r.period_s, r.total_w, r.gap)
                          for r in memory.aggregated),
            cap_events=tuple((e.time_s, e.action, e.estimate_w)
                             for e in memory.cap_events),
            health=tuple(handle.health.signature()),
            applied=tuple(api.injector.applied) if api.injector else (),
            energy_j=sum(r.total_w * r.period_s
                         for r in memory.aggregated),
            telemetry=telemetry)
    finally:
        api.shutdown()


class _TelemetrySession:
    """A loopback subscriber under network chaos, driven in lock-step.

    The main thread advances virtual time one period at a time and
    waits (bounded) for the subscriber to drain what was published, so
    the set of frames in flight when a fault fires stays small and the
    verdict (lost vs. recovered) deterministic.  After the run a
    sentinel health frame is re-published until the subscriber sees
    one — its stream seq then bounds the set of frames that *must*
    have been delivered for exactly-once to hold.
    """

    def __init__(self, api: PowerAPI, kernel: SimKernel, cell: MatrixCell,
                 pid: int) -> None:
        from repro.telemetry.client import ReconnectPolicy, TelemetryClient

        self._api = api
        self._kernel = kernel
        self._cell = cell
        self._server = api.serve_telemetry(
            host="127.0.0.1", port=0, pids=(pid,),
            replay_window=cell.pipeline.replay_window)
        plan = (NetworkFaultPlan.parse(cell.net_faults)
                if cell.net_faults else NetworkFaultPlan())
        # Virtual clock + no-op sleep: chaos fires at exact sim times.
        self._injector = NetworkFaultInjector(
            plan, clock=lambda: kernel.time_s, sleep=lambda _s: None)
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-matrix-")
        self._client = TelemetryClient(
            "127.0.0.1", self._server.port,
            reconnect=ReconnectPolicy(base_s=0.002, factor=1.5,
                                      max_s=0.02),
            connect_timeout_s=2.0, read_timeout_s=2.0,
            spool=self._tmp.name, transport=self._injector.wrap)
        self._received: List[ReceivedFrame] = []
        self._declared: List[Tuple[int, int]] = []
        self._sentinel_seq: Optional[int] = None
        self._collector = threading.Thread(target=self._collect,
                                           daemon=True)
        self._collector.start()

    def __enter__(self) -> "_TelemetrySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self._client.close()
        self._collector.join(timeout=5.0)
        self._tmp.cleanup()

    # -- subscriber side -----------------------------------------------

    def _collect(self) -> None:
        from repro.errors import TelemetryError
        from repro.telemetry.wire import (GapTelemetry, Heartbeat,
                                          HealthTelemetry, ReportEvent)
        try:
            for event in self._client.events():
                epoch = self._client.stream_epoch or ""
                if isinstance(event, ReportEvent):
                    self._received.append(ReceivedFrame(
                        event.seq, "report", epoch))
                elif isinstance(event, HealthTelemetry):
                    if event.event.kind == _SENTINEL_KIND:
                        self._sentinel_seq = event.seq
                        return
                    self._received.append(ReceivedFrame(
                        event.seq, "health", epoch))
                elif isinstance(event, GapTelemetry):
                    if event.evicted_from is not None:
                        self._declared.append((event.evicted_from,
                                               event.evicted_through))
                    self._received.append(ReceivedFrame(
                        event.seq, "gap", epoch))
                elif isinstance(event, Heartbeat):
                    continue
        except TelemetryError:
            return

    # -- driver side ---------------------------------------------------

    def _published(self) -> int:
        server = self._server
        return (server.reports_published + server.health_published
                + server.gaps_published)

    def drive(self) -> None:
        cell = self._cell
        periods = max(1, int(round(cell.duration_s / cell.period_s)))
        for _ in range(periods):
            # Lock-step pacing: wait for a live subscriber, advance one
            # period, then give the stream a bounded chance to drain.
            # Both waits are bounded, not barriers: a partitioned
            # subscriber cannot reconnect until virtual time moves, so
            # the driver must keep advancing through its absence.
            self._server.wait_for(
                lambda: self._server.subscriber_count >= 1, timeout=0.35)
            self._api.run(cell.period_s)
            target = self._published()
            _poll(lambda: len(self._received) >= target
                  or self._server.subscriber_count == 0, 0.2)
        self._api.flush()
        deadline = time.monotonic() + 5.0
        while self._sentinel_seq is None and time.monotonic() < deadline:
            self._server.publish_health(HealthEvent(
                time_s=self._kernel.time_s, component="matrix",
                kind=_SENTINEL_KIND, detail=cell.cell_id))
            _poll(lambda: self._sentinel_seq is not None, 0.02)

    def observations(self) -> TelemetryObservations:
        return TelemetryObservations(
            received=tuple(self._received),
            sentinel_seq=self._sentinel_seq,
            declared_lost=tuple(self._declared),
            reconnects=self._client.reconnects,
            injected=tuple(self._injector.injected))


@dataclass
class CellResult:
    """One cell's verdict, JSON-ready."""

    cell_id: str
    index: int
    axes: Dict[str, object]
    ok: bool
    xfail: bool
    violations: List[Dict[str, object]]
    metrics: Dict[str, object]
    wall_s: float
    shrunk: Optional[Dict[str, object]] = None

    @property
    def unexpected(self) -> bool:
        """Failing without an xfail mark, or passing with one."""
        return self.ok == self.xfail

    @property
    def outcome(self) -> str:
        if self.ok:
            return "xpass" if self.xfail else "pass"
        return "xfail" if self.xfail else "fail"

    def to_dict(self) -> Dict[str, object]:
        payload = {
            "cell_id": self.cell_id,
            "index": self.index,
            "axes": self.axes,
            "ok": self.ok,
            "xfail": self.xfail,
            "outcome": self.outcome,
            "unexpected": self.unexpected,
            "violations": self.violations,
            "metrics": self.metrics,
            "wall_s": self.wall_s,
        }
        if self.shrunk is not None:
            payload["shrunk"] = self.shrunk
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CellResult":
        return cls(cell_id=payload["cell_id"], index=payload["index"],
                   axes=payload["axes"], ok=payload["ok"],
                   xfail=payload["xfail"],
                   violations=payload["violations"],
                   metrics=payload["metrics"], wall_s=payload["wall_s"],
                   shrunk=payload.get("shrunk"))


def observe_cell(cell: MatrixCell) -> CellObservations:
    """Run one cell (and its determinism re-run) into observations."""
    primary = _execute(cell, with_telemetry=True)
    rerun_digest = None
    if cell.invariants.rerun and "determinism" in cell.invariants.suite:
        rerun_digest = _execute(cell, with_telemetry=False).digest()
    return CellObservations(
        duration_s=cell.duration_s, period_s=cell.period_s,
        cap_w=cell.cap_w, faults=cell.faults,
        net_faults=cell.net_faults, reports=primary.reports,
        cap_events=primary.cap_events, health=primary.health,
        applied=primary.applied, telemetry=primary.telemetry,
        digest=primary.digest(), rerun_digest=rerun_digest)


def run_cell(cell: MatrixCell) -> CellResult:
    """Run one cell and judge it against its invariant suite."""
    started = time.monotonic()
    try:
        obs = observe_cell(cell)
        violations = evaluate(obs, cell.invariants)
        metrics = _metrics(obs)
    except ReproError as exc:
        # A cell whose pipeline cannot even run is a failing cell, not
        # a crashed campaign: surface it as a synthetic violation.
        violations = [Violation(
            "harness", f"cell raised {type(exc).__name__}: {exc}")]
        metrics = {}
    return CellResult(
        cell_id=cell.cell_id, index=cell.index, axes=cell.axes(),
        ok=not violations, xfail=cell.xfail,
        violations=[v.to_dict() for v in violations], metrics=metrics,
        wall_s=round(time.monotonic() - started, 4))


def _metrics(obs: CellObservations) -> Dict[str, object]:
    metrics: Dict[str, object] = {
        "frames": len(obs.reports),
        "gap_frames": sum(1 for r in obs.reports if r[3]),
        "health_events": len(obs.health),
        "faults_applied": len(obs.applied),
        "cap_events": len(obs.cap_events),
        "energy_j": round(sum(r[1] * r[2] for r in obs.reports), 6),
    }
    telemetry = obs.telemetry
    if telemetry is not None:
        metrics["telemetry"] = {
            "published": telemetry.sentinel_seq,
            "received": len(telemetry.received),
            "reconnects": telemetry.reconnects,
            "net_faults_injected": len(telemetry.injected),
            "declared_lost": sum(hi - lo + 1
                                 for lo, hi in telemetry.declared_lost),
            "plan": net_plan_summary(obs.net_faults),
        }
    return metrics


def _run_cell_task(payload: Tuple[Dict[str, object], int]
                   ) -> Dict[str, object]:
    """Worker entry point: rebuild the cell from the spec dict (cells
    hold live variant/invariant objects; the dict form is what travels
    across the process boundary)."""
    spec_dict, index = payload
    spec = MatrixSpec.from_dict(spec_dict)
    return run_cell(spec.cells()[index]).to_dict()


def run_matrix(spec: MatrixSpec, workers: int = 1, shrink: bool = True,
               cell_filter: Optional[str] = None,
               max_shrink_cells: int = 4, shrink_budget: int = 48,
               log: Optional[Callable[[str], None]] = None
               ) -> Dict[str, object]:
    """Run a campaign and return the JSON-ready report.

    *cell_filter* is an fnmatch pattern over cell ids (run a subset);
    failing cells (up to *max_shrink_cells*) are delta-debugged into
    minimal repros when *shrink* is set.
    """
    from fnmatch import fnmatch

    from repro.matrix.shrink import shrink_cell

    cells = spec.cells()
    if cell_filter:
        cells = tuple(c for c in cells
                      if fnmatch(c.cell_id, cell_filter)
                      or str(c.index) == cell_filter)
    say = log if log is not None else (lambda _msg: None)
    say(f"matrix {spec.name!r}: {len(cells)} cell(s), "
        f"{workers or 'auto'} worker(s)")
    started = time.monotonic()
    spec_dict = spec.to_dict()
    payloads = [(spec_dict, cell.index) for cell in cells]
    results = [CellResult.from_dict(raw) for raw in
               run_tasks(_run_cell_task, payloads, workers=workers)]
    wall_s = time.monotonic() - started
    by_index = {cell.index: cell for cell in cells}
    shrunk_count = 0
    for result in results:
        if result.ok or shrunk_count >= max_shrink_cells:
            continue
        if not shrink:
            continue
        target = result.violations[0]["invariant"]
        say(f"shrinking {result.cell_id} (violates {target})")
        result.shrunk = shrink_cell(
            spec, by_index[result.index], target, budget=shrink_budget)
        shrunk_count += 1
    outcomes = {"pass": 0, "fail": 0, "xfail": 0, "xpass": 0}
    for result in results:
        outcomes[result.outcome] += 1
    expected = outcomes["pass"] + outcomes["xfail"]
    report = {
        "name": spec.name,
        "seed": spec.seed,
        "duration_s": spec.duration_s,
        "period_s": spec.period_s,
        "axis_sizes": spec.axis_sizes(),
        "cells_total": len(spec.cells()),
        "cells_run": len(results),
        "outcomes": outcomes,
        "unexpected": sum(1 for r in results if r.unexpected),
        "pass_rate": round(expected / len(results), 4) if results else 1.0,
        "wall_s": round(wall_s, 3),
        "cells": [result.to_dict() for result in results],
    }
    say(f"{len(results)} cell(s) in {wall_s:.1f}s: "
        + ", ".join(f"{n} {o}" for o, n in outcomes.items() if n))
    return report


def bench_headline(report: Dict[str, object]) -> Dict[str, object]:
    """The BENCH_matrix.json trending summary of one campaign report."""
    return {
        "cells_run": report["cells_run"],
        "pass_rate": report["pass_rate"],
        "unexpected": report["unexpected"],
        "wall_s": report["wall_s"],
    }

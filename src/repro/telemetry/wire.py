"""The telemetry wire protocol: versioned, length-prefixed binary frames.

Every message on a telemetry connection is one frame::

    +--------+---------+------+----------------+-----------------+
    | magic  | version | kind | payload length | payload (JSON)  |
    | 2 B    | 1 B     | 1 B  | 4 B big-endian | length bytes    |
    +--------+---------+------+----------------+-----------------+

The fixed 8-byte header is struct-packed (``!2sBBI``); the payload is a
UTF-8 JSON object (compact separators, sorted keys) so frames are
byte-stable for identical content.  Decoding is strict: a bad magic,
unknown kind, unsupported version or oversized length raises
:class:`~repro.errors.WireProtocolError` — a corrupt stream can never be
silently resynchronised into garbage data.

Version negotiation is forward-compatible: :data:`FrameKind.HELLO`
frames are always encoded at protocol version 1 and carry the sender's
full ``versions`` list, so a v1 peer can always read a v9 peer's hello
and the pair settles on ``max(common)`` (:func:`negotiate_version`).

Protocol version 2 adds the :data:`FrameKind.BATCH` envelope: one
length-prefixed frame whose payload is the raw concatenation of N
complete inner frames (not JSON).  Batching amortises one ``send()``
and one header parse over many telemetry frames.  Stream frames
themselves (report/health/gap/heartbeat) stay encoded at
:data:`STREAM_VERSION` (the v1 floor) so a server can encode each
frame **once** and share the bytes across v1 and v2 subscribers — only
the per-connection envelope differs.  A v1 peer never sees kind 9:
servers batch only on connections that negotiated version 2.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import WireProtocolError

#: Magic bytes opening every frame ("PowerWire").
MAGIC = b"PW"
#: The protocol version this implementation speaks natively.
PROTOCOL_VERSION = 2
#: Every version this implementation can decode.
SUPPORTED_VERSIONS: Tuple[int, ...] = (1, 2)
#: Hello frames are always encoded at the floor version so any peer can
#: read them before negotiation.
HELLO_VERSION = 1
#: Stream frames (report/health/gap/heartbeat) are encoded once at the
#: floor version and the bytes shared across every subscriber; the v2
#: BATCH envelope is applied per connection, never the frames inside.
STREAM_VERSION = 1

_HEADER = struct.Struct("!2sBBI")
HEADER_SIZE = _HEADER.size

#: Hard payload bound; a corrupt length field fails fast instead of
#: allocating gigabytes.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024


class FrameKind(enum.IntEnum):
    """The frame kinds of protocol versions 1 and 2.

    RESUME is a capability-gated extension, not a version bump: only
    clients send it, and only after the server's HELLO reply advertised
    the ``"resume"`` feature — so a pre-RESUME peer never sees kind 8
    and the wire stays backward compatible at version 1.  BATCH is a
    version-2 envelope: a server sends it only on connections that
    negotiated version 2, so a v1 peer never sees kind 9 either.
    """

    HELLO = 1       #: handshake: version lists / chosen version
    SUBSCRIBE = 2   #: client -> server: filters (pids, kinds, downsample)
    REPORT = 3      #: server -> client: one AggregatedPowerReport
    HEALTH = 4      #: server -> client: one HealthEvent
    GAP = 5         #: server -> client: one sensor GapMarker
    HEARTBEAT = 6   #: server -> client: liveness marker with sequence
    ERROR = 7       #: either direction: fatal protocol error, then close
    RESUME = 8      #: client -> server: last-acked seq, replay after it
    BATCH = 9       #: v2 envelope: N complete inner frames in one payload


#: Event-kind names accepted in Subscribe filters (Hello/Subscribe/Error
#: are connection plumbing, not subscribable events).
SUBSCRIBABLE_KINDS: Tuple[str, ...] = ("report", "health", "gap",
                                       "heartbeat")

_KIND_BY_NAME = {"report": FrameKind.REPORT, "health": FrameKind.HEALTH,
                 "gap": FrameKind.GAP, "heartbeat": FrameKind.HEARTBEAT}


def kinds_from_names(names: Iterable[str]) -> Tuple[FrameKind, ...]:
    """Map Subscribe filter names to frame kinds (strictly validated)."""
    kinds = []
    for name in names:
        try:
            kinds.append(_KIND_BY_NAME[name])
        except KeyError:
            raise WireProtocolError(
                f"unknown event kind {name!r}; expected one of "
                f"{', '.join(SUBSCRIBABLE_KINDS)}") from None
    return tuple(kinds)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its kind, header version and JSON payload."""

    kind: FrameKind
    payload: Dict[str, object] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION


def encode_frame(kind: FrameKind, payload: Optional[Dict[str, object]] = None,
                 version: int = PROTOCOL_VERSION) -> bytes:
    """Serialize one frame to bytes (header + compact JSON payload)."""
    try:
        kind = FrameKind(kind)
    except ValueError:
        raise WireProtocolError(f"unknown frame kind {kind!r}") from None
    if kind is FrameKind.BATCH:
        raise WireProtocolError(
            "BATCH payloads are raw inner frames, not JSON; "
            "use encode_batch()")
    if not 0 < version < 256:
        raise WireProtocolError(f"version {version} out of range")
    if kind is FrameKind.HELLO:
        version = HELLO_VERSION
    body = json.dumps(payload or {}, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"payload of {len(body)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit")
    return _HEADER.pack(MAGIC, version, int(kind), len(body)) + body


#: Minimum protocol version whose decoders understand BATCH envelopes.
BATCH_VERSION = 2


def encode_batch(frames: Sequence[bytes],
                 version: int = BATCH_VERSION) -> bytes:
    """Wrap already-encoded frames in one v2 BATCH envelope.

    The payload is the raw concatenation of the inner frames — each a
    complete frame with its own header — so a decoder can validate and
    yield them individually.  Nesting is not allowed, and the receiver
    must have negotiated protocol version >= 2.
    """
    if version < BATCH_VERSION or version > 255:
        raise WireProtocolError(
            f"BATCH requires protocol version >= {BATCH_VERSION}, "
            f"got {version}")
    if not frames:
        raise WireProtocolError("a BATCH frame must contain >= 1 frame")
    body = b"".join(frames)
    if len(body) > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"batch of {len(body)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit")
    return _HEADER.pack(MAGIC, version, int(FrameKind.BATCH),
                        len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed byte chunks, harvest complete frames.

    The decoder accepts frames whose header version is in
    *accept_versions*, plus Hello frames at :data:`HELLO_VERSION`
    regardless (so negotiation can happen at all).  Any violation raises
    :class:`~repro.errors.WireProtocolError` and poisons the decoder —
    after a stream error there is no way to trust later bytes.
    """

    def __init__(self,
                 accept_versions: Sequence[int] = SUPPORTED_VERSIONS) -> None:
        self.accept_versions = tuple(accept_versions)
        self._buffer = bytearray()
        self._poisoned: Optional[str] = None
        #: Total frames decoded over the connection's lifetime.
        self.frames_decoded = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes received but not yet forming a complete frame."""
        return len(self._buffer)

    def _fail(self, reason: str) -> None:
        self._poisoned = reason
        raise WireProtocolError(reason)

    def feed(self, data: bytes) -> List[Frame]:
        """Consume *data*, returning every frame it completes (in order)."""
        if self._poisoned is not None:
            raise WireProtocolError(
                f"decoder poisoned by earlier error: {self._poisoned}")
        self._buffer.extend(data)
        frames: List[Frame] = []
        while len(self._buffer) >= HEADER_SIZE:
            magic, version, kind_byte, length = _HEADER.unpack_from(
                self._buffer)
            if magic != MAGIC:
                self._fail(f"bad frame magic {bytes(magic)!r} "
                           f"(expected {MAGIC!r}): corrupt stream")
            if length > MAX_PAYLOAD_BYTES:
                self._fail(f"frame length {length} exceeds the "
                           f"{MAX_PAYLOAD_BYTES}-byte limit")
            try:
                kind = FrameKind(kind_byte)
            except ValueError:
                self._fail(f"unknown frame kind {kind_byte}")
            if version not in self.accept_versions and not (
                    kind is FrameKind.HELLO and version == HELLO_VERSION):
                self._fail(f"unsupported protocol version {version} "
                           f"(accepting {list(self.accept_versions)})")
            if len(self._buffer) < HEADER_SIZE + length:
                break  # incomplete frame: wait for more bytes
            body = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            if kind is FrameKind.BATCH:
                if version < BATCH_VERSION:
                    self._fail(f"BATCH envelope at version {version} "
                               f"(requires >= {BATCH_VERSION})")
                frames.extend(self._decode_batch(body))
                continue
            frames.append(self._decode_body(kind, version, body))
            self.frames_decoded += 1
        return frames

    def _decode_body(self, kind: FrameKind, version: int,
                     body: bytes) -> Frame:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._fail(f"frame payload is not valid JSON "
                       f"({len(body)} bytes, kind {kind.name})")
        if not isinstance(payload, dict):
            self._fail(f"frame payload must be a JSON object, "
                       f"got {type(payload).__name__}")
        return Frame(kind=kind, payload=payload, version=version)

    def _decode_batch(self, body: bytes) -> List[Frame]:
        """Validate and decode the inner frames of one BATCH envelope.

        Strict like the outer loop: a truncated or malformed inner
        frame poisons the decoder — a batch is all-or-nothing.
        """
        frames: List[Frame] = []
        offset = 0
        while offset < len(body):
            if len(body) - offset < HEADER_SIZE:
                self._fail(f"truncated inner frame header in BATCH "
                           f"({len(body) - offset} trailing bytes)")
            magic, version, kind_byte, length = _HEADER.unpack_from(
                body, offset)
            if magic != MAGIC:
                self._fail(f"bad inner frame magic {bytes(magic)!r} "
                           f"in BATCH: corrupt stream")
            try:
                kind = FrameKind(kind_byte)
            except ValueError:
                self._fail(f"unknown inner frame kind {kind_byte} in BATCH")
            if kind is FrameKind.BATCH:
                self._fail("nested BATCH frames are not allowed")
            if version not in self.accept_versions and not (
                    kind is FrameKind.HELLO and version == HELLO_VERSION):
                self._fail(f"unsupported inner frame version {version} "
                           f"in BATCH (accepting "
                           f"{list(self.accept_versions)})")
            start = offset + HEADER_SIZE
            if len(body) - start < length:
                self._fail(f"truncated inner frame in BATCH (need "
                           f"{length} bytes, have {len(body) - start})")
            frames.append(self._decode_body(
                kind, version, body[start:start + length]))
            self.frames_decoded += 1
            offset = start + length
        return frames


def negotiate_version(peer_versions: Iterable[int],
                      ours: Sequence[int] = SUPPORTED_VERSIONS) -> int:
    """Pick the highest protocol version both sides speak."""
    try:
        theirs = set(int(v) for v in peer_versions)
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(
            f"malformed versions list {peer_versions!r}: {exc}") from exc
    common = theirs & set(ours)
    if not common:
        raise WireProtocolError(
            f"no common protocol version: peer speaks "
            f"{sorted(theirs)}, we speak {sorted(ours)}")
    return max(common)


# -- handshake payloads ---------------------------------------------------

def hello_payload(agent: str,
                  versions: Sequence[int] = SUPPORTED_VERSIONS,
                  chosen: Optional[int] = None,
                  spec: Optional[Mapping[str, object]] = None,
                  features: Optional[Sequence[str]] = None,
                  epoch: Optional[str] = None
                  ) -> Dict[str, object]:
    """A Hello payload; the server's reply sets *chosen*.

    A server streaming a declaratively-assembled pipeline may attach
    the :meth:`~repro.core.pipeline.PipelineSpec.to_dict` form as
    *spec*, advertising what it monitors to every subscriber, and a
    *features* list naming optional protocol extensions it understands
    (currently ``"resume"``).  Clients that predate either key ignore
    it (the payload is an open JSON object), so no version bump is
    needed.
    """
    payload: Dict[str, object] = {"agent": agent,
                                  "versions": [int(v) for v in versions]}
    if chosen is not None:
        payload["version"] = int(chosen)
    if spec is not None:
        payload["spec"] = dict(spec)
    if features is not None:
        payload["features"] = sorted(str(f) for f in features)
    if epoch is not None:
        # The server's stream epoch: sequence numbers are only
        # comparable within one epoch, so a restarted server (fresh
        # counter) presents a new token and clients discard stale
        # resume state instead of mis-deduplicating the new stream.
        payload["epoch"] = str(epoch)
    return payload


def resume_payload(last_seq: int,
                   epoch: Optional[str] = None) -> Dict[str, object]:
    """A Resume payload: replay every stream frame after *last_seq*.

    *epoch* is the stream epoch *last_seq* was observed under; a server
    in a different epoch treats the subscriber as fresh rather than
    replaying from a foreign sequence space.
    """
    if last_seq < 0:
        raise WireProtocolError("last_seq must be >= 0")
    payload: Dict[str, object] = {"last_seq": int(last_seq)}
    if epoch is not None:
        payload["epoch"] = str(epoch)
    return payload


def subscribe_payload(pids: Optional[Iterable[int]] = None,
                      kinds: Optional[Iterable[str]] = None,
                      downsample: int = 1) -> Dict[str, object]:
    """A Subscribe payload: None filters mean "everything"."""
    if downsample < 1:
        raise WireProtocolError("downsample ratio must be >= 1")
    payload: Dict[str, object] = {"downsample": int(downsample)}
    if pids is not None:
        payload["pids"] = sorted(int(pid) for pid in pids)
    if kinds is not None:
        names = tuple(kinds)
        kinds_from_names(names)  # validate eagerly, fail on the client
        payload["kinds"] = sorted(names)
    return payload


# -- event payloads -------------------------------------------------------

def report_frame(report: AggregatedPowerReport, host: str = "",
                 seq: int = 0, version: int = STREAM_VERSION) -> bytes:
    """Encode one aggregated report as a Report frame."""
    payload = report.to_wire()
    payload["host"] = host
    payload["seq"] = int(seq)
    return encode_frame(FrameKind.REPORT, payload, version=version)


def health_frame(event: HealthEvent, host: str = "", seq: int = 0,
                 version: int = STREAM_VERSION) -> bytes:
    """Encode one health event as a Health frame."""
    payload = event.to_wire()
    payload["host"] = host
    payload["seq"] = int(seq)
    return encode_frame(FrameKind.HEALTH, payload, version=version)


def gap_frame(marker: GapMarker, host: str = "", seq: int = 0,
              version: int = STREAM_VERSION) -> bytes:
    """Encode one sensor gap marker as a Gap frame."""
    payload = marker.to_wire()
    payload["host"] = host
    payload["seq"] = int(seq)
    return encode_frame(FrameKind.GAP, payload, version=version)


def eviction_gap_frame(evicted_from: int, evicted_through: int,
                       time_s: float, host: str = "",
                       version: int = STREAM_VERSION) -> bytes:
    """Encode the synthetic Gap frame marking a replay-window eviction.

    When a resuming client's window ``(last_seq, now]`` has partly
    scrolled out of the server's replay ring, the hole is made explicit
    as a gap with ``source="replay-eviction"``: sequence numbers
    *evicted_from*..*evicted_through* (inclusive) are gone for good.
    The frame's own ``seq`` is *evicted_through* so the client's
    last-acked seq advances past the hole.
    """
    marker = GapMarker(time_s=float(time_s), period_s=1.0, pid=-1,
                       source="replay-eviction")
    payload = marker.to_wire()
    payload["host"] = host
    payload["seq"] = int(evicted_through)
    payload["evicted_from"] = int(evicted_from)
    payload["evicted_through"] = int(evicted_through)
    return encode_frame(FrameKind.GAP, payload, version=version)


def heartbeat_frame(seq: int, time_s: float, host: str = "",
                    version: int = STREAM_VERSION) -> bytes:
    """Encode a liveness heartbeat."""
    return encode_frame(FrameKind.HEARTBEAT,
                        {"seq": int(seq), "time_s": float(time_s),
                         "host": host}, version=version)


def error_frame(reason: str, version: int = HELLO_VERSION) -> bytes:
    """Encode a fatal protocol error (the sender closes afterwards).

    Errors default to the floor version: they are connection plumbing
    (handshake refusals, capacity rejections) that must be readable by
    a peer whose negotiation never completed.
    """
    return encode_frame(FrameKind.ERROR, {"reason": reason}, version=version)


# -- typed decode ---------------------------------------------------------

@dataclass(frozen=True)
class ReportEvent:
    """A Report frame decoded back into library types.

    ``origin_seq``/``origin_epoch`` are set on frames that crossed a
    :class:`~repro.telemetry.relay.TelemetryRelay`: the sequence number
    and stream epoch the *origin* server assigned, preserved hop by hop
    so ``(host, origin_seq, origin_epoch)`` identifies the frame end to
    end regardless of per-hop resequencing.
    """

    report: AggregatedPowerReport
    host: str = ""
    seq: int = 0
    origin_seq: Optional[int] = None
    origin_epoch: Optional[str] = None

    def identity(self) -> Tuple[str, object, int]:
        """End-to-end frame identity: prefers origin over hop-local seq."""
        if self.origin_seq is not None:
            return (self.host, self.origin_epoch, self.origin_seq)
        return (self.host, None, self.seq)


@dataclass(frozen=True)
class HealthTelemetry:
    """A Health frame decoded back into a :class:`HealthEvent`."""

    event: HealthEvent
    host: str = ""
    seq: int = 0
    origin_seq: Optional[int] = None
    origin_epoch: Optional[str] = None


@dataclass(frozen=True)
class GapTelemetry:
    """A Gap frame decoded back into a :class:`GapMarker`.

    ``evicted_from``/``evicted_through`` are set only on the synthetic
    replay-eviction gap: the inclusive range of sequence numbers the
    server's replay window could no longer provide.
    """

    marker: GapMarker
    host: str = ""
    seq: int = 0
    evicted_from: Optional[int] = None
    evicted_through: Optional[int] = None
    origin_seq: Optional[int] = None
    origin_epoch: Optional[str] = None


@dataclass(frozen=True)
class Heartbeat:
    """A Heartbeat frame."""

    seq: int
    time_s: float
    host: str = ""


def decode_event(frame: Frame):
    """Convert a server-stream frame into its typed event object.

    Hello/Subscribe/Error frames are connection plumbing and stay raw:
    this returns the :class:`Frame` unchanged for them.
    """
    try:
        payload = frame.payload
        origin_seq = payload.get("origin_seq")
        origin_seq = None if origin_seq is None else int(origin_seq)
        origin_epoch = payload.get("origin_epoch")
        origin_epoch = None if origin_epoch is None else str(origin_epoch)
        if frame.kind is FrameKind.REPORT:
            return ReportEvent(
                report=AggregatedPowerReport.from_wire(payload),
                host=str(payload.get("host", "")),
                seq=int(payload.get("seq", 0)),
                origin_seq=origin_seq, origin_epoch=origin_epoch)
        if frame.kind is FrameKind.HEALTH:
            return HealthTelemetry(event=HealthEvent.from_wire(payload),
                                   host=str(payload.get("host", "")),
                                   seq=int(payload.get("seq", 0)),
                                   origin_seq=origin_seq,
                                   origin_epoch=origin_epoch)
        if frame.kind is FrameKind.GAP:
            evicted_from = payload.get("evicted_from")
            evicted_through = payload.get("evicted_through")
            return GapTelemetry(
                marker=GapMarker.from_wire(payload),
                host=str(payload.get("host", "")),
                seq=int(payload.get("seq", 0)),
                evicted_from=(None if evicted_from is None
                              else int(evicted_from)),
                evicted_through=(None if evicted_through is None
                                 else int(evicted_through)),
                origin_seq=origin_seq, origin_epoch=origin_epoch)
        if frame.kind is FrameKind.HEARTBEAT:
            return Heartbeat(seq=int(payload["seq"]),
                             time_s=float(payload["time_s"]),
                             host=str(payload.get("host", "")))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(
            f"malformed {frame.kind.name} payload: {exc}") from None
    return frame

"""Relay topology: fan telemetry out through trees of servers.

A :class:`TelemetryRelay` is a :class:`~repro.telemetry.client.TelemetryClient`
(or several — one per upstream) glued to a
:class:`~repro.telemetry.server.TelemetryServer`: it subscribes
upstream, re-publishes every stream frame downstream, and thereby turns
one server's fan-out limit into a tree.  A two-level tree of relays
multiplies a host's effective subscriber capacity by the relay fan-out
while the host itself serves only the first tier.

The contract that makes trees safe is **origin identity**: the first
relay a frame crosses stamps the upstream's ``(seq, epoch)`` into the
payload as ``origin_seq``/``origin_epoch``; every later hop re-stamps
its own hop-local ``seq`` but preserves the origin keys and the
original ``host`` label untouched.  ``(host, origin_epoch, origin_seq)``
therefore identifies a frame end to end no matter how many hops it
crossed, and :class:`~repro.telemetry.fleet.FleetAggregator` dedup
keeps its exactly-once merge across mid-chain relay restarts — a
restarted relay re-delivers frames under fresh hop seqs, but their
origin identity is unchanged and the duplicates collapse.

Loss protection composes from existing pieces: each uplink may carry a
spool, so a restarted relay RESUMEs from its upstream exactly like any
durable client, and the relay's own server keeps a replay window for
*its* subscribers.  The relay never decodes report payloads beyond the
typed events the client already produces — re-publish re-encodes once
per hop via :meth:`TelemetryServer.publish_frame`.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, TelemetryError
from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.server import TelemetryServer
from repro.telemetry.wire import (FrameKind, GapTelemetry, HealthTelemetry,
                                  ReportEvent)

#: Event type -> (frame kind, attribute holding the typed message).
_RELAYED = {
    ReportEvent: (FrameKind.REPORT, "report"),
    HealthTelemetry: (FrameKind.HEALTH, "event"),
    GapTelemetry: (FrameKind.GAP, "marker"),
}


class _Uplink:
    """One upstream subscription feeding the relay's server."""

    def __init__(self, relay: "TelemetryRelay", index: int,
                 host: str, port: int,
                 client: TelemetryClient) -> None:
        self.relay = relay
        self.index = index
        self.host = host
        self.port = port
        self.client = client
        self.thread: Optional[threading.Thread] = None
        self.frames_relayed = 0
        self.last_error: Optional[str] = None

    def stats(self) -> Dict[str, object]:
        return {
            "upstream": f"{self.host}:{self.port}",
            "frames_relayed": self.frames_relayed,
            "reconnects": self.client.reconnects,
            "duplicates_dropped": self.client.duplicates_dropped,
            "resumes_sent": self.client.resumes_sent,
            "last_error": self.last_error,
        }


class TelemetryRelay:
    """Subscribe upstream, re-fan-out downstream, preserve identity.

    ``upstreams`` is one ``(host, port)`` pair or a sequence of them —
    a mid-tree relay typically has one uplink; an aggregation relay in
    front of a :class:`~repro.telemetry.fleet.FleetAggregator` may
    merge many hosts into one downstream stream.  All keyword arguments
    not consumed here (``queue_capacity``, ``overflow``, ``batch``,
    ``replay_window``, ``max_subscribers``, ...) configure the
    relay's own :class:`TelemetryServer`.
    """

    def __init__(self, upstreams: Union[Tuple[str, int],
                                        Sequence[Tuple[str, int]]],
                 host: str = "127.0.0.1", port: int = 0,
                 reconnect: Optional[ReconnectPolicy] = None,
                 spool_dir: Optional[Union[str, Path]] = None,
                 pids: Optional[Sequence[int]] = None,
                 kinds: Optional[Sequence[str]] = None,
                 downsample: int = 1,
                 read_timeout_s: Optional[float] = 30.0,
                 agent: str = "repro-telemetry-relay",
                 server: Optional[TelemetryServer] = None,
                 **server_kwargs) -> None:
        if (isinstance(upstreams, tuple) and len(upstreams) == 2
                and isinstance(upstreams[1], int)):
            upstreams = [upstreams]
        upstreams = list(upstreams)
        if not upstreams:
            raise ConfigurationError("relay needs at least one upstream")
        #: Passing an existing *server* grafts the uplinks onto it (the
        #: ``serve --uplink`` tree-junction case: local pipeline frames
        #: and relayed upstream frames merge into one stream).  The
        #: relay then neither starts nor stops that server.
        self._owns_server = server is None
        if server is None:
            server = TelemetryServer(host=host, port=port, agent=agent,
                                     **server_kwargs)
        elif server_kwargs:
            raise ConfigurationError(
                "server kwargs cannot be combined with an existing server")
        self.server = server
        self.reconnect = reconnect
        self._uplinks: List[_Uplink] = []
        self._cond = threading.Condition()
        self._running = False
        for index, (up_host, up_port) in enumerate(upstreams):
            spool = None
            if spool_dir is not None:
                spool = Path(spool_dir) / f"uplink-{index}.spool"
            client = TelemetryClient(
                up_host, up_port, pids=pids, kinds=kinds,
                downsample=downsample, reconnect=reconnect,
                read_timeout_s=read_timeout_s,
                agent=f"{agent}/uplink-{index}", spool=spool)
            self._uplinks.append(
                _Uplink(self, index, up_host, up_port, client))

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "TelemetryRelay":
        """Start the downstream server and every uplink drain thread."""
        if self._running:
            return self
        if self._owns_server:
            self.server.start()
        self._running = True
        for uplink in self._uplinks:
            uplink.thread = threading.Thread(
                target=self._drain, args=(uplink,),
                name=f"telemetry-relay-uplink-{uplink.index}", daemon=True)
            uplink.thread.start()
        return self

    def stop(self) -> None:
        """Disconnect the uplinks, then stop the downstream server."""
        self._running = False
        for uplink in self._uplinks:
            uplink.client.close()
        for uplink in self._uplinks:
            if uplink.thread is not None:
                uplink.thread.join(timeout=5.0)
                uplink.thread = None
        if self._owns_server:
            self.server.stop()

    def __enter__(self) -> "TelemetryRelay":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The downstream port subscribers connect to."""
        return self.server.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    # -- the relay loop -----------------------------------------------

    def _drain(self, uplink: _Uplink) -> None:
        client = uplink.client
        try:
            for event in client:
                mapped = _RELAYED.get(type(event))
                if mapped is None:
                    continue  # heartbeats are hop-local, never relayed
                kind, attr = mapped
                payload = dict(getattr(event, attr).to_wire())
                payload["host"] = event.host
                # First hop stamps origin identity from the upstream's
                # seq/epoch; later hops find it already present and
                # pass it through untouched.
                if event.origin_seq is not None:
                    payload["origin_seq"] = event.origin_seq
                    payload["origin_epoch"] = event.origin_epoch
                else:
                    payload["origin_seq"] = event.seq
                    payload["origin_epoch"] = client.stream_epoch
                self.server.publish_frame(kind, payload)
                with self._cond:
                    uplink.frames_relayed += 1
                    self._cond.notify_all()
        except (TelemetryError, OSError) as exc:
            uplink.last_error = str(exc)
        finally:
            with self._cond:
                self._cond.notify_all()

    # -- introspection ------------------------------------------------

    @property
    def frames_relayed(self) -> int:
        with self._cond:
            return sum(uplink.frames_relayed for uplink in self._uplinks)

    def wait_until_relayed(self, frames: int,
                           timeout: float = 5.0) -> bool:
        """Block until *frames* frames crossed this relay."""
        with self._cond:
            return self._cond.wait_for(
                lambda: sum(u.frames_relayed for u in self._uplinks)
                >= frames, timeout=timeout)

    def wait_for_subscribers(self, count: int,
                             timeout: float = 5.0) -> bool:
        return self.server.wait_for_subscribers(count, timeout=timeout)

    def stats(self) -> Dict[str, object]:
        """Uplink counters plus the downstream server's stats."""
        with self._cond:
            uplinks = [uplink.stats() for uplink in self._uplinks]
        return {
            "frames_relayed": sum(u["frames_relayed"] for u in uplinks),
            "uplinks": uplinks,
            "server": self.server.stats(),
        }


def relay_chain(origin: Tuple[str, int], hops: int = 1,
                **relay_kwargs) -> List[TelemetryRelay]:
    """Build and start a linear chain of *hops* relays off *origin*.

    Returns the relays in upstream-to-downstream order; subscribers
    connect to ``chain[-1].port``.  A convenience for tests and
    benchmarks — production trees are built by wiring
    :class:`TelemetryRelay` instances explicitly.
    """
    if hops < 1:
        raise ConfigurationError("relay chain needs >= 1 hop")
    chain: List[TelemetryRelay] = []
    upstream = origin
    for _ in range(hops):
        relay = TelemetryRelay(upstream, **relay_kwargs).start()
        chain.append(relay)
        upstream = ("127.0.0.1", relay.port)
    return chain


__all__ = ["TelemetryRelay", "relay_chain"]

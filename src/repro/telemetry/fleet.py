"""Fleet aggregation: merging telemetry streams from many machines.

A :class:`FleetAggregator` subscribes to several telemetry servers —
each fronting its own simulated machine — and merges their report
streams into one host-labelled, cluster-level power series.  The merge
is tolerant by construction:

* **out-of-order reports** are inserted at the right timestamp
  (per-host series stay time-sorted regardless of arrival order),
* **gap-marked reports** contribute no power but keep the period
  visible, so a cluster total is never silently computed from a host
  that explicitly said "no data",
* **missing hosts** (nothing received for a timestamp) mark the
  cluster point incomplete rather than under-reporting it as a total.

Streams can come from live sockets (:meth:`FleetAggregator.add_host`)
or be fed directly (:meth:`FleetAggregator.ingest`) for deterministic
tests and offline merges.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import AggregatedPowerReport
from repro.errors import ConfigurationError
from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.wire import ReportEvent


@dataclass(frozen=True)
class FleetSample:
    """One host's aggregated report, as merged into the fleet view."""

    host: str
    time_s: float
    period_s: float
    total_w: float
    gap: bool = False


@dataclass(frozen=True)
class ClusterPoint:
    """The fleet's power at one aligned timestamp."""

    time_s: float
    #: Sum of ``total_w`` over hosts with real data at this timestamp.
    total_w: float
    #: host -> watts for the contributing hosts.
    by_host: Dict[str, float] = field(default_factory=dict)
    #: Hosts that explicitly reported a gap for this timestamp.
    gap_hosts: Tuple[str, ...] = ()
    #: True when every registered host contributed real data.
    complete: bool = False


class _HostStream:
    """Time-sorted samples from one host (inserts keep order)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self.samples: List[FleetSample] = []
        self.out_of_order = 0
        #: Stream sequence numbers already merged (replay dedup).
        self.seen_seqs: set = set()
        self.duplicates = 0
        self.client: Optional[TelemetryClient] = None
        self.thread: Optional[threading.Thread] = None

    def insert(self, sample: FleetSample) -> None:
        index = bisect.bisect_right(self._times, sample.time_s)
        if index != len(self._times):
            self.out_of_order += 1
        self._times.insert(index, sample.time_s)
        self.samples.insert(index, sample)


class FleetAggregator:
    """Merges per-host telemetry streams into cluster-level series."""

    def __init__(self, align_decimals: int = 6) -> None:
        #: Timestamps are aligned across hosts after rounding to this
        #: many decimals, absorbing float jitter between machines.
        self.align_decimals = align_decimals
        self._streams: Dict[str, _HostStream] = {}
        self._cond = threading.Condition()
        self.samples_ingested = 0

    # -- wiring hosts -------------------------------------------------

    def hosts(self) -> Tuple[str, ...]:
        """Registered host names, in registration order."""
        with self._cond:
            return tuple(self._streams)

    def register_host(self, name: str) -> None:
        """Declare a host that will be fed via :meth:`ingest`."""
        with self._cond:
            if name in self._streams:
                raise ConfigurationError(f"host {name!r} already registered")
            self._streams[name] = _HostStream(name)

    def add_host(self, name: str, host: str, port: int,
                 reconnect: Optional[ReconnectPolicy] = None,
                 **client_kwargs) -> TelemetryClient:
        """Subscribe to one server; a daemon thread drains its stream."""
        self.register_host(name)
        client = TelemetryClient(host, port, kinds=("report",),
                                 reconnect=reconnect,
                                 agent=f"repro-fleet/{name}",
                                 **client_kwargs)
        stream = self._streams[name]
        stream.client = client
        stream.thread = threading.Thread(
            target=self._drain, args=(name, client),
            name=f"fleet-{name}", daemon=True)
        stream.thread.start()
        return client

    def _drain(self, name: str, client: TelemetryClient) -> None:
        try:
            for event in client:
                if isinstance(event, ReportEvent):
                    # identity() prefers the origin (seq, epoch) stamped
                    # by a relay hop, so dedup survives trees in which
                    # hop-local seqs restart mid-chain.
                    _host, epoch, seq = event.identity()
                    self.ingest(name, event.report, seq=seq, epoch=epoch)
        except Exception:  # noqa: BLE001 - drain threads must not leak
            pass
        finally:
            with self._cond:
                self._cond.notify_all()

    def close(self) -> None:
        """Disconnect every live client and join the drain threads."""
        with self._cond:
            streams = list(self._streams.values())
        for stream in streams:
            if stream.client is not None:
                stream.client.close()
        for stream in streams:
            if stream.thread is not None:
                stream.thread.join(timeout=5.0)

    # -- ingestion ----------------------------------------------------

    def ingest(self, host: str, report: AggregatedPowerReport,
               seq: Optional[int] = None,
               epoch: Optional[str] = None) -> None:
        """Merge one report for *host* (thread-safe, any order).

        When *seq* is given, ``(host, seq)`` pairs already merged are
        dropped — a replayed frame after a reconnect never
        double-counts cluster watts.  *epoch* scopes the seq to one
        stream epoch: frames arriving through a relay carry their
        origin ``(epoch, seq)``, which stays unique end to end even
        when a mid-chain relay restart resets hop-local seqs.
        """
        with self._cond:
            stream = self._streams.get(host)
            if stream is None:
                stream = _HostStream(host)
                self._streams[host] = stream
            if seq is not None:
                key = seq if epoch is None else (epoch, seq)
                if key in stream.seen_seqs:
                    stream.duplicates += 1
                    return
                stream.seen_seqs.add(key)
            stream.insert(FleetSample(
                host=host,
                time_s=round(report.time_s, self.align_decimals),
                period_s=report.period_s,
                total_w=0.0 if report.gap else report.total_w,
                gap=report.gap))
            self.samples_ingested += 1
            self._cond.notify_all()

    def wait_for_samples(self, count: int, timeout: float = 5.0) -> bool:
        """Condition-based wait until *count* samples were ingested."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.samples_ingested >= count, timeout=timeout)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float = 5.0) -> bool:
        """Wait until *predicate()* holds (evaluated under the lock)."""
        with self._cond:
            return self._cond.wait_for(predicate, timeout=timeout)

    # -- merged views -------------------------------------------------

    def host_series(self, host: str) -> List[FleetSample]:
        """One host's samples, time-sorted regardless of arrival order."""
        with self._cond:
            stream = self._streams.get(host)
            return [] if stream is None else list(stream.samples)

    def out_of_order_count(self) -> int:
        """Samples that arrived behind a later timestamp, fleet-wide."""
        with self._cond:
            return sum(s.out_of_order for s in self._streams.values())

    def duplicate_count(self) -> int:
        """Replayed ``(host, seq)`` samples dropped, fleet-wide."""
        with self._cond:
            return sum(s.duplicates for s in self._streams.values())

    def cluster_series(self) -> List[ClusterPoint]:
        """The merged fleet power series, one point per timestamp.

        A point's ``total_w`` sums every host that delivered real data
        there; hosts that sent a gap-marked report are listed in
        ``gap_hosts``; ``complete`` requires all registered hosts to
        have contributed real data.
        """
        with self._cond:
            return self._series_for(tuple(self._streams))

    def _series_for(self, hosts: Tuple[str, ...]) -> List[ClusterPoint]:
        """Merged series over a host subset.  Caller holds ``_cond``."""
        merged: Dict[float, Dict[str, FleetSample]] = {}
        for name in hosts:
            stream = self._streams.get(name)
            if stream is None:
                continue
            for sample in stream.samples:
                # Latest report wins for a duplicated timestamp
                # (a resent frame after reconnect).
                merged.setdefault(sample.time_s, {})[stream.name] = sample
        points = []
        for time_s in sorted(merged):
            at = merged[time_s]
            by_host = {name: sample.total_w for name, sample in at.items()
                       if not sample.gap}
            gap_hosts = tuple(sorted(name for name, sample in at.items()
                                     if sample.gap))
            points.append(ClusterPoint(
                time_s=time_s,
                total_w=sum(by_host.values()),
                by_host=by_host,
                gap_hosts=gap_hosts,
                complete=len(by_host) == len(hosts),
            ))
        return points

    def cluster_energy_j(self) -> float:
        """Fleet energy: sum of ``total_w * period_s`` over real samples."""
        with self._cond:
            return sum(sample.total_w * sample.period_s
                       for stream in self._streams.values()
                       for sample in stream.samples if not sample.gap)


class HierarchicalFleetAggregator(FleetAggregator):
    """Host → cluster → global rollup over relayed telemetry streams.

    One **uplink** connection — typically to a
    :class:`~repro.telemetry.relay.TelemetryRelay` aggregating a whole
    cluster — carries reports from many origin hosts; this aggregator
    demultiplexes them by the ``host`` label each frame kept end to
    end, assigns every origin host to the uplink's cluster, and dedups
    on the relayed origin ``(epoch, seq)`` identity.  The inherited
    views stay global (:meth:`cluster_series` spans every host);
    :meth:`cluster_rollup` and :meth:`cluster_energy_by_cluster` slice
    the same data per cluster.
    """

    def __init__(self, align_decimals: int = 6) -> None:
        super().__init__(align_decimals=align_decimals)
        #: host -> cluster name.
        self._cluster_of: Dict[str, str] = {}
        self._uplinks: List[Tuple[TelemetryClient, threading.Thread]] = []

    # -- wiring -------------------------------------------------------

    def assign_cluster(self, host: str, cluster: str) -> None:
        """Place *host* in *cluster* (hosts default to ``""``)."""
        with self._cond:
            self._cluster_of[host] = cluster

    def cluster_of(self, host: str) -> str:
        with self._cond:
            return self._cluster_of.get(host, "")

    def clusters(self) -> Tuple[str, ...]:
        """Known cluster names, sorted."""
        with self._cond:
            return tuple(sorted(set(self._cluster_of.values())))

    def add_uplink(self, cluster: str, host: str, port: int,
                   reconnect: Optional[ReconnectPolicy] = None,
                   **client_kwargs) -> TelemetryClient:
        """Subscribe to one relay/server; a daemon thread demuxes its
        stream into per-origin-host series under *cluster*."""
        client = TelemetryClient(host, port, kinds=("report",),
                                 reconnect=reconnect,
                                 agent=f"repro-fleet/{cluster}",
                                 **client_kwargs)
        thread = threading.Thread(
            target=self._drain_uplink, args=(cluster, client),
            name=f"fleet-uplink-{cluster}", daemon=True)
        with self._cond:
            self._uplinks.append((client, thread))
        thread.start()
        return client

    def _drain_uplink(self, cluster: str,
                      client: TelemetryClient) -> None:
        try:
            for event in client:
                if not isinstance(event, ReportEvent):
                    continue
                origin_host, epoch, seq = event.identity()
                name = origin_host or cluster
                with self._cond:
                    self._cluster_of.setdefault(name, cluster)
                self.ingest(name, event.report, seq=seq, epoch=epoch)
        except Exception:  # noqa: BLE001 - drain threads must not leak
            pass
        finally:
            with self._cond:
                self._cond.notify_all()

    def close(self) -> None:
        """Disconnect uplinks and per-host clients; join all drains."""
        with self._cond:
            uplinks = list(self._uplinks)
        for client, _thread in uplinks:
            client.close()
        for _client, thread in uplinks:
            thread.join(timeout=5.0)
        super().close()

    # -- rollups ------------------------------------------------------

    def hosts_in(self, cluster: str) -> Tuple[str, ...]:
        """Registered hosts assigned to *cluster*, in merge order."""
        with self._cond:
            return tuple(name for name in self._streams
                         if self._cluster_of.get(name, "") == cluster)

    def cluster_rollup(self) -> Dict[str, List[ClusterPoint]]:
        """Per-cluster merged series: cluster name -> its points.

        ``complete`` on a rolled-up point means every host *of that
        cluster* contributed real data at the timestamp.
        """
        with self._cond:
            members: Dict[str, List[str]] = {}
            for name in self._streams:
                members.setdefault(
                    self._cluster_of.get(name, ""), []).append(name)
            return {cluster: self._series_for(tuple(hosts))
                    for cluster, hosts in sorted(members.items())}

    def global_series(self) -> List[ClusterPoint]:
        """The all-clusters series (alias of :meth:`cluster_series`)."""
        return self.cluster_series()

    def cluster_energy_by_cluster(self) -> Dict[str, float]:
        """Energy (J) per cluster over real (non-gap) samples."""
        with self._cond:
            totals: Dict[str, float] = {}
            for name, stream in self._streams.items():
                cluster = self._cluster_of.get(name, "")
                totals[cluster] = totals.get(cluster, 0.0) + sum(
                    sample.total_w * sample.period_s
                    for sample in stream.samples if not sample.gap)
            return totals

"""Fleet aggregation: merging telemetry streams from many machines.

A :class:`FleetAggregator` subscribes to several telemetry servers —
each fronting its own simulated machine — and merges their report
streams into one host-labelled, cluster-level power series.  The merge
is tolerant by construction:

* **out-of-order reports** are inserted at the right timestamp
  (per-host series stay time-sorted regardless of arrival order),
* **gap-marked reports** contribute no power but keep the period
  visible, so a cluster total is never silently computed from a host
  that explicitly said "no data",
* **missing hosts** (nothing received for a timestamp) mark the
  cluster point incomplete rather than under-reporting it as a total.

Streams can come from live sockets (:meth:`FleetAggregator.add_host`)
or be fed directly (:meth:`FleetAggregator.ingest`) for deterministic
tests and offline merges.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import AggregatedPowerReport
from repro.errors import ConfigurationError
from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.wire import ReportEvent


@dataclass(frozen=True)
class FleetSample:
    """One host's aggregated report, as merged into the fleet view."""

    host: str
    time_s: float
    period_s: float
    total_w: float
    gap: bool = False


@dataclass(frozen=True)
class ClusterPoint:
    """The fleet's power at one aligned timestamp."""

    time_s: float
    #: Sum of ``total_w`` over hosts with real data at this timestamp.
    total_w: float
    #: host -> watts for the contributing hosts.
    by_host: Dict[str, float] = field(default_factory=dict)
    #: Hosts that explicitly reported a gap for this timestamp.
    gap_hosts: Tuple[str, ...] = ()
    #: True when every registered host contributed real data.
    complete: bool = False


class _HostStream:
    """Time-sorted samples from one host (inserts keep order)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self.samples: List[FleetSample] = []
        self.out_of_order = 0
        #: Stream sequence numbers already merged (replay dedup).
        self.seen_seqs: set = set()
        self.duplicates = 0
        self.client: Optional[TelemetryClient] = None
        self.thread: Optional[threading.Thread] = None

    def insert(self, sample: FleetSample) -> None:
        index = bisect.bisect_right(self._times, sample.time_s)
        if index != len(self._times):
            self.out_of_order += 1
        self._times.insert(index, sample.time_s)
        self.samples.insert(index, sample)


class FleetAggregator:
    """Merges per-host telemetry streams into cluster-level series."""

    def __init__(self, align_decimals: int = 6) -> None:
        #: Timestamps are aligned across hosts after rounding to this
        #: many decimals, absorbing float jitter between machines.
        self.align_decimals = align_decimals
        self._streams: Dict[str, _HostStream] = {}
        self._cond = threading.Condition()
        self.samples_ingested = 0

    # -- wiring hosts -------------------------------------------------

    def hosts(self) -> Tuple[str, ...]:
        """Registered host names, in registration order."""
        with self._cond:
            return tuple(self._streams)

    def register_host(self, name: str) -> None:
        """Declare a host that will be fed via :meth:`ingest`."""
        with self._cond:
            if name in self._streams:
                raise ConfigurationError(f"host {name!r} already registered")
            self._streams[name] = _HostStream(name)

    def add_host(self, name: str, host: str, port: int,
                 reconnect: Optional[ReconnectPolicy] = None,
                 **client_kwargs) -> TelemetryClient:
        """Subscribe to one server; a daemon thread drains its stream."""
        self.register_host(name)
        client = TelemetryClient(host, port, kinds=("report",),
                                 reconnect=reconnect,
                                 agent=f"repro-fleet/{name}",
                                 **client_kwargs)
        stream = self._streams[name]
        stream.client = client
        stream.thread = threading.Thread(
            target=self._drain, args=(name, client),
            name=f"fleet-{name}", daemon=True)
        stream.thread.start()
        return client

    def _drain(self, name: str, client: TelemetryClient) -> None:
        try:
            for event in client:
                if isinstance(event, ReportEvent):
                    self.ingest(name, event.report, seq=event.seq)
        except Exception:  # noqa: BLE001 - drain threads must not leak
            pass
        finally:
            with self._cond:
                self._cond.notify_all()

    def close(self) -> None:
        """Disconnect every live client and join the drain threads."""
        with self._cond:
            streams = list(self._streams.values())
        for stream in streams:
            if stream.client is not None:
                stream.client.close()
        for stream in streams:
            if stream.thread is not None:
                stream.thread.join(timeout=5.0)

    # -- ingestion ----------------------------------------------------

    def ingest(self, host: str, report: AggregatedPowerReport,
               seq: Optional[int] = None) -> None:
        """Merge one report for *host* (thread-safe, any order).

        When *seq* is given, ``(host, seq)`` pairs already merged are
        dropped — a replayed frame after a reconnect never
        double-counts cluster watts.
        """
        with self._cond:
            stream = self._streams.get(host)
            if stream is None:
                stream = _HostStream(host)
                self._streams[host] = stream
            if seq is not None:
                if seq in stream.seen_seqs:
                    stream.duplicates += 1
                    return
                stream.seen_seqs.add(seq)
            stream.insert(FleetSample(
                host=host,
                time_s=round(report.time_s, self.align_decimals),
                period_s=report.period_s,
                total_w=0.0 if report.gap else report.total_w,
                gap=report.gap))
            self.samples_ingested += 1
            self._cond.notify_all()

    def wait_for_samples(self, count: int, timeout: float = 5.0) -> bool:
        """Condition-based wait until *count* samples were ingested."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.samples_ingested >= count, timeout=timeout)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float = 5.0) -> bool:
        """Wait until *predicate()* holds (evaluated under the lock)."""
        with self._cond:
            return self._cond.wait_for(predicate, timeout=timeout)

    # -- merged views -------------------------------------------------

    def host_series(self, host: str) -> List[FleetSample]:
        """One host's samples, time-sorted regardless of arrival order."""
        with self._cond:
            stream = self._streams.get(host)
            return [] if stream is None else list(stream.samples)

    def out_of_order_count(self) -> int:
        """Samples that arrived behind a later timestamp, fleet-wide."""
        with self._cond:
            return sum(s.out_of_order for s in self._streams.values())

    def duplicate_count(self) -> int:
        """Replayed ``(host, seq)`` samples dropped, fleet-wide."""
        with self._cond:
            return sum(s.duplicates for s in self._streams.values())

    def cluster_series(self) -> List[ClusterPoint]:
        """The merged fleet power series, one point per timestamp.

        A point's ``total_w`` sums every host that delivered real data
        there; hosts that sent a gap-marked report are listed in
        ``gap_hosts``; ``complete`` requires all registered hosts to
        have contributed real data.
        """
        with self._cond:
            hosts = tuple(self._streams)
            merged: Dict[float, Dict[str, FleetSample]] = {}
            for stream in self._streams.values():
                for sample in stream.samples:
                    # Latest report wins for a duplicated timestamp
                    # (a resent frame after reconnect).
                    merged.setdefault(sample.time_s, {})[stream.name] = sample
        points = []
        for time_s in sorted(merged):
            at = merged[time_s]
            by_host = {name: sample.total_w for name, sample in at.items()
                       if not sample.gap}
            gap_hosts = tuple(sorted(name for name, sample in at.items()
                                     if sample.gap))
            points.append(ClusterPoint(
                time_s=time_s,
                total_w=sum(by_host.values()),
                by_host=by_host,
                gap_hosts=gap_hosts,
                complete=len(by_host) == len(hosts),
            ))
        return points

    def cluster_energy_j(self) -> float:
        """Fleet energy: sum of ``total_w * period_s`` over real samples."""
        with self._cond:
            return sum(sample.total_w * sample.period_s
                       for stream in self._streams.values()
                       for sample in stream.samples if not sample.gap)

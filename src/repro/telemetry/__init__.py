"""Streaming power telemetry: the networked layer above the pipeline.

The paper positions PowerAPI as *middleware* delivering real-time
per-process power estimates to consumers.  This package is the missing
subsystem between "estimator" and "service": it publishes the live
output of any monitoring pipeline to concurrent TCP subscribers on
localhost, and merges streams from several machines into one fleet
view.

* :mod:`repro.telemetry.wire` — the versioned, length-prefixed binary
  frame codec (Hello / Subscribe / Report / Health / Gap / Heartbeat /
  Error) with strict decode validation and forward-compatible version
  negotiation,
* :mod:`repro.telemetry.server` — :class:`TelemetryServer`, a threaded
  fan-out with per-subscriber bounded queues and configurable overflow
  policy (block, drop-oldest, coalesce-to-latest), plus the
  :class:`TelemetryBridge` actor gluing it to the event bus,
* :mod:`repro.telemetry.client` — :class:`TelemetryClient`, an
  iterator-style consumer with subscription filters and
  capped-exponential-backoff reconnect,
* :mod:`repro.telemetry.fleet` — :class:`FleetAggregator`, merging
  many hosts' streams into cluster-level power series that tolerate
  out-of-order and gap-marked input,
* :mod:`repro.telemetry.relay` — :class:`TelemetryRelay`, a client
  glued to a server: subscribe upstream, re-fan-out downstream, with
  origin ``(host, seq, epoch)`` identity preserved across hops so
  relay trees keep the exactly-once merge contract,
* :mod:`repro.telemetry.spool` — :class:`Spool`, the durable
  client-side journal that lets a crashed consumer resume its stream
  from disk via the RESUME handshake.
"""

from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.fleet import (ClusterPoint, FleetAggregator,
                                   FleetSample, HierarchicalFleetAggregator)
from repro.telemetry.relay import TelemetryRelay, relay_chain
from repro.telemetry.server import (BatchPolicy, BoundedFrameQueue,
                                    OverflowPolicy, ReplayBuffer,
                                    TelemetryBridge, TelemetryServer)
from repro.telemetry.spool import Spool
from repro.telemetry.wire import (Frame, FrameDecoder, FrameKind,
                                  GapTelemetry, Heartbeat, HealthTelemetry,
                                  ReportEvent, encode_batch, encode_frame,
                                  negotiate_version)

__all__ = [
    "BatchPolicy",
    "BoundedFrameQueue",
    "ReplayBuffer",
    "Spool",
    "ClusterPoint",
    "FleetAggregator",
    "FleetSample",
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "GapTelemetry",
    "Heartbeat",
    "HealthTelemetry",
    "HierarchicalFleetAggregator",
    "OverflowPolicy",
    "ReconnectPolicy",
    "ReportEvent",
    "TelemetryBridge",
    "TelemetryClient",
    "TelemetryRelay",
    "TelemetryServer",
    "encode_batch",
    "encode_frame",
    "negotiate_version",
    "relay_chain",
]

"""The telemetry client: subscribe to a server and iterate events.

Typical use::

    client = TelemetryClient("127.0.0.1", 9462, pids={100},
                             reconnect=ReconnectPolicy())
    for event in client:
        if isinstance(event, ReportEvent):
            print(event.host, event.report.total_w)

The iterator yields typed events (:class:`~repro.telemetry.wire.ReportEvent`,
:class:`~repro.telemetry.wire.HealthTelemetry`,
:class:`~repro.telemetry.wire.GapTelemetry`,
:class:`~repro.telemetry.wire.Heartbeat`) and ends cleanly when
:meth:`TelemetryClient.close` is called.  When the link drops and a
:class:`ReconnectPolicy` is configured, the client re-dials with the
shared capped-exponential-backoff idiom
(:class:`~repro.faults.backoff.ExponentialBackoff`), re-negotiates the
protocol version and re-issues its subscription — so a server restart
is invisible to the consuming loop apart from any frames published
while the link was down.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Union

from repro.errors import (TelemetryConnectionError, TelemetryError,
                          WireProtocolError)
from repro.faults.backoff import ExponentialBackoff
from repro.faults.breaker import CircuitBreaker
from repro.telemetry import wire
from repro.telemetry.spool import Spool
from repro.telemetry.wire import Frame, FrameKind

_RECV_BYTES = 65536

#: Frame kinds that carry the shared stream sequence number (heartbeats
#: keep their own counter and never advance ``last_seq``).
_STREAM_KINDS = (FrameKind.REPORT, FrameKind.HEALTH, FrameKind.GAP)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Capped exponential re-dial schedule after a lost connection."""

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    #: Give up (raise) after this many consecutive failed dials;
    #: ``None`` retries forever.
    max_attempts: Optional[int] = None
    #: Jitter fraction spreading re-dials across a fleet (0 disables).
    jitter: float = 0.0
    #: Seed making a jittered schedule reproducible.
    seed: Optional[int] = None

    def backoff(self) -> ExponentialBackoff:
        return ExponentialBackoff(base_s=self.base_s, factor=self.factor,
                                  max_s=self.max_s, jitter=self.jitter,
                                  seed=self.seed)


class TelemetryClient:
    """One subscription to one :class:`~repro.telemetry.server.TelemetryServer`.

    The client is single-threaded and blocking: :meth:`events` (or plain
    iteration) drives the socket.  ``sleep`` is injectable so reconnect
    schedules are testable without real delays.
    """

    def __init__(self, host: str, port: int,
                 pids: Optional[Iterable[int]] = None,
                 kinds: Optional[Iterable[str]] = None,
                 downsample: int = 1,
                 reconnect: Optional[ReconnectPolicy] = None,
                 agent: str = "repro-telemetry-client",
                 connect_timeout_s: float = 5.0,
                 read_timeout_s: Optional[float] = 30.0,
                 sleep: Callable[[float], None] = time.sleep,
                 spool: Optional[Union[str, Path, Spool]] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 transport: Optional[Callable[[socket.socket],
                                              socket.socket]] = None) -> None:
        self.host = host
        self.port = port
        self.pids = None if pids is None else sorted(set(pids))
        self.kinds = None if kinds is None else tuple(kinds)
        self.downsample = downsample
        self.reconnect = reconnect
        self.agent = agent
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self._sleep = sleep
        #: Circuit breaker consulted before every re-dial, if any.
        self.breaker = breaker
        #: Wraps the dialed socket (chaos tests inject faults here).
        self.transport = transport
        self._owns_spool = spool is not None and not isinstance(spool, Spool)
        if self._owns_spool:
            path = Path(spool)
            if path.is_dir():
                path = path / "telemetry.spool"
            spool = Spool(path)
        #: Durable journal of delivered stream frames, if any.
        self.spool: Optional[Spool] = spool
        #: The server stream epoch ``last_seq`` belongs to.
        self.stream_epoch: Optional[str] = None
        #: Highest stream seq delivered (recovered from the spool on
        #: restart); what a RESUME handshake presents to the server.
        self.last_seq: Optional[int] = None
        if self.spool is not None:
            self.stream_epoch, self.last_seq = self.spool.resume_state()
        self._sock: Optional[socket.socket] = None
        self._decoder: Optional[wire.FrameDecoder] = None
        #: Frames that arrived in the same chunk as the handshake reply
        #: (the server may pipeline data right behind its HELLO).
        self._pending: List[Frame] = []
        self._closed = False
        #: Protocol version agreed with the server (after connect()).
        self.negotiated_version: Optional[int] = None
        #: The pipeline description the server advertised in its
        #: handshake reply (PipelineSpec.to_dict() form), if any.
        self.server_spec: Optional[dict] = None
        #: Optional protocol features the server advertised ("resume").
        self.server_features: tuple = ()
        #: None until a handshake reply reveals whether the server
        #: understands RESUME; False stops us from ever sending one.
        self._resume_supported: Optional[bool] = None
        self.frames_received = 0
        self.reconnects = 0
        self.duplicates_dropped = 0
        self.resumes_sent = 0
        #: Corrupt-stream (WireProtocolError) disconnects survived.
        self.stream_errors = 0

    # -- connection management ----------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "TelemetryClient":
        """Dial, negotiate the protocol version and subscribe."""
        if self._closed:
            raise TelemetryError("client is closed")
        if self._sock is not None:
            return self
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.transport is not None:
            sock = self.transport(sock)
        try:
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO, wire.hello_payload(agent=self.agent)))
            # Resume optimistically: the reply that would tell us the
            # server lacks the feature hasn't arrived yet on a first
            # reconnect, but a server that advertised "resume" once is
            # assumed to keep it, and one that refused never sees
            # another RESUME.
            if self.last_seq is not None and self._resume_supported is not \
                    False:
                sock.sendall(wire.encode_frame(
                    FrameKind.RESUME,
                    wire.resume_payload(self.last_seq,
                                        epoch=self.stream_epoch)))
                self.resumes_sent += 1
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE,
                wire.subscribe_payload(pids=self.pids, kinds=self.kinds,
                                       downsample=self.downsample)))
            decoder = wire.FrameDecoder()
            reply, pending = self._read_handshake_reply(sock, decoder)
            if reply.kind is FrameKind.ERROR:
                raise TelemetryConnectionError(
                    f"server refused subscription: "
                    f"{reply.payload.get('reason', 'unknown')}")
            if reply.kind is not FrameKind.HELLO:
                raise WireProtocolError(
                    f"expected HELLO reply, got {reply.kind.name}")
            self.negotiated_version = int(
                reply.payload.get("version", wire.PROTOCOL_VERSION))
            spec = reply.payload.get("spec")
            if isinstance(spec, dict):
                self.server_spec = spec
            features = reply.payload.get("features")
            if isinstance(features, list):
                self.server_features = tuple(str(f) for f in features)
            self._resume_supported = "resume" in self.server_features
            epoch = reply.payload.get("epoch")
            if isinstance(epoch, str) and epoch != self.stream_epoch:
                if self.stream_epoch is not None:
                    # A different server instance: its sequence space
                    # is fresh, so stale resume state must not be used
                    # to deduplicate the new stream.
                    self.last_seq = None
                self.stream_epoch = epoch
                if self.spool is not None:
                    self.spool.append(wire.encode_frame(
                        FrameKind.HELLO, {"epoch": epoch}))
        except BaseException:
            sock.close()
            raise
        sock.settimeout(self.read_timeout_s)
        self._sock = sock
        self._decoder = decoder
        self._pending = pending
        return self

    def _read_handshake_reply(
            self, sock: socket.socket, decoder: wire.FrameDecoder,
    ) -> "tuple[Frame, List[Frame]]":
        """Block until the server's reply arrives.

        The server pipelines: published frames may ride in the same
        chunk as its HELLO reply.  Anything decoded beyond the reply is
        returned for :meth:`events` to yield first.
        """
        while True:
            data = sock.recv(_RECV_BYTES)
            if not data:
                raise TelemetryConnectionError(
                    "connection closed during handshake")
            frames = decoder.feed(data)
            if frames:
                return frames[0], frames[1:]

    def close(self) -> None:
        """Stop iterating and release the socket (idempotent)."""
        self._closed = True
        self._disconnect()
        if self.spool is not None and self._owns_spool:
            self.spool.close()

    def _disconnect(self) -> None:
        sock, self._sock = self._sock, None
        self._decoder = None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _redial(self) -> bool:
        """Re-dial per the reconnect policy; False when closed/exhausted."""
        if self.reconnect is None or self._closed:
            return False
        backoff = self.reconnect.backoff()
        while not self._closed:
            if (self.reconnect.max_attempts is not None
                    and backoff.attempts >= self.reconnect.max_attempts):
                raise TelemetryConnectionError(
                    f"gave up reconnecting to {self.host}:{self.port} "
                    f"after {backoff.attempts} attempts")
            if self.breaker is not None and not self.breaker.allow():
                # Open breaker: no socket is burned; wait out the
                # remainder of its reset timeout instead of dialing.
                self._sleep(max(self.breaker.retry_in_s(), 0.001))
                continue
            self._sleep(backoff.next_delay_s())
            try:
                self.connect()
            except (OSError, TelemetryError):
                if self.breaker is not None:
                    self.breaker.record_failure()
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            self.reconnects += 1
            return True
        return False

    # -- event iteration ----------------------------------------------

    def events(self, max_events: Optional[int] = None) -> Iterator[object]:
        """Yield typed telemetry events; ends on close / clean shutdown.

        Without a reconnect policy a lost connection simply ends the
        iterator (a clean server stop is not an error).  With one, the
        client re-dials and the stream continues.
        """
        yielded = 0
        while max_events is None or yielded < max_events:
            if self._closed:
                return
            if self._sock is None:
                try:
                    self.connect()
                except (OSError, TelemetryError):
                    if not self._redial():
                        return
            if self._pending:
                frames, self._pending = self._pending, []
            else:
                try:
                    data = self._sock.recv(_RECV_BYTES)
                except socket.timeout:
                    raise TelemetryConnectionError(
                        f"no data from {self.host}:{self.port} within "
                        f"{self.read_timeout_s}s") from None
                except OSError:
                    data = b""
                if not data:
                    self._disconnect()
                    if self._closed or not self._redial():
                        return
                    continue
                try:
                    frames = self._decoder.feed(data)
                except WireProtocolError:
                    # Corrupt stream: the decoder is poisoned, so the
                    # only recovery is a fresh connection — RESUME then
                    # re-delivers anything the corruption swallowed.
                    self.stream_errors += 1
                    self._disconnect()
                    if self.reconnect is None:
                        raise
                    if self._closed or not self._redial():
                        return
                    continue
            for index, frame in enumerate(frames):
                self.frames_received += 1
                if frame.kind is FrameKind.ERROR:
                    self._disconnect()
                    raise TelemetryConnectionError(
                        f"server error: "
                        f"{frame.payload.get('reason', 'unknown')}")
                if frame.kind in _STREAM_KINDS:
                    seq = frame.payload.get("seq")
                    if isinstance(seq, int):
                        if (self.last_seq is not None
                                and seq <= self.last_seq):
                            # Replay overlap after a reconnect: already
                            # delivered (or spooled) — drop silently.
                            self.duplicates_dropped += 1
                            continue
                        self.last_seq = seq
                        if self.spool is not None:
                            self.spool.append(wire.encode_frame(
                                frame.kind, frame.payload))
                yield wire.decode_event(frame)
                yielded += 1
                if max_events is not None and yielded >= max_events:
                    # Frames already decoded beyond the cap must survive
                    # for the next events()/collect() call on this
                    # client — dropping them would lose events that were
                    # received off the wire.
                    self._pending = frames[index + 1:] + self._pending
                    return

    def __iter__(self) -> Iterator[object]:
        return self.events()

    def collect(self, count: int) -> List[object]:
        """Block until *count* events arrived; return them."""
        return list(self.events(max_events=count))

    def __enter__(self) -> "TelemetryClient":
        self.connect()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

"""The durable client-side spool: a crash-safe on-disk frame journal.

A :class:`Spool` is an append-only journal of opaque byte records —
in practice, encoded telemetry wire frames — that survives consumer
crashes.  The on-disk format is deliberately minimal::

    +----------+----------------------------------------------+
    | magic    | records ...                                  |
    | 8 B      |                                              |
    +----------+----------------------------------------------+

    record := | length (4 B, !I) | crc32 (4 B, !I) | payload |

Every record is length-prefixed and CRC-checked, so recovery after a
crash is a single forward scan: the first record whose header is
incomplete, whose payload is short, or whose CRC does not match marks
the *torn tail* — everything before it is intact, everything from it on
is truncated away.  Truncating the file at **any** byte offset therefore
yields a journal that re-opens cleanly and recovers every complete
record (the torn-write-safety property the chaos tests pin).

Durability is configurable via ``fsync_every``: ``0`` never calls
``fsync`` (the OS flushes on close — fastest, loses the tail on power
failure), ``1`` syncs after every record (slowest, loses nothing), ``N``
amortises one sync over N records.

:class:`Spool` also understands the telemetry wire format just enough to
resume a stream: :meth:`Spool.frames` decodes the journal back into
:class:`~repro.telemetry.wire.Frame` objects and :meth:`Spool.last_seq`
returns the highest sequence number on record — which is exactly what a
restarted :class:`~repro.telemetry.client.TelemetryClient` presents in
its RESUME handshake.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.errors import SpoolError

#: File magic: "PowerWire spool", format version 1.
MAGIC = b"PWSPOOL\x01"

_RECORD_HEADER = struct.Struct("!II")
RECORD_HEADER_SIZE = _RECORD_HEADER.size

#: Hard per-record bound; a corrupt length field is treated as a torn
#: tail instead of attempting a gigabyte read.
MAX_RECORD_BYTES = 64 * 1024 * 1024


class Spool:
    """An append-only, CRC-checked, torn-write-safe byte journal."""

    def __init__(self, path: Union[str, Path],
                 fsync_every: int = 0) -> None:
        if fsync_every < 0:
            raise SpoolError("fsync_every must be >= 0")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._lock = threading.Lock()
        self._appends_since_sync = 0
        #: Complete records found on disk when the spool was opened.
        self.recovered_records = 0
        #: Bytes of torn tail discarded during recovery (0 = clean).
        self.truncated_bytes = 0
        #: Records appended through this handle.
        self.records_appended = 0
        self._file = self._open_and_recover()

    # -- recovery -----------------------------------------------------

    def _open_and_recover(self):
        """Open the journal, scanning and truncating any torn tail."""
        if not self.path.exists():
            file = self.path.open("w+b")
            file.write(MAGIC)
            file.flush()
            return file
        file = self.path.open("r+b")
        try:
            head = file.read(len(MAGIC))
            if head != MAGIC:
                if head and not MAGIC.startswith(head):
                    raise SpoolError(
                        f"{self.path} is not a telemetry spool "
                        f"(bad magic {head!r})")
                # A crash before even the magic landed: re-initialise.
                self.truncated_bytes = len(head)
                file.seek(0)
                file.truncate(0)
                file.write(MAGIC)
                file.flush()
                return file
            good_end = self._scan(file)
            size = file.seek(0, 2)
            if size > good_end:
                self.truncated_bytes = size - good_end
                file.truncate(good_end)
                file.flush()
            file.seek(0, 2)
            return file
        except BaseException:
            file.close()
            raise

    def _scan(self, file) -> int:
        """Walk records from the magic; return the end of the last good one."""
        offset = len(MAGIC)
        file.seek(offset)
        while True:
            header = file.read(RECORD_HEADER_SIZE)
            if len(header) < RECORD_HEADER_SIZE:
                return offset
            length, crc = _RECORD_HEADER.unpack(header)
            if length > MAX_RECORD_BYTES:
                return offset  # corrupt length: treat as torn tail
            payload = file.read(length)
            if len(payload) < length:
                return offset
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return offset
            offset += RECORD_HEADER_SIZE + length
            self.recovered_records += 1

    # -- appending ----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._file is None

    def __len__(self) -> int:
        """Complete records on disk (recovered + appended)."""
        return self.recovered_records + self.records_appended

    def append(self, payload: bytes) -> int:
        """Durably append one record; returns the record's index."""
        if not payload:
            raise SpoolError("cannot append an empty record")
        if len(payload) > MAX_RECORD_BYTES:
            raise SpoolError(
                f"record of {len(payload)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte spool limit")
        with self._lock:
            if self._file is None:
                raise SpoolError("spool is closed")
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            self._file.write(_RECORD_HEADER.pack(len(payload), crc))
            self._file.write(payload)
            self._file.flush()
            index = self.recovered_records + self.records_appended
            self.records_appended += 1
            self._appends_since_sync += 1
            if (self.fsync_every > 0
                    and self._appends_since_sync >= self.fsync_every):
                self._sync_locked()
            return index

    def sync(self) -> None:
        """Force the journal to stable storage now."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._sync_locked()

    def _sync_locked(self) -> None:
        os.fsync(self._file.fileno())
        self._appends_since_sync = 0

    def close(self) -> None:
        """Flush and release the journal (idempotent)."""
        with self._lock:
            file, self._file = self._file, None
        if file is not None:
            file.flush()
            file.close()

    def __enter__(self) -> "Spool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- reading ------------------------------------------------------

    def records(self) -> Iterator[bytes]:
        """Iterate every complete record currently on disk.

        Reads through a separate handle, so iteration is safe while the
        spool is open for appending (records appended after the iterator
        reaches the current end are not yielded).
        """
        with self.path.open("rb") as file:
            head = file.read(len(MAGIC))
            if head != MAGIC:
                return
            while True:
                header = file.read(RECORD_HEADER_SIZE)
                if len(header) < RECORD_HEADER_SIZE:
                    return
                length, crc = _RECORD_HEADER.unpack(header)
                if length > MAX_RECORD_BYTES:
                    return
                payload = file.read(length)
                if len(payload) < length:
                    return
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    return
                yield payload

    # -- telemetry-aware helpers --------------------------------------

    def frames(self) -> List["object"]:
        """Decode the journal back into telemetry wire frames.

        Records that do not decode as single complete frames are
        skipped (the spool is a byte journal first; this helper only
        serves spools written by :class:`TelemetryClient`).
        """
        from repro.errors import WireProtocolError
        from repro.telemetry import wire
        frames = []
        for record in self.records():
            try:
                decoded = wire.FrameDecoder().feed(record)
            except WireProtocolError:
                continue
            frames.extend(decoded)
        return frames

    def resume_state(self) -> "tuple[Optional[str], Optional[int]]":
        """``(stream_epoch, last_seq)`` recovered from the journal.

        :class:`TelemetryClient` journals each server's HELLO (carrying
        its stream epoch) before that server's frames, so sequence
        numbers only count within the most recent epoch — a journal
        spanning a server restart does not resume with a stale seq.
        """
        from repro.telemetry.wire import FrameKind
        epoch: Optional[str] = None
        last: Optional[int] = None
        for frame in self.frames():
            if frame.kind is FrameKind.HELLO:
                new_epoch = frame.payload.get("epoch")
                if isinstance(new_epoch, str):
                    if new_epoch != epoch:
                        last = None
                    epoch = new_epoch
                continue
            seq = frame.payload.get("seq")
            if isinstance(seq, int) and (last is None or seq > last):
                last = seq
        return epoch, last

    def last_seq(self) -> Optional[int]:
        """The highest stream sequence number on record, if any.

        This is what a restarted consumer hands to the server's RESUME
        handshake: replay everything after this.
        """
        return self.resume_state()[1]

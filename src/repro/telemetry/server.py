"""The telemetry server: event-bus to TCP subscriber fan-out.

A :class:`TelemetryServer` listens on localhost and streams the live
output of a monitoring pipeline — aggregated power reports, health
events and sensor gap markers — to any number of concurrent
subscribers.  The design splits cleanly into:

* one **event-loop thread** driving a ``selectors``-based reactor over
  non-blocking sockets: it accepts connections, runs the
  Hello/Subscribe handshake incrementally, drains every subscriber's
  :class:`BoundedFrameQueue` into a per-connection write buffer, and
  flushes buffers on write readiness,
* **publishers** (the actor thread, via :class:`TelemetryBridge`, or a
  :class:`~repro.telemetry.relay.TelemetryRelay` uplink) that encode
  each event **once** and offer the shared bytes to every matching
  queue — the loop never re-encodes a frame, and on connections that
  negotiated protocol version 2 it coalesces queued frames into one
  BATCH envelope per ``send()`` according to a :class:`BatchPolicy`.

A slow subscriber therefore never slows the pipeline down unless the
server is explicitly configured with the ``block`` overflow policy;
``drop-oldest`` and ``coalesce`` shed load per subscriber and account
for every shed frame in that subscriber's counters.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Deque, Dict, FrozenSet, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from repro.actors.actor import Actor
from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import ConfigurationError, TelemetryError, WireProtocolError
from repro.telemetry import wire
from repro.telemetry.wire import FrameKind

#: Socket receive chunk for the handshake reader.
_RECV_BYTES = 65536

#: Per-connection write-buffer cap: frames beyond it stay in the
#: subscriber's queue, where the overflow policy (not unbounded memory)
#: absorbs a stalled peer.
_OUTBUF_LIMIT = 256 * 1024


@dataclass(frozen=True)
class BatchPolicy:
    """When the event loop flushes queued frames as one BATCH envelope.

    Applied only on connections that negotiated protocol version 2; a
    v1 subscriber always receives bare frames.  ``max_frames=1``
    disables batching outright.  ``max_latency_s > 0`` lets the loop
    hold a not-yet-full batch for up to that long to accumulate more
    frames (0 flushes whatever is queued the moment the socket is
    writable — "natural" batching under load, no added latency when
    idle).
    """

    max_frames: int = 64
    max_bytes: int = 128 * 1024
    max_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_frames < 1:
            raise ConfigurationError("batch max_frames must be >= 1")
        if self.max_bytes < 1:
            raise ConfigurationError("batch max_bytes must be >= 1")
        if self.max_latency_s < 0:
            raise ConfigurationError("batch max_latency_s must be >= 0")


class OverflowPolicy:
    """What a full subscriber queue does with the next frame."""

    #: The publisher waits for space (backpressure; can stall the bus).
    BLOCK = "block"
    #: Evict the oldest queued frame to admit the new one (lossy FIFO).
    DROP_OLDEST = "drop-oldest"
    #: Pending Report frames collapse to the latest one; other kinds
    #: fall back to drop-oldest.  The subscriber always sees the newest
    #: state with bounded lag.
    COALESCE = "coalesce"

    ALL = (BLOCK, DROP_OLDEST, COALESCE)


class BoundedFrameQueue:
    """A bounded frame queue implementing the three overflow policies.

    Kept separate from the socket machinery so the policies are
    unit-testable without any I/O.  ``pause()`` holds the consumer —
    the deterministic way to simulate a slow subscriber in tests.
    """

    def __init__(self, capacity: int,
                 policy: str = OverflowPolicy.DROP_OLDEST,
                 on_block: Optional[Callable[[], None]] = None) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if policy not in OverflowPolicy.ALL:
            raise ConfigurationError(
                f"unknown overflow policy {policy!r}; "
                f"use one of {', '.join(OverflowPolicy.ALL)}")
        self.capacity = capacity
        self.policy = policy
        #: Called the moment a producer starts waiting for space, so
        #: stall accounting is visible while the stall is in progress.
        self.on_block = on_block
        #: Called (outside the queue lock) whenever the consumer may
        #: have work: after an append, a resume or a close.  The server
        #: points this at its event-loop wakeup.
        self.on_ready: Optional[Callable[[], None]] = None
        self._items: Deque[Tuple[FrameKind, bytes]] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._paused = False
        #: Frames shed by drop-oldest / coalesce on this queue.
        self.dropped = 0
        #: Times a producer had to wait for space (block policy only).
        self.blocked = 0
        #: Maximum queue depth ever observed.
        self.high_water = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def _notify_ready(self) -> None:
        if self.on_ready is not None:
            self.on_ready()

    def offer(self, kind: FrameKind, data: bytes) -> bool:
        """Enqueue one frame per the policy; False if the queue closed."""
        with self._cond:
            if self._closed:
                return False
            if len(self._items) >= self.capacity:
                if self.policy == OverflowPolicy.BLOCK:
                    self.blocked += 1
                    if self.on_block is not None:
                        self.on_block()
                    while len(self._items) >= self.capacity:
                        if self._closed:
                            return False
                        self._cond.wait()
                elif (self.policy == OverflowPolicy.COALESCE
                        and kind is FrameKind.REPORT):
                    # Replace the most recent pending report with this
                    # one: the subscriber skips straight to the latest.
                    for index in range(len(self._items) - 1, -1, -1):
                        if self._items[index][0] is FrameKind.REPORT:
                            del self._items[index]
                            self.dropped += 1
                            break
                    else:
                        self._items.popleft()
                        self.dropped += 1
                else:
                    self._items.popleft()
                    self.dropped += 1
            self._items.append((kind, data))
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify_all()
        self._notify_ready()
        return True

    def force(self, kind: FrameKind, data: bytes) -> bool:
        """Enqueue one frame without ever blocking.

        Evicts the oldest queued frame when full regardless of policy.
        Used for resume replay, which runs while holding the server's
        ``_cond`` — a blocking ``offer`` there would deadlock against
        the consumer (it takes ``_cond`` after every flush).
        """
        with self._cond:
            if self._closed:
                return False
            if len(self._items) >= self.capacity:
                self._items.popleft()
                self.dropped += 1
            self._items.append((kind, data))
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify_all()
        self._notify_ready()
        return True

    def pop(self) -> Optional[Tuple[FrameKind, bytes]]:
        """Dequeue the next frame, blocking; None once closed and empty."""
        with self._cond:
            while self._paused or not self._items:
                if self._closed and not (self._items and not self._paused):
                    return None
                self._cond.wait()
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def pop_many_nowait(self, max_frames: int, max_bytes: int
                        ) -> List[Tuple[FrameKind, bytes]]:
        """Dequeue up to *max_frames* frames without blocking.

        Stops before a frame that would push the popped total past
        *max_bytes* (the first frame always fits, so an oversized frame
        cannot wedge the queue).  Returns an empty list when paused,
        empty or drained-after-close — one lock round-trip either way,
        which is what lets the event loop drain a whole batch per
        wakeup instead of locking per frame.
        """
        with self._cond:
            if self._paused or not self._items:
                return []
            popped: List[Tuple[FrameKind, bytes]] = []
            total = 0
            while self._items and len(popped) < max_frames:
                size = len(self._items[0][1])
                if popped and total + size > max_bytes:
                    break
                item = self._items.popleft()
                popped.append(item)
                total += size
            self._cond.notify_all()
            return popped

    def pause(self) -> None:
        """Hold the consumer (frames pile up; policies become visible)."""
        with self._cond:
            self._paused = True
            self._cond.notify_all()

    def resume(self) -> None:
        """Release a paused consumer."""
        with self._cond:
            self._paused = False
            self._cond.notify_all()
        self._notify_ready()

    def close(self) -> None:
        """Wake every waiter; pop drains remaining frames then ends."""
        with self._cond:
            self._closed = True
            self._paused = False
            self._cond.notify_all()
        self._notify_ready()


class ReplayBuffer:
    """The server's bounded ring of recently published stream frames.

    Every REPORT/HEALTH/GAP frame is appended as ``(seq, kind, bytes)``
    plus an optional *meta* — the frame's decoded payload, kept so a
    RESUME replay can run the same pid/downsample filter predicate the
    live path applies (entries appended without meta replay
    unfiltered).  :meth:`since` answers a RESUME: the frames still held
    after ``last_seq``, plus the highest sequence number that has
    scrolled out of the window (``None`` when nothing the client missed
    was evicted).  Not self-locking — the server mutates it under its
    own ``_cond``.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError("replay window must be >= 1")
        self.window = window
        self._items: Deque[Tuple[int, FrameKind, bytes,
                                 Optional[Mapping[str, object]]]] = deque(
            maxlen=window)
        #: Highest sequence number ever appended (-1 when empty).
        self.last_seq = -1

    def __len__(self) -> int:
        return len(self._items)

    def append(self, seq: int, kind: FrameKind, data: bytes,
               meta: Optional[Mapping[str, object]] = None) -> None:
        self._items.append((seq, kind, data, meta))
        self.last_seq = seq

    def since(self, last_seq: int) -> Tuple[
            List[Tuple[int, FrameKind, bytes,
                       Optional[Mapping[str, object]]]], Optional[int]]:
        """``(replayable frames after last_seq, evicted_through)``."""
        frames = [item for item in self._items if item[0] > last_seq]
        if frames:
            oldest_held = frames[0][0]
            evicted = oldest_held - 1 if oldest_held > last_seq + 1 else None
        else:
            evicted = self.last_seq if self.last_seq > last_seq else None
        return frames, evicted


class _Subscription:
    """One subscriber's negotiated filters."""

    def __init__(self, pids: Optional[FrozenSet[int]] = None,
                 kinds: Optional[FrozenSet[FrameKind]] = None,
                 downsample: int = 1) -> None:
        self.pids = pids
        self.kinds = kinds or frozenset(
            (FrameKind.REPORT, FrameKind.HEALTH, FrameKind.GAP,
             FrameKind.HEARTBEAT))
        self.downsample = max(1, downsample)
        self._report_index = 0

    def wants_kind(self, kind: FrameKind) -> bool:
        return kind in self.kinds

    def admit_report(self, report: AggregatedPowerReport) -> bool:
        """Apply the pid filter and downsample ratio to one report."""
        if self.pids is not None and not report.gap and self.pids.isdisjoint(
                report.by_pid):
            return False
        index = self._report_index
        self._report_index += 1
        return index % self.downsample == 0

    def admit_gap(self, marker: GapMarker) -> bool:
        if self.pids is None or marker.pid == -1:
            return True
        return marker.pid in self.pids

    def admit_payload(self, kind: FrameKind,
                      payload: Mapping[str, object]) -> bool:
        """The live-path filter predicate, evaluated on a wire payload.

        One predicate for live publishes *and* RESUME replay (the
        replay ring keeps each frame's payload as meta), so a resuming
        subscriber sees exactly the frames it would have seen live —
        including the downsample cadence, whose counter advances here.
        """
        if not self.wants_kind(kind):
            return False
        if kind is FrameKind.REPORT:
            if (self.pids is not None and not payload.get("gap")
                    and self.pids.isdisjoint(
                        int(pid) for pid in payload.get("by_pid", {}))):
                return False
            index = self._report_index
            self._report_index += 1
            return index % self.downsample == 0
        if kind is FrameKind.GAP:
            pid = int(payload.get("pid", -1))
            return self.pids is None or pid == -1 or pid in self.pids
        return True

    def restrict(self, report: AggregatedPowerReport
                 ) -> AggregatedPowerReport:
        """The report with ``by_pid`` narrowed to the subscribed pids."""
        if self.pids is None:
            return report
        return AggregatedPowerReport(
            time_s=report.time_s, period_s=report.period_s,
            by_pid={pid: watts for pid, watts in report.by_pid.items()
                    if pid in self.pids},
            idle_w=report.idle_w, formula=report.formula, gap=report.gap)

    def restrict_payload(self, payload: Mapping[str, object]
                         ) -> Dict[str, object]:
        """A report payload with ``by_pid`` narrowed to subscribed pids."""
        restricted = dict(payload)
        by_pid = payload.get("by_pid")
        if self.pids is not None and isinstance(by_pid, dict):
            restricted["by_pid"] = {key: watts
                                    for key, watts in by_pid.items()
                                    if int(key) in self.pids}
        return restricted


class _Subscriber:
    """Server-side state for one connection on the event loop.

    The loop thread owns all connection state (decoder, write buffer,
    selector registration); publishers touch only the thread-safe
    ``queue`` and the counters guarded by the server's ``_cond``.
    """

    _ids = 0

    def __init__(self, server: "TelemetryServer",
                 conn: socket.socket, peer: Tuple[str, int]) -> None:
        _Subscriber._ids += 1
        self.id = _Subscriber._ids
        self.server = server
        self.conn = conn
        self.peer = peer
        self.queue = BoundedFrameQueue(server.queue_capacity,
                                       server.overflow,
                                       on_block=server._count_stall)
        self.queue.on_ready = self._on_queue_ready
        self.subscription: Optional[_Subscription] = None
        self.agent = ""
        self.version = wire.PROTOCOL_VERSION
        #: Last-acked seq from a RESUME frame (None: fresh subscriber).
        self.resume_last_seq: Optional[int] = None
        #: Stream epoch the RESUME's seq belongs to, if the client knew.
        self.resume_epoch: Optional[str] = None
        self.ready = False
        self.closed = False
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_replayed = 0
        # -- event-loop-owned connection state ------------------------
        self.decoder = wire.FrameDecoder()
        self.hello: Optional[wire.Frame] = None
        #: Pending write chunks: (bytes, stream frame count, counted).
        #: Handshake plumbing rides with counted=False so the delivery
        #: counters keep meaning "stream frames/bytes delivered".
        self.outbuf: Deque[Tuple[bytes, int, bool]] = deque()
        self.outbuf_bytes = 0
        #: Bytes of the head chunk already handed to the kernel.
        self.chunk_offset = 0
        #: Close the connection once the outbuf drains (ERROR sent).
        self.close_after_flush = False
        #: Handshake was refused: drain and discard any further input.
        self.refused = False
        #: Selector interest currently registered for this connection.
        self.interest = 0
        #: Deadline for a latency-accumulated batch flush, if armed.
        self.flush_deadline: Optional[float] = None

    def _on_queue_ready(self) -> None:
        self.server._mark_dirty(self)

    def enqueue_chunk(self, data: bytes, frames: int = 0,
                      counted: bool = False) -> None:
        self.outbuf.append((data, frames, counted))
        self.outbuf_bytes += len(data)

    # -- publisher side -----------------------------------------------

    def offer(self, kind: FrameKind, data: bytes) -> bool:
        return self.queue.offer(kind, data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.queue.close()
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass

    def stats(self) -> Dict[str, object]:
        """This subscriber's delivery counters."""
        return {
            "id": self.id,
            "agent": self.agent,
            "peer": f"{self.peer[0]}:{self.peer[1]}",
            "version": self.version,
            "frames_sent": self.frames_sent,
            "frames_replayed": self.frames_replayed,
            "frames_dropped": self.queue.dropped,
            "bytes_sent": self.bytes_sent,
            "queue_high_water": self.queue.high_water,
            "queue_depth": len(self.queue),
            "blocked": self.queue.blocked,
        }


def _parse_subscription(payload: Dict[str, object]) -> _Subscription:
    pids = payload.get("pids")
    kinds = payload.get("kinds")
    return _Subscription(
        pids=None if pids is None else frozenset(
            int(pid) for pid in pids),
        kinds=None if kinds is None else frozenset(
            wire.kinds_from_names(kinds)),
        downsample=int(payload.get("downsample", 1)),
    )


#: Stream kinds a server re-publishes, mapped to their stats counter.
_PUBLISH_COUNTERS = {
    FrameKind.REPORT: "reports_published",
    FrameKind.HEALTH: "health_published",
    FrameKind.GAP: "gaps_published",
}


class TelemetryServer:
    """Streams pipeline telemetry to TCP subscribers on localhost.

    Thread model: ``start()`` spawns one event-loop thread that owns
    every socket (accepting, handshakes, flushing write buffers).
    ``publish_*`` may be called from any thread (typically the single
    actor-dispatch thread through a :class:`TelemetryBridge`, or a
    relay's uplink drain threads) — a dedicated publish lock keeps the
    seq order frames enter subscriber queues consistent with the order
    seqs were assigned, so client-side dedup never mistakes
    reordering for replay.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 overflow: str = OverflowPolicy.DROP_OLDEST,
                 queue_capacity: int = 256,
                 host_label: str = "",
                 heartbeat_every: int = 0,
                 agent: str = "repro-telemetry-server",
                 replay_window: int = 0,
                 batch: Optional[BatchPolicy] = None,
                 max_subscribers: int = 0,
                 transport: Optional[Callable[[socket.socket],
                                              socket.socket]] = None) -> None:
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if overflow not in OverflowPolicy.ALL:
            raise ConfigurationError(
                f"unknown overflow policy {overflow!r}; "
                f"use one of {', '.join(OverflowPolicy.ALL)}")
        if heartbeat_every < 0:
            raise ConfigurationError("heartbeat_every must be >= 0")
        if replay_window < 0:
            raise ConfigurationError("replay_window must be >= 0")
        if max_subscribers < 0:
            raise ConfigurationError("max_subscribers must be >= 0")
        self.host = host
        self.overflow = overflow
        self.queue_capacity = queue_capacity
        self.host_label = host_label
        self.heartbeat_every = heartbeat_every
        self.agent = agent
        #: Frames of replay history kept for RESUME (0 disables replay:
        #: a resume is honoured but everything missed becomes a gap).
        self.replay_window = replay_window
        self._replay = (ReplayBuffer(replay_window)
                        if replay_window > 0 else None)
        #: BATCH envelope flush policy for v2 subscribers.
        self.batch = batch if batch is not None else BatchPolicy()
        #: Accepted-connection cap (0: unbounded).  Connections beyond
        #: it are refused with an ERROR frame instead of silently
        #: accumulating server state.
        self.max_subscribers = max_subscribers
        #: Wraps every accepted connection (chaos tests inject faults
        #: here via ``NetworkFaultInjector.wrap``).
        self._transport = transport
        #: Pipeline description included in handshake replies, if any.
        self.advertised_spec: Optional[Dict[str, object]] = None
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        #: Subscribers with queue activity since the last loop pass.
        self._dirty: Set[_Subscriber] = set()
        self._dirty_lock = threading.Lock()
        self._wake_pending = False
        #: Connections mid-handshake (accepted, not yet subscribed).
        self._handshaking: Set[_Subscriber] = set()
        #: Every live connection the loop owns (for teardown).
        self._conns: Set[_Subscriber] = set()
        #: Subscribers with an armed batch-latency flush deadline.
        self._deadlines: Set[_Subscriber] = set()
        self._subscribers: List[_Subscriber] = []
        self._cond = threading.Condition()
        #: Serializes whole publishes (seq assignment + queue offers)
        #: across publisher threads; see the class docstring.
        self._publish_lock = threading.RLock()
        self._running = False
        self.reports_published = 0
        self.health_published = 0
        self.gaps_published = 0
        self.heartbeats_published = 0
        #: Times a publish had to wait on a full ``block``-policy queue.
        self.stalls = 0
        self.resumes_served = 0
        #: RESUMEs whose seq belonged to another server's epoch and
        #: were therefore treated as fresh subscriptions.
        self.resumes_rejected = 0
        #: Connections turned away by ``max_subscribers``.
        self.connections_refused = 0
        self.frames_replayed = 0
        self.replay_evictions = 0
        #: Token identifying this server instance's sequence space.
        self.stream_epoch = uuid.uuid4().hex[:16]
        # One counter across REPORT/HEALTH/GAP: the *stream* sequence a
        # resuming client acks (heartbeats keep their own counter).
        # ``_publish_lock`` serializes assignment with fan-out.
        self._seq = 0

    def set_transport(self, transport: Optional[Callable[[socket.socket],
                                                         socket.socket]]
                      ) -> None:
        """Install/replace the wrapper applied to newly accepted sockets.

        Only connections accepted afterwards are wrapped; existing
        subscribers keep their plain sockets.  Used by the CLI to arm
        ``--net-faults`` on a server built from a pipeline spec.
        """
        self._transport = transport

    def advertise_spec(self, spec: Optional[Dict[str, object]]) -> None:
        """Attach a pipeline description to future handshake replies.

        *spec* is a JSON-safe dict (typically
        ``PipelineSpec.to_dict()``); ``None`` clears the advertisement.
        Only subscribers connecting afterwards see the change.
        """
        self.advertised_spec = None if spec is None else dict(spec)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind, listen, and start the event-loop thread."""
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "listener")
        # Self-pipe idiom: publishers nudge the loop out of select()
        # with one byte on this pair whenever a queue gains frames.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        with self._dirty_lock:
            self._dirty.clear()
            self._wake_pending = False
        self._running = True
        self._loop_thread = threading.Thread(
            target=self._loop, name="telemetry-loop", daemon=True)
        self._loop_thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ephemeral ``port=0``)."""
        if self._listener is None:
            raise TelemetryError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) subscribers should connect to."""
        return (self.host, self.port)

    def stop(self) -> None:
        """Close the listener and every subscriber (idempotent)."""
        with self._cond:
            if not self._running and self._loop_thread is None:
                return
            self._running = False
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None
        # The loop closed everything on its way out; sweeping here also
        # covers a loop thread that died before reaching teardown.
        for subscriber in self.subscribers():
            subscriber.close()
        with self._cond:
            self._subscribers.clear()
            self._cond.notify_all()

    # -- event loop ---------------------------------------------------

    def _wake(self) -> None:
        wake = self._wake_w
        if wake is None:
            return
        try:
            wake.send(b"\x00")
        except OSError:
            pass

    def _mark_dirty(self, subscriber: _Subscriber) -> None:
        """Queue callback: frames (or a close) await the loop's attention.

        Called from publisher threads with arbitrary locks held above
        us, so this takes only the leaf ``_dirty_lock``.  The pending
        flag coalesces wake bytes: at most one is in flight between
        loop passes.
        """
        with self._dirty_lock:
            self._dirty.add(subscriber)
            if self._wake_pending:
                return
            self._wake_pending = True
        self._wake()

    def _loop(self) -> None:
        selector = self._selector
        try:
            while self._running:
                try:
                    events = selector.select(self._next_timeout())
                except OSError:
                    continue
                for key, mask in events:
                    tag = key.data
                    if tag == "listener":
                        self._accept_ready()
                    elif tag == "wake":
                        try:
                            self._wake_r.recv(_RECV_BYTES)
                        except OSError:
                            pass
                    else:
                        self._conn_ready(tag, mask)
                self._service_dirty()
                self._service_deadlines()
        finally:
            self._teardown()

    def _next_timeout(self) -> Optional[float]:
        if not self._deadlines:
            return None
        soonest = min((sub.flush_deadline for sub in self._deadlines
                       if sub.flush_deadline is not None), default=None)
        if soonest is None:
            return None
        return max(0.0, soonest - time.monotonic())

    def _service_dirty(self) -> None:
        with self._dirty_lock:
            dirty = self._dirty
            self._dirty = set()
            self._wake_pending = False
        for subscriber in dirty:
            if not subscriber.closed and subscriber.ready:
                self._pump(subscriber)
                self._flush(subscriber)

    def _service_deadlines(self) -> None:
        if not self._deadlines:
            return
        now = time.monotonic()
        due = [sub for sub in self._deadlines
               if sub.flush_deadline is not None
               and sub.flush_deadline <= now]
        for subscriber in due:
            self._pump(subscriber)
            self._flush(subscriber)

    def _teardown(self) -> None:
        for subscriber in list(self._conns):
            self._drop(subscriber)
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass
            self._selector = None
        for sock in (self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._wake_r = self._wake_w = None

    # -- accepting ----------------------------------------------------

    def _accept_ready(self) -> None:
        while True:
            try:
                conn, peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.setblocking(False)
            if self._transport is not None:
                conn = self._transport(conn)
            subscriber = _Subscriber(self, conn, peer)
            self._conns.add(subscriber)
            with self._cond:
                ready = len(self._subscribers)
                if (self.max_subscribers
                        and ready + len(self._handshaking)
                        >= self.max_subscribers):
                    self.connections_refused += 1
                    self._cond.notify_all()
                    refused = True
                else:
                    refused = False
            if refused:
                # Send a proper ERROR frame, then hold the connection
                # in read-until-EOF: closing with the client's
                # handshake bytes unread would RST the socket and race
                # the error off the wire.
                subscriber.refused = True
                subscriber.enqueue_chunk(wire.error_frame(
                    "subscriber limit reached "
                    f"({self.max_subscribers})"))
                self._flush(subscriber)
                continue
            self._handshaking.add(subscriber)
            self._set_interest(subscriber, selectors.EVENT_READ)

    def _conn_ready(self, subscriber: _Subscriber, mask: int) -> None:
        if subscriber.closed:
            return
        if mask & selectors.EVENT_READ:
            self._read_ready(subscriber)
        if subscriber.closed:
            return
        if mask & selectors.EVENT_WRITE:
            self._pump(subscriber)
            self._flush(subscriber)

    def _read_ready(self, subscriber: _Subscriber) -> None:
        try:
            data = subscriber.conn.recv(_RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(subscriber)
            return
        if not data:
            self._drop(subscriber)  # peer closed
            return
        if subscriber.ready or subscriber.refused:
            # Post-handshake input is not part of the protocol; keep
            # the legacy tolerance of reading and ignoring it (the
            # recv doubles as EOF detection).
            return
        try:
            frames = subscriber.decoder.feed(data)
        except WireProtocolError:
            # Garbage during the handshake: drop, as the threaded
            # handler did (no ERROR — we cannot trust the stream).
            self._drop(subscriber)
            return
        for frame in frames:
            if subscriber.closed or subscriber.ready or subscriber.refused:
                break
            if not self._handshake_frame(subscriber, frame):
                break

    # -- handshake ----------------------------------------------------

    def _handshake_frame(self, subscriber: _Subscriber,
                         frame: wire.Frame) -> bool:
        """Advance one connection's handshake by one frame."""
        if frame.kind is FrameKind.HELLO and subscriber.hello is None:
            subscriber.hello = frame
            return True
        if (frame.kind is FrameKind.RESUME and subscriber.hello is not None
                and subscriber.resume_last_seq is None):
            try:
                last_seq = int(frame.payload["last_seq"])
                if last_seq < 0:
                    raise ValueError("negative")
            except (KeyError, TypeError, ValueError):
                self._refuse(subscriber,
                             "bad RESUME payload: last_seq must "
                             "be a non-negative integer")
                return False
            subscriber.resume_last_seq = last_seq
            epoch = frame.payload.get("epoch")
            if epoch is not None:
                subscriber.resume_epoch = str(epoch)
            return True
        if frame.kind is FrameKind.SUBSCRIBE and subscriber.hello is not None:
            return self._complete_handshake(subscriber, frame)
        self._refuse(subscriber, f"unexpected {frame.kind.name} frame "
                                 "during handshake")
        return False

    def _complete_handshake(self, subscriber: _Subscriber,
                            subscribe: wire.Frame) -> bool:
        try:
            subscriber.version = wire.negotiate_version(
                subscriber.hello.payload.get("versions", ()))
        except (WireProtocolError, TypeError, ValueError) as exc:
            self._refuse(subscriber, f"bad versions list: {exc}")
            return False
        subscriber.agent = str(subscriber.hello.payload.get("agent", ""))
        try:
            subscriber.subscription = _parse_subscription(subscribe.payload)
        except (WireProtocolError, TypeError, ValueError) as exc:
            self._refuse(subscriber, f"bad subscription: {exc}")
            return False
        subscriber.enqueue_chunk(wire.encode_frame(
            FrameKind.HELLO,
            wire.hello_payload(agent=self.agent,
                               chosen=subscriber.version,
                               spec=self.advertised_spec,
                               features=("resume",),
                               epoch=self.stream_epoch),
        ))
        self._handshaking.discard(subscriber)
        self._subscriber_ready(subscriber)
        self._pump(subscriber)
        self._flush(subscriber)
        return True

    def _refuse(self, subscriber: _Subscriber, reason: str) -> None:
        subscriber.refused = True
        subscriber.close_after_flush = True
        subscriber.enqueue_chunk(wire.error_frame(reason))
        self._handshaking.discard(subscriber)
        self._flush(subscriber)

    # -- per-connection write path ------------------------------------

    def _pump(self, subscriber: _Subscriber) -> None:
        """Move queued frames into the connection's write buffer.

        Frames were encoded once at publish time; this only decides
        framing: v2 connections get one BATCH envelope per
        ``BatchPolicy`` window, v1 connections get the same bytes
        concatenated (wire-identical to frame-at-a-time sends).
        """
        if subscriber.closed or not subscriber.ready:
            return
        policy = self.batch
        batching = (subscriber.version >= wire.BATCH_VERSION
                    and policy.max_frames > 1)
        while subscriber.outbuf_bytes < _OUTBUF_LIMIT:
            if (batching and policy.max_latency_s > 0.0
                    and not subscriber.queue.closed
                    and len(subscriber.queue) < policy.max_frames):
                # Not enough for a full batch: spend the latency
                # budget accumulating before flushing a partial one.
                now = time.monotonic()
                if subscriber.flush_deadline is None:
                    if len(subscriber.queue) == 0:
                        break
                    subscriber.flush_deadline = (
                        now + policy.max_latency_s)
                    self._deadlines.add(subscriber)
                    break
                if now < subscriber.flush_deadline:
                    break
            items = subscriber.queue.pop_many_nowait(
                policy.max_frames, policy.max_bytes)
            if subscriber.flush_deadline is not None:
                subscriber.flush_deadline = None
                self._deadlines.discard(subscriber)
            if not items:
                break
            frames = [data for _kind, data in items]
            if batching and len(frames) > 1:
                chunk = wire.encode_batch(frames)
            else:
                chunk = frames[0] if len(frames) == 1 else b"".join(frames)
            subscriber.enqueue_chunk(chunk, frames=len(frames),
                                     counted=True)

    def _flush(self, subscriber: _Subscriber) -> None:
        """Write buffered chunks until the socket would block."""
        while subscriber.outbuf:
            data, frames, counted = subscriber.outbuf[0]
            view = memoryview(data)[subscriber.chunk_offset:]
            try:
                sent = subscriber.conn.send(view)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(subscriber)
                return
            if sent <= 0:
                break
            subscriber.chunk_offset += sent
            complete = subscriber.chunk_offset >= len(data)
            with self._cond:
                subscriber.bytes_sent += sent
                if complete and counted:
                    subscriber.frames_sent += frames
                self._cond.notify_all()
            if not complete:
                break  # kernel buffer full mid-chunk
            subscriber.outbuf.popleft()
            subscriber.outbuf_bytes -= len(data)
            subscriber.chunk_offset = 0
            if not subscriber.outbuf:
                # Freed the buffer: top it back up so a deep backlog
                # drains in few syscalls.
                self._pump(subscriber)
        if subscriber.closed:
            return
        if subscriber.outbuf:
            self._set_interest(
                subscriber, selectors.EVENT_READ | selectors.EVENT_WRITE)
        elif subscriber.close_after_flush:
            self._drop(subscriber)
        else:
            self._set_interest(subscriber, selectors.EVENT_READ)

    def _set_interest(self, subscriber: _Subscriber, mask: int) -> None:
        if subscriber.closed or subscriber.interest == mask:
            return
        try:
            if subscriber.interest == 0:
                self._selector.register(subscriber.conn, mask, subscriber)
            else:
                self._selector.modify(subscriber.conn, mask, subscriber)
            subscriber.interest = mask
        except (KeyError, ValueError, OSError):
            pass

    def _drop(self, subscriber: _Subscriber) -> None:
        """Close one connection and forget every reference to it."""
        if subscriber.interest:
            try:
                self._selector.unregister(subscriber.conn)
            except (KeyError, ValueError, OSError):
                pass
            subscriber.interest = 0
        self._conns.discard(subscriber)
        self._handshaking.discard(subscriber)
        self._deadlines.discard(subscriber)
        subscriber.close()
        with self._cond:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)
            self._cond.notify_all()

    # -- subscriber activation ----------------------------------------

    def _subscriber_ready(self, subscriber: _Subscriber) -> None:
        # Replay and registration are one atomic step under ``_cond``:
        # a publisher that sees this subscriber in its targets snapshot
        # strictly follows this block, so every stream frame lands
        # exactly once — in the replay batch or live, never both.
        with self._cond:
            if subscriber.resume_last_seq is not None:
                if (subscriber.resume_epoch is not None
                        and subscriber.resume_epoch != self.stream_epoch):
                    # A seq from another server instance's sequence
                    # space means nothing here: fresh subscription.
                    self.resumes_rejected += 1
                else:
                    self._replay_to(subscriber, subscriber.resume_last_seq)
            subscriber.ready = True
            self._subscribers.append(subscriber)
            self._cond.notify_all()

    def _replay_to(self, subscriber: _Subscriber, last_seq: int) -> None:
        """Serve one RESUME: replay held frames, mark evictions.

        Runs under ``_cond``; enqueues via the queue's non-blocking
        ``force`` (the fresh queue has no blocked publishers, so taking
        its lock here cannot deadlock).  Replayed frames pass through
        the same pid/kind/downsample predicate as live frames — a
        resumed subscriber never sees a frame its subscription would
        have suppressed live (entries recorded without payload metadata
        fall back to kind-only filtering).
        """
        self.resumes_served += 1
        if self._replay is not None:
            held, evicted_through = self._replay.since(last_seq)
        else:
            held = []
            evicted_through = (self._seq - 1
                               if self._seq - 1 > last_seq else None)
        subscription = subscriber.subscription
        admitted: List[Tuple[int, FrameKind, bytes]] = []
        for seq, kind, data, meta in held:
            if subscription is not None:
                if meta is None:
                    if not subscription.wants_kind(kind):
                        continue
                elif not subscription.admit_payload(kind, meta):
                    continue
                elif (kind is FrameKind.REPORT
                        and subscription.pids is not None):
                    data = wire.encode_frame(
                        kind, subscription.restrict_payload(meta),
                        version=wire.STREAM_VERSION)
            admitted.append((seq, kind, data))
        # Reserve one queue slot for the eviction gap marker: frames
        # that cannot fit extend the evicted range instead of silently
        # evicting each other inside the queue.
        budget = subscriber.queue.capacity - 1
        if len(admitted) > budget:
            overflow = admitted[:-budget] if budget > 0 else admitted
            admitted = admitted[-budget:] if budget > 0 else []
            evicted_through = overflow[-1][0]
        if evicted_through is not None and evicted_through > last_seq:
            self.replay_evictions += 1
            gap = wire.eviction_gap_frame(
                evicted_from=last_seq + 1, evicted_through=evicted_through,
                time_s=0.0, host=self.host_label)
            subscriber.queue.force(FrameKind.GAP, gap)
        for _seq, kind, data in admitted:
            subscriber.queue.force(kind, data)
        subscriber.frames_replayed += len(admitted)
        self.frames_replayed += len(admitted)

    # -- publishing ---------------------------------------------------

    def publish_report(self, report: AggregatedPowerReport) -> int:
        """Fan one aggregated report out; returns queues offered to."""
        return self.publish_frame(FrameKind.REPORT, report.to_wire())

    def publish_health(self, event: HealthEvent) -> int:
        """Fan one health event out to health subscribers."""
        return self.publish_frame(FrameKind.HEALTH, event.to_wire())

    def publish_gap(self, marker: GapMarker) -> int:
        """Fan one sensor gap marker out to gap subscribers."""
        return self.publish_frame(FrameKind.GAP, marker.to_wire())

    def publish_frame(self, kind: FrameKind,
                      payload: Mapping[str, object]) -> int:
        """Fan one stream frame out from its wire payload; returns
        queues offered to.

        The shared entry point behind every ``publish_*`` wrapper and
        the relay's re-publish path: *payload* is a JSON-safe dict
        (``event.to_wire()``, or a decoded upstream frame's payload).
        This hop stamps its own ``seq``, fills ``host`` only if the
        origin left it empty, and preserves any ``origin_seq`` /
        ``origin_epoch`` keys riding along — which is how end-to-end
        identity survives a relay tree.  The frame is encoded exactly
        once (at the floor stream version, so the same bytes serve v1
        and v2 subscribers); only pid-restricted report views are
        re-encoded, per subscriber.
        """
        counter = _PUBLISH_COUNTERS.get(kind)
        if counter is None:
            raise TelemetryError(
                f"cannot publish {FrameKind(kind).name} frames")
        body = dict(payload)
        if not body.get("host"):
            body["host"] = self.host_label
        with self._publish_lock:
            with self._cond:
                seq = self._seq
                self._seq += 1
                setattr(self, counter, getattr(self, counter) + 1)
                targets = list(self._subscribers)
                body["seq"] = seq
                data = wire.encode_frame(kind, body,
                                         version=wire.STREAM_VERSION)
                if self._replay is not None:
                    # Seq assignment + ring append are atomic with the
                    # targets snapshot, so a concurrent resume replays
                    # exactly the frames its owner will not receive
                    # live.  The payload rides along as replay
                    # metadata so resumes re-apply subscription
                    # filters.
                    self._replay.append(seq, kind, data, meta=body)
            offered = 0
            for subscriber in targets:
                subscription = subscriber.subscription
                if (subscription is None
                        or not subscription.admit_payload(kind, body)):
                    continue
                if (kind is FrameKind.REPORT
                        and subscription.pids is not None):
                    chunk = wire.encode_frame(
                        kind, subscription.restrict_payload(body),
                        version=wire.STREAM_VERSION)
                else:
                    chunk = data
                offered += self._offer(subscriber, kind, chunk)
            if kind is FrameKind.REPORT:
                self._maybe_heartbeat(float(body.get("time_s", 0.0)))
        self._notify()
        return offered

    def _maybe_heartbeat(self, time_s: float) -> None:
        if (self.heartbeat_every <= 0
                or self.reports_published % self.heartbeat_every != 0):
            return
        with self._cond:
            self.heartbeats_published += 1
            seq = self.heartbeats_published
            targets = list(self._subscribers)
        data = wire.heartbeat_frame(seq, time_s, host=self.host_label)
        for subscriber in targets:
            if (subscriber.subscription is not None
                    and subscriber.subscription.wants_kind(
                        FrameKind.HEARTBEAT)):
                self._offer(subscriber, FrameKind.HEARTBEAT, data)

    def _count_stall(self) -> None:
        # Called from inside a queue's lock, so the order here is
        # queue -> server ``_cond``.  Every other server path must
        # therefore release ``_cond`` before touching any queue lock
        # (see ``stats()``) or it deadlocks against a stalled publisher.
        with self._cond:
            self.stalls += 1
            self._cond.notify_all()

    @staticmethod
    def _offer(subscriber: _Subscriber, kind: FrameKind,
               data: bytes) -> int:
        return 1 if subscriber.offer(kind, data) else 0

    def _notify(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- introspection -------------------------------------------------

    def subscribers(self) -> List[_Subscriber]:
        """A snapshot of the currently connected, ready subscribers."""
        with self._cond:
            return list(self._subscribers)

    @property
    def subscriber_count(self) -> int:
        with self._cond:
            return len(self._subscribers)

    def stats(self) -> Dict[str, object]:
        """Server-wide and per-subscriber delivery counters."""
        # Snapshot the list under ``_cond`` but collect each
        # subscriber's counters only after releasing it: ``sub.stats()``
        # takes that subscriber's queue lock, while a block-policy
        # publisher stalled in ``offer()`` holds the queue lock and
        # waits for ``_cond`` in ``_count_stall`` — holding both here
        # would be an ABBA deadlock.
        targets = self.subscribers()
        subscribers = [sub.stats() for sub in targets]
        return {
            "host_label": self.host_label,
            "overflow": self.overflow,
            "queue_capacity": self.queue_capacity,
            "reports_published": self.reports_published,
            "health_published": self.health_published,
            "gaps_published": self.gaps_published,
            "heartbeats_published": self.heartbeats_published,
            "stalls": self.stalls,
            "replay_window": self.replay_window,
            "stream_epoch": self.stream_epoch,
            "resumes_served": self.resumes_served,
            "resumes_rejected": self.resumes_rejected,
            "connections_refused": self.connections_refused,
            "frames_replayed": self.frames_replayed,
            "replay_evictions": self.replay_evictions,
            "subscribers": subscribers,
        }

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float = 5.0) -> bool:
        """Condition-based wait until *predicate()* holds (no polling)."""
        deadline = threading.TIMEOUT_MAX if timeout is None else timeout
        with self._cond:
            return self._cond.wait_for(predicate, timeout=deadline)

    def wait_for_subscribers(self, count: int,
                             timeout: float = 5.0) -> bool:
        """Wait until *count* subscribers have completed their handshake."""
        return self.wait_for(
            lambda: len(self._subscribers) >= count, timeout=timeout)

    def wait_until_sent(self, frames: int, timeout: float = 5.0) -> bool:
        """Wait until every subscriber has sent >= *frames* frames."""
        def _done() -> bool:
            return all(sub.frames_sent >= frames
                       for sub in self._subscribers)
        return self.wait_for(_done, timeout=timeout)


class TelemetryBridge(Actor):
    """The actor gluing the event bus to a :class:`TelemetryServer`.

    Subscribes to :class:`AggregatedPowerReport`, :class:`HealthEvent`
    and :class:`GapMarker` and forwards each to the server, optionally
    restricted to one pipeline's pids — which is what scopes a server
    to a single :class:`~repro.core.monitor.MonitorHandle`.
    """

    def __init__(self, server: TelemetryServer,
                 pids: Optional[Sequence[int]] = None) -> None:
        super().__init__()
        self.server = server
        self.pids = None if pids is None else frozenset(pids)
        self.forwarded = 0

    def pre_start(self) -> None:
        bus = self.context.system.event_bus
        bus.subscribe(AggregatedPowerReport, self.self_ref)
        bus.subscribe(HealthEvent, self.self_ref)
        bus.subscribe(GapMarker, self.self_ref)

    def receive(self, message) -> None:
        if isinstance(message, AggregatedPowerReport):
            if (self.pids is not None and not message.gap
                    and self.pids.isdisjoint(message.by_pid)):
                return
            self.server.publish_report(message)
        elif isinstance(message, HealthEvent):
            self.server.publish_health(message)
        elif isinstance(message, GapMarker):
            if (self.pids is not None and message.pid != -1
                    and message.pid not in self.pids):
                return
            self.server.publish_gap(message)
        else:
            return
        self.forwarded += 1

"""The telemetry server: event-bus to TCP subscriber fan-out.

A :class:`TelemetryServer` listens on localhost and streams the live
output of a monitoring pipeline — aggregated power reports, health
events and sensor gap markers — to any number of concurrent
subscribers.  The design splits cleanly into:

* one **accept thread** handing new connections to per-subscriber
  handler threads,
* one **handshake + writer thread per subscriber**: Hello/Subscribe
  negotiation, then a loop popping frames off the subscriber's own
  :class:`BoundedFrameQueue` and writing them to the socket,
* **publishers** (the actor thread, via :class:`TelemetryBridge`)
  that encode each event once and offer it to every matching queue.

A slow subscriber therefore never slows the pipeline down unless the
server is explicitly configured with the ``block`` overflow policy;
``drop-oldest`` and ``coalesce`` shed load per subscriber and account
for every shed frame in that subscriber's counters.
"""

from __future__ import annotations

import socket
import threading
import uuid
from collections import deque
from typing import (Callable, Deque, Dict, FrozenSet, List, Optional,
                    Sequence, Tuple)

from repro.actors.actor import Actor
from repro.core.messages import AggregatedPowerReport, GapMarker, HealthEvent
from repro.errors import ConfigurationError, TelemetryError, WireProtocolError
from repro.telemetry import wire
from repro.telemetry.wire import FrameKind

#: Socket receive chunk for the handshake reader.
_RECV_BYTES = 65536


class OverflowPolicy:
    """What a full subscriber queue does with the next frame."""

    #: The publisher waits for space (backpressure; can stall the bus).
    BLOCK = "block"
    #: Evict the oldest queued frame to admit the new one (lossy FIFO).
    DROP_OLDEST = "drop-oldest"
    #: Pending Report frames collapse to the latest one; other kinds
    #: fall back to drop-oldest.  The subscriber always sees the newest
    #: state with bounded lag.
    COALESCE = "coalesce"

    ALL = (BLOCK, DROP_OLDEST, COALESCE)


class BoundedFrameQueue:
    """A bounded frame queue implementing the three overflow policies.

    Kept separate from the socket machinery so the policies are
    unit-testable without any I/O.  ``pause()`` holds the consumer —
    the deterministic way to simulate a slow subscriber in tests.
    """

    def __init__(self, capacity: int,
                 policy: str = OverflowPolicy.DROP_OLDEST,
                 on_block: Optional[Callable[[], None]] = None) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if policy not in OverflowPolicy.ALL:
            raise ConfigurationError(
                f"unknown overflow policy {policy!r}; "
                f"use one of {', '.join(OverflowPolicy.ALL)}")
        self.capacity = capacity
        self.policy = policy
        #: Called the moment a producer starts waiting for space, so
        #: stall accounting is visible while the stall is in progress.
        self.on_block = on_block
        self._items: Deque[Tuple[FrameKind, bytes]] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._paused = False
        #: Frames shed by drop-oldest / coalesce on this queue.
        self.dropped = 0
        #: Times a producer had to wait for space (block policy only).
        self.blocked = 0
        #: Maximum queue depth ever observed.
        self.high_water = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def offer(self, kind: FrameKind, data: bytes) -> bool:
        """Enqueue one frame per the policy; False if the queue closed."""
        with self._cond:
            if self._closed:
                return False
            if len(self._items) >= self.capacity:
                if self.policy == OverflowPolicy.BLOCK:
                    self.blocked += 1
                    if self.on_block is not None:
                        self.on_block()
                    while len(self._items) >= self.capacity:
                        if self._closed:
                            return False
                        self._cond.wait()
                elif (self.policy == OverflowPolicy.COALESCE
                        and kind is FrameKind.REPORT):
                    # Replace the most recent pending report with this
                    # one: the subscriber skips straight to the latest.
                    for index in range(len(self._items) - 1, -1, -1):
                        if self._items[index][0] is FrameKind.REPORT:
                            del self._items[index]
                            self.dropped += 1
                            break
                    else:
                        self._items.popleft()
                        self.dropped += 1
                else:
                    self._items.popleft()
                    self.dropped += 1
            self._items.append((kind, data))
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify_all()
            return True

    def force(self, kind: FrameKind, data: bytes) -> bool:
        """Enqueue one frame without ever blocking.

        Evicts the oldest queued frame when full regardless of policy.
        Used for resume replay, which runs while holding the server's
        ``_cond`` — a blocking ``offer`` there would deadlock against
        the writer thread (it takes ``_cond`` after every send).
        """
        with self._cond:
            if self._closed:
                return False
            if len(self._items) >= self.capacity:
                self._items.popleft()
                self.dropped += 1
            self._items.append((kind, data))
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify_all()
            return True

    def pop(self) -> Optional[Tuple[FrameKind, bytes]]:
        """Dequeue the next frame, blocking; None once closed and empty."""
        with self._cond:
            while self._paused or not self._items:
                if self._closed and not (self._items and not self._paused):
                    return None
                self._cond.wait()
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def pause(self) -> None:
        """Hold the consumer (frames pile up; policies become visible)."""
        with self._cond:
            self._paused = True
            self._cond.notify_all()

    def resume(self) -> None:
        """Release a paused consumer."""
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def close(self) -> None:
        """Wake every waiter; pop drains remaining frames then ends."""
        with self._cond:
            self._closed = True
            self._paused = False
            self._cond.notify_all()


class ReplayBuffer:
    """The server's bounded ring of recently published stream frames.

    Every REPORT/HEALTH/GAP frame is appended as ``(seq, kind, bytes)``;
    :meth:`since` answers a RESUME: the frames still held after
    ``last_seq``, plus the highest sequence number that has scrolled out
    of the window (``None`` when nothing the client missed was evicted).
    Not self-locking — the server mutates it under its own ``_cond``.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError("replay window must be >= 1")
        self.window = window
        self._items: Deque[Tuple[int, FrameKind, bytes]] = deque(
            maxlen=window)
        #: Highest sequence number ever appended (-1 when empty).
        self.last_seq = -1

    def __len__(self) -> int:
        return len(self._items)

    def append(self, seq: int, kind: FrameKind, data: bytes) -> None:
        self._items.append((seq, kind, data))
        self.last_seq = seq

    def since(self, last_seq: int
              ) -> Tuple[List[Tuple[int, FrameKind, bytes]], Optional[int]]:
        """``(replayable frames after last_seq, evicted_through)``."""
        frames = [item for item in self._items if item[0] > last_seq]
        if frames:
            oldest_held = frames[0][0]
            evicted = oldest_held - 1 if oldest_held > last_seq + 1 else None
        else:
            evicted = self.last_seq if self.last_seq > last_seq else None
        return frames, evicted


class _Subscription:
    """One subscriber's negotiated filters."""

    def __init__(self, pids: Optional[FrozenSet[int]] = None,
                 kinds: Optional[FrozenSet[FrameKind]] = None,
                 downsample: int = 1) -> None:
        self.pids = pids
        self.kinds = kinds or frozenset(
            (FrameKind.REPORT, FrameKind.HEALTH, FrameKind.GAP,
             FrameKind.HEARTBEAT))
        self.downsample = max(1, downsample)
        self._report_index = 0

    def wants_kind(self, kind: FrameKind) -> bool:
        return kind in self.kinds

    def admit_report(self, report: AggregatedPowerReport) -> bool:
        """Apply the pid filter and downsample ratio to one report."""
        if self.pids is not None and not report.gap and self.pids.isdisjoint(
                report.by_pid):
            return False
        index = self._report_index
        self._report_index += 1
        return index % self.downsample == 0

    def admit_gap(self, marker: GapMarker) -> bool:
        if self.pids is None or marker.pid == -1:
            return True
        return marker.pid in self.pids

    def restrict(self, report: AggregatedPowerReport
                 ) -> AggregatedPowerReport:
        """The report with ``by_pid`` narrowed to the subscribed pids."""
        if self.pids is None:
            return report
        return AggregatedPowerReport(
            time_s=report.time_s, period_s=report.period_s,
            by_pid={pid: watts for pid, watts in report.by_pid.items()
                    if pid in self.pids},
            idle_w=report.idle_w, formula=report.formula, gap=report.gap)


class _Subscriber:
    """Server-side state for one connected subscriber."""

    _ids = 0

    def __init__(self, server: "TelemetryServer",
                 conn: socket.socket, peer: Tuple[str, int]) -> None:
        _Subscriber._ids += 1
        self.id = _Subscriber._ids
        self.server = server
        self.conn = conn
        self.peer = peer
        self.queue = BoundedFrameQueue(server.queue_capacity,
                                       server.overflow,
                                       on_block=server._count_stall)
        self.subscription: Optional[_Subscription] = None
        self.agent = ""
        self.version = wire.PROTOCOL_VERSION
        #: Last-acked seq from a RESUME frame (None: fresh subscriber).
        self.resume_last_seq: Optional[int] = None
        #: Stream epoch the RESUME's seq belongs to, if the client knew.
        self.resume_epoch: Optional[str] = None
        self.ready = False
        self.closed = False
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_replayed = 0
        self.thread = threading.Thread(
            target=self._run, name=f"telemetry-sub-{self.id}", daemon=True)

    # -- handshake + writer loop --------------------------------------

    def _run(self) -> None:
        try:
            if self._handshake():
                self.server._subscriber_ready(self)
                self._write_loop()
        except (OSError, WireProtocolError, TelemetryError):
            pass
        finally:
            self.server._remove_subscriber(self)

    def _handshake(self) -> bool:
        decoder = wire.FrameDecoder()
        hello: Optional[wire.Frame] = None
        subscribe: Optional[wire.Frame] = None
        while subscribe is None:
            data = self.conn.recv(_RECV_BYTES)
            if not data:
                return False
            for frame in decoder.feed(data):
                if frame.kind is FrameKind.HELLO and hello is None:
                    hello = frame
                elif (frame.kind is FrameKind.RESUME and hello is not None
                        and self.resume_last_seq is None):
                    try:
                        last_seq = int(frame.payload["last_seq"])
                        if last_seq < 0:
                            raise ValueError("negative")
                    except (KeyError, TypeError, ValueError):
                        self._refuse("bad RESUME payload: last_seq must "
                                     "be a non-negative integer")
                        return False
                    self.resume_last_seq = last_seq
                    epoch = frame.payload.get("epoch")
                    if epoch is not None:
                        self.resume_epoch = str(epoch)
                elif frame.kind is FrameKind.SUBSCRIBE and hello is not None:
                    subscribe = frame
                    break
                else:
                    self._refuse(f"unexpected {frame.kind.name} frame "
                                 "during handshake")
                    return False
        try:
            self.version = wire.negotiate_version(
                hello.payload.get("versions", ()))
        except (WireProtocolError, TypeError, ValueError) as exc:
            self._refuse(f"bad versions list: {exc}")
            return False
        self.agent = str(hello.payload.get("agent", ""))
        try:
            self.subscription = self._parse_subscription(subscribe.payload)
        except (WireProtocolError, TypeError, ValueError) as exc:
            self._refuse(f"bad subscription: {exc}")
            return False
        self.conn.sendall(wire.encode_frame(
            FrameKind.HELLO,
            wire.hello_payload(agent=self.server.agent,
                               chosen=self.version,
                               spec=self.server.advertised_spec,
                               features=("resume",),
                               epoch=self.server.stream_epoch),
        ))
        return True

    @staticmethod
    def _parse_subscription(payload: Dict[str, object]) -> _Subscription:
        pids = payload.get("pids")
        kinds = payload.get("kinds")
        return _Subscription(
            pids=None if pids is None else frozenset(
                int(pid) for pid in pids),
            kinds=None if kinds is None else frozenset(
                wire.kinds_from_names(kinds)),
            downsample=int(payload.get("downsample", 1)),
        )

    def _refuse(self, reason: str) -> None:
        try:
            self.conn.sendall(wire.error_frame(reason))
        except OSError:
            pass

    def _write_loop(self) -> None:
        while True:
            item = self.queue.pop()
            if item is None:
                return
            _kind, data = item
            self.conn.sendall(data)
            with self.server._cond:
                self.frames_sent += 1
                self.bytes_sent += len(data)
                self.server._cond.notify_all()

    # -- publisher side -----------------------------------------------

    def offer(self, kind: FrameKind, data: bytes) -> bool:
        return self.queue.offer(kind, data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.queue.close()
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass

    def stats(self) -> Dict[str, object]:
        """This subscriber's delivery counters."""
        return {
            "id": self.id,
            "agent": self.agent,
            "peer": f"{self.peer[0]}:{self.peer[1]}",
            "version": self.version,
            "frames_sent": self.frames_sent,
            "frames_replayed": self.frames_replayed,
            "frames_dropped": self.queue.dropped,
            "bytes_sent": self.bytes_sent,
            "queue_high_water": self.queue.high_water,
            "queue_depth": len(self.queue),
            "blocked": self.queue.blocked,
        }


class TelemetryServer:
    """Streams pipeline telemetry to TCP subscribers on localhost.

    Thread model: ``start()`` spawns the accept thread; every
    connection gets its own handler thread.  ``publish_*`` may be
    called from any thread (typically the single actor-dispatch
    thread through a :class:`TelemetryBridge`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 overflow: str = OverflowPolicy.DROP_OLDEST,
                 queue_capacity: int = 256,
                 host_label: str = "",
                 heartbeat_every: int = 0,
                 agent: str = "repro-telemetry-server",
                 replay_window: int = 0,
                 transport: Optional[Callable[[socket.socket],
                                              socket.socket]] = None) -> None:
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if overflow not in OverflowPolicy.ALL:
            raise ConfigurationError(
                f"unknown overflow policy {overflow!r}; "
                f"use one of {', '.join(OverflowPolicy.ALL)}")
        if heartbeat_every < 0:
            raise ConfigurationError("heartbeat_every must be >= 0")
        if replay_window < 0:
            raise ConfigurationError("replay_window must be >= 0")
        self.host = host
        self.overflow = overflow
        self.queue_capacity = queue_capacity
        self.host_label = host_label
        self.heartbeat_every = heartbeat_every
        self.agent = agent
        #: Frames of replay history kept for RESUME (0 disables replay:
        #: a resume is honoured but everything missed becomes a gap).
        self.replay_window = replay_window
        self._replay = (ReplayBuffer(replay_window)
                        if replay_window > 0 else None)
        #: Wraps every accepted connection (chaos tests inject faults
        #: here via ``NetworkFaultInjector.wrap``).
        self._transport = transport
        #: Pipeline description included in handshake replies, if any.
        self.advertised_spec: Optional[Dict[str, object]] = None
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._subscribers: List[_Subscriber] = []
        self._cond = threading.Condition()
        self._running = False
        self.reports_published = 0
        self.health_published = 0
        self.gaps_published = 0
        self.heartbeats_published = 0
        #: Times a publish had to wait on a full ``block``-policy queue.
        self.stalls = 0
        self.resumes_served = 0
        #: RESUMEs whose seq belonged to another server's epoch and
        #: were therefore treated as fresh subscriptions.
        self.resumes_rejected = 0
        self.frames_replayed = 0
        self.replay_evictions = 0
        #: Token identifying this server instance's sequence space.
        self.stream_epoch = uuid.uuid4().hex[:16]
        # One counter across REPORT/HEALTH/GAP: the *stream* sequence a
        # resuming client acks (heartbeats keep their own counter).
        # Ordering assumes publishes are serialized — in practice they
        # all come from the single actor-dispatch thread.
        self._seq = 0

    def set_transport(self, transport: Optional[Callable[[socket.socket],
                                                         socket.socket]]
                      ) -> None:
        """Install/replace the wrapper applied to newly accepted sockets.

        Only connections accepted afterwards are wrapped; existing
        subscribers keep their plain sockets.  Used by the CLI to arm
        ``--net-faults`` on a server built from a pipeline spec.
        """
        self._transport = transport

    def advertise_spec(self, spec: Optional[Dict[str, object]]) -> None:
        """Attach a pipeline description to future handshake replies.

        *spec* is a JSON-safe dict (typically
        ``PipelineSpec.to_dict()``); ``None`` clears the advertisement.
        Only subscribers connecting afterwards see the change.
        """
        self.advertised_spec = None if spec is None else dict(spec)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind, listen, and start accepting subscribers."""
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="telemetry-accept", daemon=True)
        self._accept_thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ephemeral ``port=0``)."""
        if self._listener is None:
            raise TelemetryError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) subscribers should connect to."""
        return (self.host, self.port)

    def stop(self) -> None:
        """Close the listener and every subscriber (idempotent)."""
        with self._cond:
            if not self._running and self._listener is None:
                return
            self._running = False
        if self._listener is not None:
            # shutdown() (not just close()) is what actually wakes a
            # thread blocked in accept() on Linux.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for subscriber in self.subscribers():
            subscriber.close()
            subscriber.thread.join(timeout=5.0)
        with self._cond:
            self._subscribers.clear()
            self._cond.notify_all()

    # -- accepting ----------------------------------------------------

    def _accept_loop(self) -> None:
        # Capture the listener once: stop() nulls ``self._listener``
        # concurrently, and an attribute lookup racing that assignment
        # would raise AttributeError instead of the OSError we catch.
        listener = self._listener
        while self._running:
            try:
                conn, peer = listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._transport is not None:
                conn = self._transport(conn)
            subscriber = _Subscriber(self, conn, peer)
            subscriber.thread.start()

    def _subscriber_ready(self, subscriber: _Subscriber) -> None:
        # Replay and registration are one atomic step under ``_cond``:
        # a publisher that sees this subscriber in its targets snapshot
        # strictly follows this block, so every stream frame lands
        # exactly once — in the replay batch or live, never both.
        with self._cond:
            if subscriber.resume_last_seq is not None:
                if (subscriber.resume_epoch is not None
                        and subscriber.resume_epoch != self.stream_epoch):
                    # A seq from another server instance's sequence
                    # space means nothing here: fresh subscription.
                    self.resumes_rejected += 1
                else:
                    self._replay_to(subscriber, subscriber.resume_last_seq)
            subscriber.ready = True
            self._subscribers.append(subscriber)
            self._cond.notify_all()

    def _replay_to(self, subscriber: _Subscriber, last_seq: int) -> None:
        """Serve one RESUME: replay held frames, mark evictions.

        Runs under ``_cond``; enqueues via the queue's non-blocking
        ``force`` (the fresh queue has no blocked publishers, so taking
        its lock here cannot deadlock).  Replay frames are the base
        (unfiltered) encodings — pid/downsample filters apply to live
        frames only.
        """
        self.resumes_served += 1
        if self._replay is not None:
            frames, evicted_through = self._replay.since(last_seq)
        else:
            frames = []
            evicted_through = (self._seq - 1
                               if self._seq - 1 > last_seq else None)
        # Reserve one queue slot for the eviction gap marker: frames
        # that cannot fit extend the evicted range instead of silently
        # evicting each other inside the queue.
        budget = subscriber.queue.capacity - 1
        if len(frames) > budget:
            overflow = frames[:-budget] if budget > 0 else frames
            frames = frames[-budget:] if budget > 0 else []
            evicted_through = overflow[-1][0]
        if evicted_through is not None and evicted_through > last_seq:
            self.replay_evictions += 1
            gap = wire.eviction_gap_frame(
                evicted_from=last_seq + 1, evicted_through=evicted_through,
                time_s=0.0, host=self.host_label)
            subscriber.queue.force(FrameKind.GAP, gap)
        for _seq, kind, data in frames:
            subscriber.queue.force(kind, data)
        subscriber.frames_replayed += len(frames)
        self.frames_replayed += len(frames)

    def _remove_subscriber(self, subscriber: _Subscriber) -> None:
        subscriber.close()
        with self._cond:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)
            self._cond.notify_all()

    # -- publishing ---------------------------------------------------

    def publish_report(self, report: AggregatedPowerReport) -> int:
        """Fan one aggregated report out; returns queues offered to."""
        with self._cond:
            seq = self._seq
            self._seq += 1
            self.reports_published += 1
            targets = list(self._subscribers)
            base: Optional[bytes] = None
            if self._replay is not None:
                # Seq assignment + ring append are atomic with the
                # targets snapshot, so a concurrent resume replays
                # exactly the frames its owner will not receive live.
                base = wire.report_frame(report, host=self.host_label,
                                         seq=seq)
                self._replay.append(seq, FrameKind.REPORT, base)
        offered = 0
        for subscriber in targets:
            subscription = subscriber.subscription
            if (subscription is None
                    or not subscription.wants_kind(FrameKind.REPORT)
                    or not subscription.admit_report(report)):
                continue
            if subscription.pids is None:
                if base is None:
                    base = wire.report_frame(report, host=self.host_label,
                                             seq=seq)
                data = base
            else:
                data = wire.report_frame(subscription.restrict(report),
                                         host=self.host_label, seq=seq)
            offered += self._offer(subscriber, FrameKind.REPORT, data)
        self._maybe_heartbeat(report.time_s)
        self._notify()
        return offered

    def publish_health(self, event: HealthEvent) -> int:
        """Fan one health event out to health subscribers."""
        with self._cond:
            seq = self._seq
            self._seq += 1
            self.health_published += 1
            targets = list(self._subscribers)
            data = wire.health_frame(event, host=self.host_label, seq=seq)
            if self._replay is not None:
                self._replay.append(seq, FrameKind.HEALTH, data)
        offered = sum(
            self._offer(sub, FrameKind.HEALTH, data) for sub in targets
            if sub.subscription is not None
            and sub.subscription.wants_kind(FrameKind.HEALTH))
        self._notify()
        return offered

    def publish_gap(self, marker: GapMarker) -> int:
        """Fan one sensor gap marker out to gap subscribers."""
        with self._cond:
            seq = self._seq
            self._seq += 1
            self.gaps_published += 1
            targets = list(self._subscribers)
            data = wire.gap_frame(marker, host=self.host_label, seq=seq)
            if self._replay is not None:
                self._replay.append(seq, FrameKind.GAP, data)
        offered = sum(
            self._offer(sub, FrameKind.GAP, data) for sub in targets
            if sub.subscription is not None
            and sub.subscription.wants_kind(FrameKind.GAP)
            and sub.subscription.admit_gap(marker))
        self._notify()
        return offered

    def _maybe_heartbeat(self, time_s: float) -> None:
        if (self.heartbeat_every <= 0
                or self.reports_published % self.heartbeat_every != 0):
            return
        with self._cond:
            self.heartbeats_published += 1
            seq = self.heartbeats_published
            targets = list(self._subscribers)
        data = wire.heartbeat_frame(seq, time_s, host=self.host_label)
        for subscriber in targets:
            if (subscriber.subscription is not None
                    and subscriber.subscription.wants_kind(
                        FrameKind.HEARTBEAT)):
                self._offer(subscriber, FrameKind.HEARTBEAT, data)

    def _count_stall(self) -> None:
        # Called from inside a queue's lock, so the order here is
        # queue -> server ``_cond``.  Every other server path must
        # therefore release ``_cond`` before touching any queue lock
        # (see ``stats()``) or it deadlocks against a stalled publisher.
        with self._cond:
            self.stalls += 1
            self._cond.notify_all()

    @staticmethod
    def _offer(subscriber: _Subscriber, kind: FrameKind,
               data: bytes) -> int:
        return 1 if subscriber.offer(kind, data) else 0

    def _notify(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- introspection -------------------------------------------------

    def subscribers(self) -> List[_Subscriber]:
        """A snapshot of the currently connected, ready subscribers."""
        with self._cond:
            return list(self._subscribers)

    @property
    def subscriber_count(self) -> int:
        with self._cond:
            return len(self._subscribers)

    def stats(self) -> Dict[str, object]:
        """Server-wide and per-subscriber delivery counters."""
        # Snapshot the list under ``_cond`` but collect each
        # subscriber's counters only after releasing it: ``sub.stats()``
        # takes that subscriber's queue lock, while a block-policy
        # publisher stalled in ``offer()`` holds the queue lock and
        # waits for ``_cond`` in ``_count_stall`` — holding both here
        # would be an ABBA deadlock.
        targets = self.subscribers()
        subscribers = [sub.stats() for sub in targets]
        return {
            "host_label": self.host_label,
            "overflow": self.overflow,
            "queue_capacity": self.queue_capacity,
            "reports_published": self.reports_published,
            "health_published": self.health_published,
            "gaps_published": self.gaps_published,
            "heartbeats_published": self.heartbeats_published,
            "stalls": self.stalls,
            "replay_window": self.replay_window,
            "stream_epoch": self.stream_epoch,
            "resumes_served": self.resumes_served,
            "resumes_rejected": self.resumes_rejected,
            "frames_replayed": self.frames_replayed,
            "replay_evictions": self.replay_evictions,
            "subscribers": subscribers,
        }

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float = 5.0) -> bool:
        """Condition-based wait until *predicate()* holds (no polling)."""
        deadline = threading.TIMEOUT_MAX if timeout is None else timeout
        with self._cond:
            return self._cond.wait_for(predicate, timeout=deadline)

    def wait_for_subscribers(self, count: int,
                             timeout: float = 5.0) -> bool:
        """Wait until *count* subscribers have completed their handshake."""
        return self.wait_for(
            lambda: len(self._subscribers) >= count, timeout=timeout)

    def wait_until_sent(self, frames: int, timeout: float = 5.0) -> bool:
        """Wait until every subscriber has sent >= *frames* frames."""
        def _done() -> bool:
            return all(sub.frames_sent >= frames
                       for sub in self._subscribers)
        return self.wait_for(_done, timeout=timeout)


class TelemetryBridge(Actor):
    """The actor gluing the event bus to a :class:`TelemetryServer`.

    Subscribes to :class:`AggregatedPowerReport`, :class:`HealthEvent`
    and :class:`GapMarker` and forwards each to the server, optionally
    restricted to one pipeline's pids — which is what scopes a server
    to a single :class:`~repro.core.monitor.MonitorHandle`.
    """

    def __init__(self, server: TelemetryServer,
                 pids: Optional[Sequence[int]] = None) -> None:
        super().__init__()
        self.server = server
        self.pids = None if pids is None else frozenset(pids)
        self.forwarded = 0

    def pre_start(self) -> None:
        bus = self.context.system.event_bus
        bus.subscribe(AggregatedPowerReport, self.self_ref)
        bus.subscribe(HealthEvent, self.self_ref)
        bus.subscribe(GapMarker, self.self_ref)

    def receive(self, message) -> None:
        if isinstance(message, AggregatedPowerReport):
            if (self.pids is not None and not message.gap
                    and self.pids.isdisjoint(message.by_pid)):
                return
            self.server.publish_report(message)
        elif isinstance(message, HealthEvent):
            self.server.publish_health(message)
        elif isinstance(message, GapMarker):
            if (self.pids is not None and message.pid != -1
                    and message.pid not in self.pids):
                return
            self.server.publish_gap(message)
        else:
            return
        self.forwarded += 1

"""Fault injection and graceful degradation for the live pipeline.

A monitoring middleware earns its keep when the machine misbehaves
underneath it: meters drop their link, pids exit mid-sample, PMU
multiplexing starves events, actors crash.  This package provides

* :class:`~repro.faults.plan.FaultPlan` — a deterministic, seedable
  schedule of faults (parseable from a ``--faults`` CLI spec),
* :class:`~repro.faults.injector.FaultInjector` — applies a plan to a
  running :class:`~repro.core.monitor.PowerAPI` in virtual time,
* :class:`~repro.faults.health.HealthLog` /
  :class:`~repro.faults.health.HealthMonitor` — the per-pipeline record
  of every degradation and recovery (``MonitorHandle.health``).
"""

# repro.core's init reaches back into repro.faults.health (via the
# monitor facade), so when the import graph is entered here the core
# package must finish initializing before health starts loading —
# otherwise monitor sees a half-initialized health module.
import repro.core.messages  # noqa: F401  (breaks the faults<->core cycle)

from repro.faults.backoff import ExponentialBackoff
from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.health import HealthLog, HealthMonitor
from repro.faults.injector import FaultInjector
from repro.faults.network import (ByteCorruption, ConnectionReset,
                                  FaultyTransport, NetworkFaultInjector,
                                  NetworkFaultPlan, Partition, SlowReader,
                                  TruncatedFrame)
from repro.faults.plan import (ActorCrash, FaultPlan, MeterDropout, PidExit,
                               SampleLoss, SlotStarvation)

__all__ = [
    "ActorCrash",
    "BreakerState",
    "ByteCorruption",
    "CircuitBreaker",
    "ConnectionReset",
    "ExponentialBackoff",
    "FaultInjector",
    "FaultPlan",
    "FaultyTransport",
    "HealthLog",
    "HealthMonitor",
    "MeterDropout",
    "NetworkFaultInjector",
    "NetworkFaultPlan",
    "Partition",
    "PidExit",
    "SampleLoss",
    "SlotStarvation",
    "SlowReader",
    "TruncatedFrame",
]

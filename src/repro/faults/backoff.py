"""Capped exponential backoff: the retry idiom shared across the toolkit.

Three places retry a flaky dependency with the same shape — the actor
supervisor (:class:`~repro.actors.supervision.RestartStrategy`), the
power-meter sensor's reconnect loop, and the telemetry client's
reconnect (:mod:`repro.telemetry.client`).  This class is the common
schedule: the first retry waits ``base_s``, each further retry
multiplies by ``factor``, capped at ``max_s``.  It is pure arithmetic —
the caller decides whether delays are virtual-clock or wall-clock time —
so it stays deterministic and unit-testable.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError


class ExponentialBackoff:
    """A resettable capped exponential delay schedule.

    *jitter* spreads each delay uniformly over
    ``[delay * (1 - jitter), delay * (1 + jitter)]`` so a fleet of
    clients that lost the same server does not re-dial in lockstep.
    With a *seed* the jittered schedule is fully deterministic; the RNG
    is **not** rewound by :meth:`reset` (reset restarts the schedule,
    not the randomness).
    """

    def __init__(self, base_s: float = 0.1, factor: float = 2.0,
                 max_s: float = 30.0, jitter: float = 0.0,
                 seed: Optional[int] = None) -> None:
        if base_s <= 0:
            raise ConfigurationError("backoff base_s must be positive")
        if factor < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")
        if max_s < base_s:
            raise ConfigurationError("backoff max_s must be >= base_s")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("backoff jitter must be in [0, 1]")
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self.jitter = jitter
        self._rng = random.Random(seed) if jitter > 0 else None
        self._attempts = 0

    @property
    def attempts(self) -> int:
        """Retries taken since the last :meth:`reset`."""
        return self._attempts

    def delay_s(self, attempt: int) -> float:
        """The delay before retry number *attempt* (1-based), stateless.

        This is the un-jittered schedule; jitter is applied only by the
        stateful :meth:`next_delay_s` (it draws from the RNG).
        """
        if attempt <= 0:
            return 0.0
        return min(self.max_s, self.base_s * self.factor ** (attempt - 1))

    def next_delay_s(self) -> float:
        """Record one more retry and return the delay to wait before it."""
        self._attempts += 1
        delay = self.delay_s(self._attempts)
        if self._rng is not None:
            delay *= 1.0 - self.jitter + 2.0 * self.jitter \
                * self._rng.random()
        return delay

    def reset(self) -> None:
        """Start over (call after a successful attempt)."""
        self._attempts = 0

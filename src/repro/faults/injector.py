"""Applying a :class:`~repro.faults.plan.FaultPlan` to a live pipeline.

The injector is driven by the host's run loop
(:meth:`repro.core.monitor.PowerAPI.run` calls :meth:`FaultInjector.advance`
once per kernel quantum, *before* the monitoring clock publishes its
tick), so faults land at deterministic virtual-clock times regardless of
period or quantum.  Every applied action publishes a
``fault-injected`` :class:`~repro.core.messages.HealthEvent`, so the
health log doubles as the campaign's ground-truth record.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.core.messages import HealthEvent
from repro.errors import FaultInjectionError
from repro.faults.plan import (ActorCrash, FaultPlan, MeterDropout, PidExit,
                               SampleLoss, SlotStarvation)


class FaultInjector:
    """Executes a plan against a PowerAPI instance in virtual time."""

    def __init__(self, plan: FaultPlan, api) -> None:
        self.plan = plan
        self.api = api
        self.applied: List[Tuple[float, str]] = []
        self._seq = itertools.count()
        self._queue: List[Tuple[float, int, str, Callable[[], None]]] = []
        self._starve_depth = 0
        self._loss_depth = 0
        for event in plan:
            self._schedule(event)

    # -- scheduling -------------------------------------------------------

    def _push(self, at_s: float, label: str,
              action: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (at_s, next(self._seq), label, action))

    def _schedule(self, event) -> None:
        if isinstance(event, MeterDropout):
            self._push(event.at_s, event.describe(),
                       lambda e=event: self._drop_meters(e))
        elif isinstance(event, PidExit):
            self._push(event.at_s, event.describe(),
                       lambda e=event: self._exit_pid(e))
        elif isinstance(event, SlotStarvation):
            self._push(event.at_s, event.describe(),
                       lambda e=event: self._starve(e))
            self._push(event.at_s + event.duration_s,
                       f"starve-end@{event.at_s + event.duration_s:g}",
                       self._unstarve)
        elif isinstance(event, SampleLoss):
            self._push(event.at_s, event.describe(),
                       lambda e=event: self._lose_samples(e))
            self._push(event.at_s + event.duration_s,
                       f"hpc-loss-end@{event.at_s + event.duration_s:g}",
                       self._restore_samples)
        elif isinstance(event, ActorCrash):
            self._push(event.at_s, event.describe(),
                       lambda e=event: self._crash_actor(e))
        else:
            raise FaultInjectionError(
                f"unknown fault event {type(event).__name__}")

    # -- driving ----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled action has been applied."""
        return not self._queue

    def advance(self, now_s: float) -> int:
        """Apply every action due at or before *now_s*; returns the count."""
        fired = 0
        while self._queue and self._queue[0][0] <= now_s + 1e-12:
            _at, _seq, label, action = heapq.heappop(self._queue)
            action()
            self.applied.append((now_s, label))
            self._record(now_s, label)
            fired += 1
        return fired

    def _record(self, now_s: float, label: str) -> None:
        self.api.system.event_bus.publish(HealthEvent(
            time_s=now_s, component="fault-injector",
            kind="fault-injected", detail=label))

    # -- actions ----------------------------------------------------------

    def _drop_meters(self, event: MeterDropout) -> None:
        for meter in self.api.meters:
            meter.inject_dropout(event.down_s)

    def _exit_pid(self, event: PidExit) -> None:
        pids = self.api.monitored_pids()
        if not pids:
            return
        pid = pids[min(event.index, len(pids) - 1)]
        if pid in self.api.kernel.live_pids:
            self.api.kernel.kill(pid)
        self.api.perf.invalidate_pid(pid)

    def _starve(self, event: SlotStarvation) -> None:
        self._starve_depth += 1
        self.api.perf.set_slot_override(event.slots)

    def _unstarve(self) -> None:
        self._starve_depth = max(0, self._starve_depth - 1)
        if self._starve_depth == 0:
            self.api.perf.set_slot_override(None)

    def _lose_samples(self, _event: SampleLoss) -> None:
        self._loss_depth += 1
        self.api.perf.set_sample_loss(True)

    def _restore_samples(self) -> None:
        self._loss_depth = max(0, self._loss_depth - 1)
        if self._loss_depth == 0:
            self.api.perf.set_sample_loss(False)

    def _crash_actor(self, event: ActorCrash) -> None:
        self.api.system.inject_failure(
            event.actor, FaultInjectionError(f"injected crash at "
                                             f"t={event.at_s:g}s"))

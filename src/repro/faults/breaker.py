"""The circuit breaker guarding reconnect storms.

A client that re-dials a dead server in a tight capped-backoff loop
still burns sockets, log lines and CPU; worse, a fleet of clients doing
it together turns one server restart into a reconnect storm.  The
classic remedy is a **circuit breaker** with three states:

* **closed** — the normal state: every attempt is allowed.  Consecutive
  failures are counted; at ``failure_threshold`` the breaker opens.
* **open** — all attempts are refused until ``reset_timeout_s`` has
  elapsed since the breaker opened.  No sockets are burned.
* **half-open** — after the timeout one *probe* attempt is allowed
  through.  If it succeeds the breaker closes (and the failure count
  resets); if it fails the breaker re-opens for another full timeout.

The breaker is pure bookkeeping: it never dials anything itself.  The
clock is injectable so state transitions are unit-testable without real
waits, and every transition can be surfaced as a
:class:`~repro.core.messages.HealthEvent` via ``on_event`` — which is
how :class:`~repro.telemetry.client.TelemetryClient` feeds breaker
activity into the same health stream as every other degradation.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.core.messages import HealthEvent
from repro.errors import ConfigurationError


class BreakerState:
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open → half-open breaker with an injectable clock."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_event: Optional[Callable[[HealthEvent], None]] = None,
                 component: str = "circuit-breaker") -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ConfigurationError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock
        self.on_event = on_event
        self.component = component
        self._lock = threading.RLock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Times the breaker transitioned closed/half-open -> open.
        self.opens = 0
        #: Attempts refused while the breaker was open.
        self.refusals = 0
        #: Successes reported while open (stale results of attempts
        #: dialed before the breaker opened; they never close it).
        self.stale_successes = 0
        #: Every (time, state) transition, oldest first.
        self.transitions: List[Tuple[float, str]] = []

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _transition(self, state: str, detail: str) -> None:
        self._state = state
        self.transitions.append((self.clock(), state))
        if self.on_event is not None:
            self.on_event(HealthEvent(
                time_s=self.clock(), component=self.component,
                kind=f"breaker-{state}", detail=detail))

    # -- the protocol --------------------------------------------------

    def allow(self) -> bool:
        """Whether the caller may attempt now (may move open → half-open)."""
        with self._lock:
            if self._state == BreakerState.CLOSED:
                return True
            if self._state == BreakerState.OPEN:
                if self.clock() - self._opened_at >= self.reset_timeout_s:
                    self._transition(
                        BreakerState.HALF_OPEN,
                        f"probe allowed after {self.reset_timeout_s:g}s")
                    self._probe_inflight = True
                    return True
                self.refusals += 1
                return False
            # half-open: exactly one probe at a time.
            if self._probe_inflight:
                self.refusals += 1
                return False
            self._probe_inflight = True
            return True

    def retry_in_s(self) -> float:
        """Seconds until the next attempt could be allowed (0 when now)."""
        with self._lock:
            if self._state != BreakerState.OPEN:
                return 0.0
            return max(0.0, self._opened_at + self.reset_timeout_s
                       - self.clock())

    def record_success(self) -> None:
        """The attempt succeeded: close the breaker, reset the count.

        While the breaker is **open** a success can only be the stale
        result of an attempt that was dialed *before* the breaker
        opened — e.g. a second redial thread racing the one whose
        failures tripped it.  Letting such a result close the breaker
        would bypass the reset timeout entirely, so the open verdict
        stands: only a half-open probe (granted by :meth:`allow`)
        may close an open breaker.
        """
        with self._lock:
            if self._state == BreakerState.OPEN:
                self.stale_successes += 1
                return
            self._failures = 0
            self._probe_inflight = False
            if self._state != BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED, "probe succeeded")

    def record_failure(self) -> None:
        """The attempt failed: count it; open at the threshold."""
        with self._lock:
            self._failures += 1
            self._probe_inflight = False
            if self._state == BreakerState.HALF_OPEN:
                self._open(f"probe failed "
                           f"({self._failures} consecutive failures)")
            elif (self._state == BreakerState.CLOSED
                    and self._failures >= self.failure_threshold):
                self._open(f"{self._failures} consecutive failures")

    def _open(self, detail: str) -> None:
        self._opened_at = self.clock()
        self.opens += 1
        self._transition(BreakerState.OPEN, detail)

"""Pipeline health: the observable log of degradations and recoveries.

Sensors, the supervision layer and the fault injector publish
:class:`~repro.core.messages.HealthEvent` messages on the event bus; a
:class:`HealthMonitor` actor collects them onto a :class:`HealthLog`
exposed as ``MonitorHandle.health``, so reporters and tests can assert
on the exact sequence of transitions.  The log is deterministic: the
same seed and workload reproduce it event for event.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.messages import HealthEvent
from repro.core.stage import PipelineStage


class HealthLog:
    """Ordered record of health transitions for one pipeline."""

    def __init__(self) -> None:
        self.events: List[HealthEvent] = []

    def record(self, event: HealthEvent) -> None:
        """Append one event (called by the collecting actor)."""
        self.events.append(event)

    def kinds(self) -> List[str]:
        """The sequence of event kinds, in arrival order."""
        return [event.kind for event in self.events]

    def count(self, kind: str) -> int:
        """How many events of *kind* were recorded."""
        return sum(1 for event in self.events if event.kind == kind)

    def signature(self) -> Tuple[Tuple[float, str, str, str], ...]:
        """Hashable fingerprint of the whole log (determinism checks)."""
        return tuple((round(event.time_s, 9), event.component, event.kind,
                      event.detail) for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[HealthEvent]:
        return iter(self.events)


class HealthMonitor(PipelineStage):
    """Subscribes to :class:`HealthEvent` and appends to a log."""

    subscribes_to = (HealthEvent,)

    def __init__(self, log: HealthLog) -> None:
        super().__init__(component="health-monitor")
        self.log = log

    def handle(self, message) -> None:
        if isinstance(message, HealthEvent):
            self.log.record(message)

"""Pipeline health: the observable log of degradations and recoveries.

Sensors, the supervision layer and the fault injector publish
:class:`~repro.core.messages.HealthEvent` messages on the event bus; a
:class:`HealthMonitor` actor collects them onto a :class:`HealthLog`
exposed as ``MonitorHandle.health``, so reporters and tests can assert
on the exact sequence of transitions.  The log is deterministic: the
same seed and workload reproduce it event for event.
"""

from __future__ import annotations

import hashlib
from collections import Counter, deque
from typing import Deque, Iterator, List, Tuple

from repro.core.messages import HealthEvent
from repro.core.stage import PipelineStage
from repro.errors import ConfigurationError


class HealthLog:
    """Ordered record of health transitions for one pipeline.

    The log is bounded: only the most recent *cap* events are retained
    (a multi-hour soak would otherwise grow it without limit), but
    per-kind counts stay exact past the cap, ``__len__`` keeps counting
    every event ever recorded, and evicted events are folded into an
    incremental digest so :meth:`signature` still fingerprints the
    complete history.
    """

    def __init__(self, cap: int = 4096) -> None:
        if cap < 1:
            raise ConfigurationError("health log cap must be >= 1")
        self.cap = cap
        self.events: Deque[HealthEvent] = deque()
        self._counts: Counter = Counter()
        self._total = 0
        self._evicted = 0
        self._evicted_digest = hashlib.blake2b(digest_size=16)

    def record(self, event: HealthEvent) -> None:
        """Append one event (called by the collecting actor)."""
        self.events.append(event)
        self._counts[event.kind] += 1
        self._total += 1
        if len(self.events) > self.cap:
            evicted = self.events.popleft()
            self._evicted += 1
            self._evicted_digest.update(repr(
                (round(evicted.time_s, 9), evicted.component, evicted.kind,
                 evicted.detail)).encode("utf-8"))

    @property
    def evicted(self) -> int:
        """Events aged out of the retained window."""
        return self._evicted

    def kinds(self) -> List[str]:
        """The sequence of retained event kinds, in arrival order."""
        return [event.kind for event in self.events]

    def count(self, kind: str) -> int:
        """How many events of *kind* were recorded (exact past the cap)."""
        return self._counts[kind]

    def signature(self) -> Tuple[Tuple[float, str, str, str], ...]:
        """Hashable fingerprint of the whole log (determinism checks).

        Within the cap this is exactly the historical tuple-of-entries
        form.  Once events have been evicted, they are represented by a
        single leading ``("evicted", <count>, <digest>, "")`` entry, so
        two logs with identical complete histories keep identical
        signatures at any cap.
        """
        entries = tuple((round(event.time_s, 9), event.component,
                         event.kind, event.detail)
                        for event in self.events)
        if self._evicted:
            return (("evicted", str(self._evicted),
                     self._evicted_digest.hexdigest(), ""),) + entries
        return entries

    def __len__(self) -> int:
        """Total events ever recorded (retained + evicted)."""
        return self._total

    def __iter__(self) -> Iterator[HealthEvent]:
        return iter(self.events)


class HealthMonitor(PipelineStage):
    """Subscribes to :class:`HealthEvent` and appends to a log."""

    subscribes_to = (HealthEvent,)

    def __init__(self, log: HealthLog) -> None:
        super().__init__(component="health-monitor")
        self.log = log

    def handle(self, message) -> None:
        if isinstance(message, HealthEvent):
            self.log.record(message)

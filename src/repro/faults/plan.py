"""Deterministic, seedable fault schedules.

A :class:`FaultPlan` is an ordered list of typed fault events, each
anchored at a virtual-clock time.  Plans come from three places:

* built explicitly in tests (``FaultPlan([MeterDropout(at_s=5.0, ...)])``),
* parsed from a compact CLI spec (``FaultPlan.parse("meter-dropout@5:3;
  pid-exit@4")`` — the ``--faults`` flag),
* generated pseudo-randomly from a seed (``FaultPlan.random(seed=42,
  duration_s=30)``), which is how campaigns stay reproducible: the same
  seed always yields the identical schedule.

The plan itself never touches the pipeline; the
:class:`~repro.faults.injector.FaultInjector` applies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError


def spec_number(value) -> str:
    """*value* as the shortest decimal that parses back to the same float.

    ``describe()`` renders times with ``%g`` for humans, which silently
    rounds past six significant digits; spec emission (``to_spec()``)
    uses ``repr``'s shortest-round-trip form so any plan — including
    seeded-random ones with awkward floats — survives
    ``parse(plan.to_spec())`` bit-exactly.
    """
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


@dataclass(frozen=True)
class MeterDropout:
    """Every attached power meter loses its link for ``down_s`` seconds."""

    at_s: float
    down_s: float = 2.0

    def describe(self) -> str:
        return f"meter-dropout@{self.at_s:g}:{self.down_s:g}"

    def to_spec(self) -> str:
        return (f"meter-dropout@{spec_number(self.at_s)}"
                f":{spec_number(self.down_s)}")


@dataclass(frozen=True)
class PidExit:
    """The ``index``-th monitored pid is killed (ESRCH for its counters)."""

    at_s: float
    index: int = 0

    def describe(self) -> str:
        return f"pid-exit@{self.at_s:g}:{self.index}"

    def to_spec(self) -> str:
        return f"pid-exit@{spec_number(self.at_s)}:{self.index}"


@dataclass(frozen=True)
class SlotStarvation:
    """PMU slots are capped at ``slots`` for ``duration_s`` seconds."""

    at_s: float
    duration_s: float = 2.0
    slots: int = 0

    def describe(self) -> str:
        return f"starve@{self.at_s:g}:{self.duration_s:g}:{self.slots}"

    def to_spec(self) -> str:
        return (f"starve@{spec_number(self.at_s)}"
                f":{spec_number(self.duration_s)}:{self.slots}")


@dataclass(frozen=True)
class SampleLoss:
    """Counter reads fail for ``duration_s`` seconds (acquisition loss)."""

    at_s: float
    duration_s: float = 1.0

    def describe(self) -> str:
        return f"hpc-loss@{self.at_s:g}:{self.duration_s:g}"

    def to_spec(self) -> str:
        return (f"hpc-loss@{spec_number(self.at_s)}"
                f":{spec_number(self.duration_s)}")


@dataclass(frozen=True)
class ActorCrash:
    """The named actor fails as if its ``receive`` raised."""

    at_s: float
    actor: str = "formula-0"

    def describe(self) -> str:
        return f"crash@{self.at_s:g}:{self.actor}"

    def to_spec(self) -> str:
        return f"crash@{spec_number(self.at_s)}:{self.actor}"


FaultEvent = Union[MeterDropout, PidExit, SlotStarvation, SampleLoss,
                   ActorCrash]


def _spec_entries(spec: str):
    """Yield ``(entry, "at position N")`` for each non-empty spec chunk.

    ``,`` and ``;`` both separate entries and are the same width, so
    character offsets computed on the normalized string line up with
    the user's original input.
    """
    pos = 0
    for chunk in spec.replace(",", ";").split(";"):
        offset = pos + (len(chunk) - len(chunk.lstrip()))
        pos += len(chunk) + 1
        entry = chunk.strip()
        if entry:
            yield entry, f"at position {offset}"


def _convert(token: str, what: str, conv, bad):
    """Convert one spec token, raising ``bad(...)`` naming it on failure."""
    try:
        return conv(token)
    except ValueError:
        raise bad(f"invalid {what} {token!r}") from None


def _max_args(args, limit: int, bad) -> None:
    if len(args) > limit:
        raise bad(f"unexpected argument {args[limit]!r}")


class FaultPlan:
    """An immutable, time-ordered schedule of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = (),
                 seed: Optional[int] = None) -> None:
        for event in events:
            if event.at_s < 0:
                raise ConfigurationError(
                    f"fault time must be >= 0, got {event.at_s}")
        # Stable sort: simultaneous events keep their declaration order,
        # which keeps injection deterministic.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at_s))
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        """The plan as a human-oriented spec string (``%g`` times)."""
        return ";".join(event.describe() for event in self.events)

    def to_spec(self) -> str:
        """The plan as a lossless, parseable spec string.

        ``FaultPlan.parse(plan.to_spec())`` reproduces the exact event
        tuple (shortest-round-trip floats, seeded campaigns flattened
        to their explicit events), so any plan — including a shrunk
        minimal repro — is a copy-pasteable ``--faults`` argument.
        """
        return ";".join(event.to_spec() for event in self.events)

    # -- construction -----------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a compact spec: ``kind@time[:arg[:arg]]`` entries.

        Entries are separated by ``;`` (or ``,``).  Kinds:

        * ``meter-dropout@T[:DOWN]`` — drop meters at T for DOWN seconds,
        * ``pid-exit@T[:INDEX]`` — kill the INDEX-th monitored pid,
        * ``starve@T[:DUR[:SLOTS]]`` — cap PMU slots for DUR seconds,
        * ``hpc-loss@T[:DUR]`` — counter reads fail for DUR seconds,
        * ``crash@T:ACTOR`` — crash the named pipeline actor,
        * ``random:SEED[:DURATION]`` — a generated campaign
          (see :meth:`random`); composes with explicit entries.

        Errors name the offending entry, its character position in the
        spec, and the specific token that failed to parse.
        """
        events: List[FaultEvent] = []
        seed: Optional[int] = None
        for entry, where in _spec_entries(spec):

            def bad(reason: str) -> ConfigurationError:
                return ConfigurationError(
                    f"bad fault entry {entry!r} {where}: {reason}")

            if entry.startswith("random:"):

                def bad_random(reason: str) -> ConfigurationError:
                    return ConfigurationError(
                        f"bad random fault entry {entry!r} {where}: "
                        f"{reason}; use random:SEED[:DURATION]")

                parts = entry.split(":")[1:]
                seed = _convert(parts[0] if parts else "", "seed", int,
                                bad_random)
                duration = 30.0
                if len(parts) > 1:
                    duration = _convert(parts[1], "duration", float,
                                        bad_random)
                if len(parts) > 2:
                    raise bad_random(f"unexpected argument {parts[2]!r}")
                events.extend(cls.random(seed, duration_s=duration).events)
                continue
            if "@" not in entry:
                raise bad("expected kind@time[:args]")
            kind, _, rest = entry.partition("@")
            args = rest.split(":")
            at_s = _convert(args[0], "time", float, bad)
            if kind == "meter-dropout":
                _max_args(args, 2, bad)
                events.append(MeterDropout(
                    at_s,
                    _convert(args[1], "down duration", float, bad)
                    if len(args) > 1 else 2.0))
            elif kind == "pid-exit":
                _max_args(args, 2, bad)
                events.append(PidExit(
                    at_s,
                    _convert(args[1], "pid index", int, bad)
                    if len(args) > 1 else 0))
            elif kind == "starve":
                _max_args(args, 3, bad)
                events.append(SlotStarvation(
                    at_s,
                    _convert(args[1], "duration", float, bad)
                    if len(args) > 1 else 2.0,
                    _convert(args[2], "slot count", int, bad)
                    if len(args) > 2 else 0))
            elif kind == "hpc-loss":
                _max_args(args, 2, bad)
                events.append(SampleLoss(
                    at_s,
                    _convert(args[1], "duration", float, bad)
                    if len(args) > 1 else 1.0))
            elif kind == "crash":
                _max_args(args, 2, bad)
                if len(args) < 2 or not args[1]:
                    raise bad("crash needs an actor name "
                              "(crash@TIME:ACTOR)")
                events.append(ActorCrash(at_s, args[1]))
            else:
                raise bad(f"unknown fault kind {kind!r}")
        return cls(events, seed=seed)

    @classmethod
    def random(cls, seed: int, duration_s: float = 30.0,
               meter_dropouts: int = 2, pid_exits: int = 1,
               starvations: int = 1, sample_losses: int = 1) -> "FaultPlan":
        """A reproducible campaign mixing the main fault classes.

        Times are drawn uniformly over the middle 80% of *duration_s*
        and quantized to 0.1 s so plans stay robust to quantum choices.
        The same seed always produces the identical plan.
        """
        if duration_s <= 0:
            raise ConfigurationError("campaign duration must be positive")
        rng = np.random.default_rng(seed)
        lo, hi = 0.1 * duration_s, 0.9 * duration_s

        def when() -> float:
            return round(float(rng.uniform(lo, hi)), 1)

        events: List[FaultEvent] = []
        for _ in range(meter_dropouts):
            events.append(MeterDropout(
                when(), down_s=round(float(rng.uniform(1.0, 4.0)), 1)))
        for index in range(pid_exits):
            events.append(PidExit(when(), index=index))
        for _ in range(starvations):
            events.append(SlotStarvation(
                when(), duration_s=round(float(rng.uniform(2.0, 5.0)), 1),
                slots=0))
        for _ in range(sample_losses):
            events.append(SampleLoss(
                when(), duration_s=round(float(rng.uniform(1.0, 3.0)), 1)))
        return cls(events, seed=seed)

"""Seeded network chaos: fault plans applied at the socket boundary.

The in-process :class:`~repro.faults.plan.FaultPlan` breaks sensors and
actors; this module breaks the *wire*.  A :class:`NetworkFaultPlan` is a
deterministic, seedable schedule of transport faults —

* ``partition@T[:DUR]``   — every send/recv during the window fails,
* ``reset@T``             — the next operation raises a connection reset,
* ``corrupt@T[:N]``       — N bytes of the next received chunk are flipped,
* ``truncate@T``          — the next send transmits half a payload, then
  the connection dies (a torn frame on the peer),
* ``stall@T[:DUR[:DELAY]]`` — reads sleep DELAY during the window (a slow
  reader),

— applied through a :class:`FaultyTransport` wrapper that interposes on
a real socket's ``sendall``/``recv`` and delegates everything else.  A
:class:`NetworkFaultInjector` owns the schedule's shared state so one
plan spans many connections: a client that reconnects after a reset is
wrapped again and keeps marching through the same schedule.  The
wrapper is usable on either end — ``TelemetryClient(transport=...)``
wraps its dial, ``TelemetryServer(transport=...)`` wraps every accepted
connection.

Times are measured by an injectable ``clock`` relative to the
injector's creation, so tests can drive the schedule with a fake clock
and zero real waiting.  The same seed always produces the identical
plan (:meth:`NetworkFaultPlan.random`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import _convert, _max_args, _spec_entries, spec_number


@dataclass(frozen=True)
class Partition:
    """All traffic fails for ``duration_s`` seconds from ``at_s``."""

    at_s: float
    duration_s: float = 1.0

    def describe(self) -> str:
        return f"partition@{self.at_s:g}:{self.duration_s:g}"

    def to_spec(self) -> str:
        return (f"partition@{spec_number(self.at_s)}"
                f":{spec_number(self.duration_s)}")


@dataclass(frozen=True)
class ConnectionReset:
    """The next transport operation at/after ``at_s`` raises ECONNRESET."""

    at_s: float

    def describe(self) -> str:
        return f"reset@{self.at_s:g}"

    def to_spec(self) -> str:
        return f"reset@{spec_number(self.at_s)}"


@dataclass(frozen=True)
class ByteCorruption:
    """``nbytes`` of the next received chunk after ``at_s`` are flipped."""

    at_s: float
    nbytes: int = 1

    def describe(self) -> str:
        return f"corrupt@{self.at_s:g}:{self.nbytes}"

    def to_spec(self) -> str:
        return f"corrupt@{spec_number(self.at_s)}:{self.nbytes}"


@dataclass(frozen=True)
class TruncatedFrame:
    """The next send after ``at_s`` transmits half its bytes, then dies."""

    at_s: float

    def describe(self) -> str:
        return f"truncate@{self.at_s:g}"

    def to_spec(self) -> str:
        return f"truncate@{spec_number(self.at_s)}"


@dataclass(frozen=True)
class SlowReader:
    """Reads sleep ``delay_s`` during the window (a stalling consumer)."""

    at_s: float
    duration_s: float = 0.5
    delay_s: float = 0.05

    def describe(self) -> str:
        return f"stall@{self.at_s:g}:{self.duration_s:g}:{self.delay_s:g}"

    def to_spec(self) -> str:
        return (f"stall@{spec_number(self.at_s)}"
                f":{spec_number(self.duration_s)}"
                f":{spec_number(self.delay_s)}")


NetworkFaultEvent = Union[Partition, ConnectionReset, ByteCorruption,
                          TruncatedFrame, SlowReader]


class NetworkFaultPlan:
    """An immutable, time-ordered schedule of transport faults."""

    def __init__(self, events: Sequence[NetworkFaultEvent] = (),
                 seed: Optional[int] = None) -> None:
        for event in events:
            if event.at_s < 0:
                raise ConfigurationError(
                    f"network fault time must be >= 0, got {event.at_s}")
        self.events: Tuple[NetworkFaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at_s))
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        """The plan as a human-oriented spec string (``%g`` times)."""
        return ";".join(event.describe() for event in self.events)

    def to_spec(self) -> str:
        """The plan as a lossless, parseable spec string.

        ``NetworkFaultPlan.parse(plan.to_spec())`` reproduces the exact
        event tuple (shortest-round-trip floats, seeded campaigns
        flattened), so any plan is a copy-pasteable ``--net-faults``
        argument.
        """
        return ";".join(event.to_spec() for event in self.events)

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "NetworkFaultPlan":
        """Parse a compact ``kind@time[:arg[:arg]]`` spec (the
        ``--net-faults`` flag); entries separated by ``;`` or ``,``.
        ``random:SEED[:DURATION]`` composes a seeded campaign in.
        Errors name the offending entry, its character position and
        the token that failed to parse.
        """
        events: List[NetworkFaultEvent] = []
        seed: Optional[int] = None
        for entry, where in _spec_entries(spec):

            def bad(reason: str) -> ConfigurationError:
                return ConfigurationError(
                    f"bad network fault entry {entry!r} {where}: {reason}")

            if entry.startswith("random:"):

                def bad_random(reason: str) -> ConfigurationError:
                    return ConfigurationError(
                        f"bad random network fault entry {entry!r} "
                        f"{where}: {reason}; use random:SEED[:DURATION]")

                parts = entry.split(":")[1:]
                seed = _convert(parts[0] if parts else "", "seed", int,
                                bad_random)
                duration = 10.0
                if len(parts) > 1:
                    duration = _convert(parts[1], "duration", float,
                                        bad_random)
                if len(parts) > 2:
                    raise bad_random(f"unexpected argument {parts[2]!r}")
                events.extend(cls.random(seed, duration_s=duration).events)
                continue
            if "@" not in entry:
                raise bad("expected kind@time[:args]")
            kind, _, rest = entry.partition("@")
            args = rest.split(":")
            at_s = _convert(args[0], "time", float, bad)
            if kind == "partition":
                _max_args(args, 2, bad)
                events.append(Partition(
                    at_s,
                    _convert(args[1], "duration", float, bad)
                    if len(args) > 1 else 1.0))
            elif kind == "reset":
                _max_args(args, 1, bad)
                events.append(ConnectionReset(at_s))
            elif kind == "corrupt":
                _max_args(args, 2, bad)
                events.append(ByteCorruption(
                    at_s,
                    _convert(args[1], "byte count", int, bad)
                    if len(args) > 1 else 1))
            elif kind == "truncate":
                _max_args(args, 1, bad)
                events.append(TruncatedFrame(at_s))
            elif kind == "stall":
                _max_args(args, 3, bad)
                events.append(SlowReader(
                    at_s,
                    _convert(args[1], "duration", float, bad)
                    if len(args) > 1 else 0.5,
                    _convert(args[2], "delay", float, bad)
                    if len(args) > 2 else 0.05))
            else:
                raise bad(f"unknown network fault kind {kind!r}")
        return cls(events, seed=seed)

    @classmethod
    def random(cls, seed: int, duration_s: float = 10.0,
               partitions: int = 1, resets: int = 2, corruptions: int = 1,
               truncations: int = 1, stalls: int = 1) -> "NetworkFaultPlan":
        """A reproducible chaos campaign over the middle 80% of the run."""
        if duration_s <= 0:
            raise ConfigurationError("campaign duration must be positive")
        rng = np.random.default_rng(seed)
        lo, hi = 0.1 * duration_s, 0.9 * duration_s

        def when() -> float:
            return round(float(rng.uniform(lo, hi)), 2)

        events: List[NetworkFaultEvent] = []
        for _ in range(partitions):
            events.append(Partition(
                when(),
                duration_s=round(float(rng.uniform(0.2, 1.0)), 2)))
        for _ in range(resets):
            events.append(ConnectionReset(when()))
        for _ in range(corruptions):
            events.append(ByteCorruption(when(), nbytes=int(rng.integers(
                1, 4))))
        for _ in range(truncations):
            events.append(TruncatedFrame(when()))
        for _ in range(stalls):
            events.append(SlowReader(
                when(), duration_s=round(float(rng.uniform(0.1, 0.5)), 2),
                delay_s=0.02))
        return cls(events, seed=seed)


class NetworkFaultInjector:
    """The shared, thread-safe runtime state of one network fault plan.

    One injector spans every connection it wraps: one-shot events
    (reset, corrupt, truncate) fire exactly once plan-wide, window
    events (partition, stall) affect whichever transport operates
    during the window.  ``injector.wrap`` is the ``transport=`` hook
    both :class:`~repro.telemetry.client.TelemetryClient` and
    :class:`~repro.telemetry.server.TelemetryServer` accept.
    """

    def __init__(self, plan: NetworkFaultPlan,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self._clock = clock
        self._sleep = sleep
        self._start = clock()
        self._lock = threading.Lock()
        self._pending_oneshots: List[NetworkFaultEvent] = [
            event for event in plan
            if isinstance(event, (ConnectionReset, ByteCorruption,
                                  TruncatedFrame))]
        self._windows: Tuple[NetworkFaultEvent, ...] = tuple(
            event for event in plan
            if isinstance(event, (Partition, SlowReader)))
        #: Every injected fault as ``(plan_time_s, description)``.
        self.injected: List[Tuple[float, str]] = []
        self.resets_injected = 0
        self.corruptions_injected = 0
        self.truncations_injected = 0
        self.partition_hits = 0
        self.stall_hits = 0

    def now_s(self) -> float:
        """Plan time: seconds since the injector was created."""
        return self._clock() - self._start

    @property
    def exhausted(self) -> bool:
        """Whether every one-shot fault has fired and windows passed."""
        with self._lock:
            if self._pending_oneshots:
                return False
        now = self.now_s()
        return all(now >= w.at_s + w.duration_s for w in self._windows)

    def wrap(self, sock) -> "FaultyTransport":
        """Wrap one socket; the ``transport=`` callable for either end."""
        return FaultyTransport(sock, self)

    # -- queries used by FaultyTransport -------------------------------

    def _record(self, description: str) -> None:
        self.injected.append((round(self.now_s(), 6), description))

    def _take_oneshot(self, kinds) -> Optional[NetworkFaultEvent]:
        """Pop the earliest due one-shot of the given kinds, if any."""
        now = self.now_s()
        with self._lock:
            for event in self._pending_oneshots:
                if isinstance(event, kinds) and event.at_s <= now:
                    self._pending_oneshots.remove(event)
                    return event
        return None

    def _active_window(self, kind) -> Optional[NetworkFaultEvent]:
        now = self.now_s()
        for event in self._windows:
            if isinstance(event, kind) and \
                    event.at_s <= now < event.at_s + event.duration_s:
                return event
        return None

    def check_partition(self) -> None:
        event = self._active_window(Partition)
        if event is not None:
            self.partition_hits += 1
            self._record(event.describe())
            raise ConnectionResetError(
                f"injected network partition ({event.describe()})")

    def check_reset(self) -> None:
        event = self._take_oneshot(ConnectionReset)
        if event is not None:
            self.resets_injected += 1
            self._record(event.describe())
            raise ConnectionResetError(
                f"injected connection reset ({event.describe()})")

    def maybe_stall(self) -> None:
        event = self._active_window(SlowReader)
        if event is not None:
            self.stall_hits += 1
            self._sleep(event.delay_s)

    def maybe_corrupt(self, data: bytes) -> bytes:
        if not data:
            return data
        event = self._take_oneshot(ByteCorruption)
        if event is None:
            return data
        self.corruptions_injected += 1
        self._record(event.describe())
        nbytes = min(event.nbytes, len(data))
        corrupted = bytearray(data)
        for index in range(nbytes):
            corrupted[index] ^= 0xFF
        return bytes(corrupted)

    def take_truncation(self) -> Optional[TruncatedFrame]:
        event = self._take_oneshot(TruncatedFrame)
        if event is not None:
            self.truncations_injected += 1
            self._record(event.describe())
        return event


class FaultyTransport:
    """A socket wrapper that injects its plan's faults into the stream.

    Interposes on ``sendall``/``send`` and ``recv``; every other attribute
    (``settimeout``, ``setsockopt``, ``shutdown``, ``close``, ...)
    delegates to the wrapped socket, so the wrapper drops in anywhere a
    plain socket is used.
    """

    def __init__(self, sock, injector: NetworkFaultInjector) -> None:
        self._sock = sock
        self._injector = injector
        self._dead: Optional[str] = None

    def _check_dead(self) -> None:
        if self._dead is not None:
            raise ConnectionResetError(self._dead)

    def sendall(self, data: bytes) -> None:
        self._check_dead()
        self._injector.check_partition()
        self._injector.check_reset()
        truncation = self._injector.take_truncation()
        if truncation is not None:
            self._sock.sendall(data[:max(1, len(data) // 2)])
            self._dead = (f"injected truncated frame "
                          f"({truncation.describe()})")
            raise BrokenPipeError(self._dead)
        self._sock.sendall(data)

    def send(self, data) -> int:
        # The server's event loop writes with non-blocking ``send``;
        # inject the same faults ``sendall`` would see so chaos plans
        # keep biting after the thread-per-subscriber writer went away.
        self._check_dead()
        self._injector.check_partition()
        self._injector.check_reset()
        truncation = self._injector.take_truncation()
        if truncation is not None:
            view = memoryview(data)
            self._sock.send(view[:max(1, len(view) // 2)])
            self._dead = (f"injected truncated frame "
                          f"({truncation.describe()})")
            raise BrokenPipeError(self._dead)
        return self._sock.send(data)

    def recv(self, bufsize: int, *args) -> bytes:
        self._check_dead()
        self._injector.check_partition()
        self._injector.check_reset()
        self._injector.maybe_stall()
        data = self._sock.recv(bufsize, *args)
        return self._injector.maybe_corrupt(data)

    def __getattr__(self, name: str):
        return getattr(self._sock, name)

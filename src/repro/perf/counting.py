"""Counting interface: the simulated ``perf_event_open`` + ``read``.

A :class:`PerfSession` attaches to a :class:`~repro.simcpu.machine.Machine`
and exposes :meth:`~PerfSession.open` with the familiar (event, pid, cpu)
triple, where ``pid=-1`` means every process and ``cpu=-1`` every CPU.
Counters follow the kernel lifecycle — open → enable → read → disable —
and report ``time_enabled`` / ``time_running`` so multiplexed values can be
scaled exactly like perf does.

Multiplexing lives in :mod:`repro.perf.multiplex`; the session delegates
per-tick scheduling decisions to it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import (CounterInvalidError, CounterStateError,
                          SampleLossError)
from repro.perf import pfm
from repro.perf.multiplex import MultiplexScheduler
from repro.simcpu.machine import Machine, TickRecord


@dataclass(frozen=True)
class CounterValue:
    """One read of a counter, perf-style."""

    #: Raw counted value while the event was scheduled on the PMU.
    raw: float
    time_enabled_s: float
    time_running_s: float

    @property
    def scaled(self) -> float:
        """Multiplex-corrected estimate: ``raw * enabled / running``."""
        if self.time_running_s == 0.0:
            return 0.0
        return self.raw * (self.time_enabled_s / self.time_running_s)

    @property
    def multiplexed(self) -> bool:
        """Whether the event ever lost its PMU slot."""
        return self.time_running_s < self.time_enabled_s - 1e-12


class PerfCounter:
    """One opened event; mirrors a perf_event file descriptor."""

    def __init__(self, session: "PerfSession", counter_id: int, event: str,
                 pid: int, cpu: int) -> None:
        self._session = session
        self.counter_id = counter_id
        self.event = event
        self.pid = pid
        self.cpu = cpu
        self.enabled = False
        self.closed = False
        self.dead = False
        self.raw = 0.0
        self.time_enabled_s = 0.0
        self.time_running_s = 0.0

    def _check_open(self) -> None:
        if self.closed:
            raise CounterStateError(f"counter {self.counter_id} is closed")
        if self.dead:
            raise CounterInvalidError(
                f"counter {self.counter_id}: target pid {self.pid} "
                "no longer exists (ESRCH)")

    def enable(self) -> None:
        """Start counting (PERF_EVENT_IOC_ENABLE)."""
        self._check_open()
        self.enabled = True

    def disable(self) -> None:
        """Stop counting (PERF_EVENT_IOC_DISABLE)."""
        self._check_open()
        self.enabled = False

    def reset(self) -> None:
        """Zero the counter (PERF_EVENT_IOC_RESET)."""
        self._check_open()
        self.raw = 0.0
        self.time_enabled_s = 0.0
        self.time_running_s = 0.0

    def invalidate(self) -> None:
        """Mark the counter's target as gone; reads now raise ESRCH-style.

        Mirrors what the kernel does when a monitored pid exits: the fd
        stays open but stops producing data.  ``close()`` remains legal.
        """
        self.dead = True
        self.enabled = False

    def read(self) -> CounterValue:
        """Current value with scaling metadata."""
        self._check_open()
        if self._session._sample_loss:
            raise SampleLossError(
                f"counter {self.counter_id}: sample lost")
        return CounterValue(
            raw=self.raw,
            time_enabled_s=self.time_enabled_s,
            time_running_s=self.time_running_s,
        )

    def close(self) -> None:
        """Release the counter; further operations raise."""
        if not self.closed:
            self.closed = True
            self._session._release(self)

    # -- session internals ---------------------------------------------

    def _matches(self, pid: int, cpu: int) -> bool:
        """Whether a (pid, cpu) event-delta applies to this counter."""
        if self.pid >= 0 and self.pid != pid:
            return False
        if self.cpu >= 0 and self.cpu != cpu:
            return False
        return True

    def _accumulate(self, record: TickRecord, scheduled: bool) -> None:
        """Fold one machine tick into the counter."""
        if not self.enabled:
            return
        self.time_enabled_s += record.dt_s
        if not scheduled:
            return
        self.time_running_s += record.dt_s
        for (pid, cpu), delta in record.events.items():
            if self._matches(pid, cpu):
                self.raw += delta.get(self.event, 0.0)


class PerfSession:
    """All counters opened against one machine; handles multiplexing."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._counters: Dict[int, PerfCounter] = {}
        self._ids = itertools.count(3)  # fds start above stdio
        self._mux = MultiplexScheduler(slots=machine.spec.counter_slots)
        self._dead_pids: set = set()
        self._sample_loss = False
        self._closed = False
        machine.add_observer(self._on_tick)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def open(self, event: str, pid: int = -1, cpu: int = -1,
             enabled: bool = True) -> PerfCounter:
        """Open a counter for *event* on (pid, cpu); -1 wildcards both."""
        if self._closed:
            raise CounterStateError("perf session is closed")
        if pid >= 0 and pid in self._dead_pids:
            raise CounterInvalidError(
                f"cannot open counter: pid {pid} no longer exists (ESRCH)")
        canonical = pfm.resolve(event)
        counter = PerfCounter(self, next(self._ids), canonical, pid, cpu)
        self._counters[counter.counter_id] = counter
        if enabled:
            counter.enable()
        return counter

    def open_group(self, events, pid: int = -1, cpu: int = -1
                   ) -> List[PerfCounter]:
        """Open several events on the same target at once."""
        return [self.open(event, pid=pid, cpu=cpu) for event in events]

    def close(self) -> None:
        """Close every counter and detach from the machine (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for counter in list(self._counters.values()):
            counter.close()
        self.machine.remove_observer(self._on_tick)

    # -- fault injection -------------------------------------------------

    def invalidate_pid(self, pid: int) -> int:
        """ESRCH-style fault: every counter on *pid* goes dead.

        Later :meth:`open` calls for the pid also fail, mirroring the
        kernel refusing to attach to an exited process.  Returns the
        number of counters invalidated.
        """
        self._dead_pids.add(pid)
        hit = 0
        for counter in self._counters.values():
            if counter.pid == pid and not counter.dead:
                counter.invalidate()
                hit += 1
        return hit

    def set_sample_loss(self, active: bool) -> None:
        """While active, every counter read raises :class:`SampleLossError`."""
        self._sample_loss = bool(active)

    def set_slot_override(self, slots) -> None:
        """Override the usable PMU slots (0 = starvation); None restores."""
        self._mux.slot_override = slots

    # -- internals -------------------------------------------------------

    def _release(self, counter: PerfCounter) -> None:
        self._counters.pop(counter.counter_id, None)

    def _on_tick(self, record: TickRecord) -> None:
        active = [counter for counter in self._counters.values()
                  if counter.enabled]
        scheduled_ids = self._mux.schedule(active)
        for counter in active:
            counter._accumulate(record, counter.counter_id in scheduled_ids)

    def __enter__(self) -> "PerfSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Parsers for textual perf-counter output.

Real deployments of counter-based power models rarely link against the
kernel API directly; they parse the output of ``perf stat`` or read
pre-recorded counter logs (the powerapi-ng workflow).  This module
parses the two common formats into the event dictionaries the rest of
the library consumes:

* :func:`parse_perf_stat_csv` — ``perf stat -x,`` machine-readable CSV
  (one line per event: ``value,unit,event,runtime,percentage,...``),
* :func:`parse_perf_stat_text` — the default human-readable ``perf
  stat`` table,
* :func:`parse_counter_log` — a simple timestamped CSV of counter
  deltas, the interchange format produced by
  :class:`repro.core.offline.CounterLogWriter`.

All parsers resolve event spellings through the libpfm-style resolver,
so ``INST_RETIRED:ANY_P`` and ``instructions`` land in the same bucket,
and tolerate the ``<not counted>`` / ``<not supported>`` markers perf
emits for unscheduled events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import PerfError, UnknownEventError
from repro.perf import pfm

#: Markers perf prints instead of a value.
NOT_COUNTED_MARKERS = ("<not counted>", "<not supported>")


def _parse_value(text: str) -> Optional[float]:
    """Parse one perf value field; None for not-counted markers."""
    stripped = text.strip()
    if stripped in NOT_COUNTED_MARKERS:
        return None
    # perf localises thousands separators; accept ',' and ' ' grouping.
    cleaned = stripped.replace(",", "").replace(" ", "")
    try:
        return float(cleaned)
    except ValueError:
        raise PerfError(f"unparseable counter value {text!r}") from None


def parse_perf_stat_csv(text: str, strict: bool = False
                        ) -> Dict[str, Optional[float]]:
    """Parse ``perf stat -x,`` output into {canonical event: value}.

    Unknown event names are skipped unless *strict*; not-counted events
    map to ``None`` so callers can distinguish zero from unscheduled.
    """
    results: Dict[str, Optional[float]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split(",")
        if len(fields) < 3:
            if strict:
                raise PerfError(
                    f"line {line_number}: expected >=3 CSV fields")
            continue
        raw_value, _unit, event_name = fields[0], fields[1], fields[2]
        try:
            event = pfm.resolve(event_name)
        except UnknownEventError:
            if strict:
                raise
            continue
        if raw_value.strip() in NOT_COUNTED_MARKERS:
            results[event] = None
        else:
            results[event] = _parse_value(raw_value)
    return results


def parse_perf_stat_text(text: str) -> Dict[str, Optional[float]]:
    """Parse the default human-readable ``perf stat`` table.

    Lines look like ``  1,234,567,890      instructions   # 1.02 insn``;
    everything after ``#`` is commentary.  Unknown events are skipped.
    """
    results: Dict[str, Optional[float]] = {}
    for line in text.splitlines():
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        for marker in NOT_COUNTED_MARKERS:
            if body.startswith(marker):
                remainder = body[len(marker):].strip()
                if remainder:
                    try:
                        results[pfm.resolve(remainder.split()[0])] = None
                    except UnknownEventError:
                        pass
                break
        else:
            parts = body.split()
            if len(parts) < 2:
                continue
            try:
                value = _parse_value(parts[0])
            except PerfError:
                continue  # header/footer lines ("Performance counter stats")
            try:
                event = pfm.resolve(parts[1])
            except UnknownEventError:
                continue
            results[event] = value
    return results


def parse_counter_log(text: str, strict: bool = True
                      ) -> List[Tuple[float, Dict[str, float]]]:
    """Parse a timestamped counter-delta CSV.

    Format: a header ``time_s,<event>,<event>,...`` then one row per
    monitoring period with the counter *deltas* of that period.  Returns
    [(time_s, {event: delta})], suitable for
    :func:`repro.core.offline.estimate_from_log`.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise PerfError("empty counter log")
    header = lines[0].split(",")
    if header[0] != "time_s":
        raise PerfError("counter log must start with a 'time_s' column")
    events: List[Optional[str]] = []
    for name in header[1:]:
        try:
            events.append(pfm.resolve(name))
        except UnknownEventError:
            if strict:
                raise
            events.append(None)

    rows: List[Tuple[float, Dict[str, float]]] = []
    for line_number, line in enumerate(lines[1:], start=2):
        fields = line.split(",")
        if len(fields) != len(header):
            raise PerfError(
                f"line {line_number}: {len(fields)} fields, "
                f"expected {len(header)}")
        time_s = float(fields[0])
        deltas = {}
        for event, field in zip(events, fields[1:]):
            if event is None:
                continue
            value = _parse_value(field)
            deltas[event] = value if value is not None else 0.0
        rows.append((time_s, deltas))
    if rows and [r[0] for r in rows] != sorted(r[0] for r in rows):
        raise PerfError("counter log timestamps must be ascending")
    return rows

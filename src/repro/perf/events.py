"""Generic performance-event definitions, mirroring ``perf_event_open``.

The paper selects counters by "their availability on a large family of
architectures": the *generic* events the kernel maps onto each vendor's
PMU.  This module declares those events, their types and their per-vendor
availability, so the selection logic of :mod:`repro.core.selection` can
reason about portability the same way the authors did (via the
perf_event_open man page they cite).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import UnknownEventError
from repro.simcpu import counters as ev


class EventType(enum.Enum):
    """perf_event_open attr.type values we model."""

    HARDWARE = "PERF_TYPE_HARDWARE"
    HW_CACHE = "PERF_TYPE_HW_CACHE"


@dataclass(frozen=True)
class EventDef:
    """Static description of one generic event."""

    name: str
    type: EventType
    #: Symbolic perf constant, e.g. ``PERF_COUNT_HW_INSTRUCTIONS``.
    perf_constant: str
    #: Vendors whose PMUs expose the event ("intel", "amd").
    vendors: Tuple[str, ...] = ("intel", "amd")
    #: Relative collection overhead (1 = cheapest); the paper's second
    #: selection criterion.
    overhead: int = 1


_DEFS: Dict[str, EventDef] = {}


def _define(name: str, type_: EventType, constant: str,
            vendors: Tuple[str, ...] = ("intel", "amd"),
            overhead: int = 1) -> None:
    _DEFS[name] = EventDef(name=name, type=type_, perf_constant=constant,
                           vendors=vendors, overhead=overhead)


_define(ev.CYCLES, EventType.HARDWARE, "PERF_COUNT_HW_CPU_CYCLES")
_define(ev.INSTRUCTIONS, EventType.HARDWARE, "PERF_COUNT_HW_INSTRUCTIONS")
_define(ev.CACHE_REFERENCES, EventType.HARDWARE,
        "PERF_COUNT_HW_CACHE_REFERENCES")
_define(ev.CACHE_MISSES, EventType.HARDWARE, "PERF_COUNT_HW_CACHE_MISSES")
_define(ev.BRANCHES, EventType.HARDWARE,
        "PERF_COUNT_HW_BRANCH_INSTRUCTIONS")
_define(ev.BRANCH_MISSES, EventType.HARDWARE, "PERF_COUNT_HW_BRANCH_MISSES")
_define(ev.BUS_CYCLES, EventType.HARDWARE, "PERF_COUNT_HW_BUS_CYCLES",
        vendors=("intel",))
_define(ev.STALLED_CYCLES_FRONTEND, EventType.HARDWARE,
        "PERF_COUNT_HW_STALLED_CYCLES_FRONTEND", overhead=2)
_define(ev.STALLED_CYCLES_BACKEND, EventType.HARDWARE,
        "PERF_COUNT_HW_STALLED_CYCLES_BACKEND", overhead=2)
_define(ev.REF_CYCLES, EventType.HARDWARE, "PERF_COUNT_HW_REF_CPU_CYCLES",
        vendors=("intel",))
_define(ev.L1_DCACHE_LOADS, EventType.HW_CACHE,
        "PERF_COUNT_HW_CACHE_L1D:READ:ACCESS", overhead=2)
_define(ev.L1_DCACHE_LOAD_MISSES, EventType.HW_CACHE,
        "PERF_COUNT_HW_CACHE_L1D:READ:MISS", overhead=2)
_define(ev.LLC_LOADS, EventType.HW_CACHE,
        "PERF_COUNT_HW_CACHE_LL:READ:ACCESS", overhead=2)
_define(ev.LLC_LOAD_MISSES, EventType.HW_CACHE,
        "PERF_COUNT_HW_CACHE_LL:READ:MISS", overhead=2)


def event_def(name: str) -> EventDef:
    """Look up an event definition by canonical name."""
    try:
        return _DEFS[name]
    except KeyError:
        raise UnknownEventError(
            f"unknown event {name!r}; known: {sorted(_DEFS)}") from None


def all_events() -> Tuple[str, ...]:
    """All canonical event names."""
    return tuple(_DEFS)


def available_on(vendor: str) -> Tuple[str, ...]:
    """Events exposed by *vendor*'s PMU ('intel' or 'amd')."""
    vendor = vendor.lower()
    return tuple(name for name, definition in _DEFS.items()
                 if vendor in definition.vendors)


def portable_events() -> Tuple[str, ...]:
    """Events available on every modelled vendor — the paper's criterion."""
    vendors = {"intel", "amd"}
    return tuple(name for name, definition in _DEFS.items()
                 if vendors.issubset(set(definition.vendors)))

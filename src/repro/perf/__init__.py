"""Simulated perf-event interface (the libpfm4 / perf_event_open layer)."""

from repro.perf.counting import CounterValue, PerfCounter, PerfSession
from repro.perf.events import (EventDef, EventType, all_events, available_on,
                               event_def, portable_events)
from repro.perf.multiplex import MultiplexScheduler
from repro.perf.parsing import (parse_counter_log, parse_perf_stat_csv,
                                parse_perf_stat_text)
from repro.perf.pfm import resolve, resolve_many

__all__ = [
    "CounterValue", "EventDef", "EventType", "MultiplexScheduler",
    "PerfCounter", "PerfSession", "all_events", "available_on", "event_def",
    "parse_counter_log", "parse_perf_stat_csv", "parse_perf_stat_text",
    "portable_events", "resolve", "resolve_many",
]

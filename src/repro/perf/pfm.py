"""libpfm4-style event-name resolution.

The paper accesses HPCs through libpfm4, which resolves human-friendly and
vendor-specific mnemonics to PMU encodings.  :func:`resolve` accepts the
canonical generic names (``instructions``), the perf symbolic constants
(``PERF_COUNT_HW_INSTRUCTIONS``) and the common Intel/AMD mnemonics
(``INST_RETIRED:ANY_P``, ``RETIRED_INSTRUCTIONS``), normalising case and
the ``:`` / ``.`` / ``-`` separator variants.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import UnknownEventError
from repro.perf.events import all_events, event_def
from repro.simcpu import counters as ev

#: Vendor mnemonics -> canonical generic name.
_ALIASES: Dict[str, str] = {
    # Intel mnemonics.
    "INST_RETIRED:ANY_P": ev.INSTRUCTIONS,
    "CPU_CLK_UNHALTED:THREAD_P": ev.CYCLES,
    "CPU_CLK_UNHALTED:REF_P": ev.REF_CYCLES,
    "LONGEST_LAT_CACHE:REFERENCE": ev.CACHE_REFERENCES,
    "LONGEST_LAT_CACHE:MISS": ev.CACHE_MISSES,
    "BR_INST_RETIRED:ALL_BRANCHES": ev.BRANCHES,
    "BR_MISP_RETIRED:ALL_BRANCHES": ev.BRANCH_MISSES,
    "MEM_LOAD_UOPS_RETIRED:L1_HIT": ev.L1_DCACHE_LOADS,
    # AMD mnemonics.
    "RETIRED_INSTRUCTIONS": ev.INSTRUCTIONS,
    "CPU_CLK_UNHALTED": ev.CYCLES,
    "REQUESTS_TO_L2:ALL": ev.CACHE_REFERENCES,
    "L2_CACHE_MISS:ALL": ev.CACHE_MISSES,
    "RETIRED_BRANCH_INSTRUCTIONS": ev.BRANCHES,
    "RETIRED_MISPREDICTED_BRANCH_INSTRUCTIONS": ev.BRANCH_MISSES,
}


def _normalise(name: str) -> str:
    """Uppercase and unify separators so lookups are forgiving."""
    return name.strip().upper().replace(".", ":").replace("-", "_")


def resolve(name: str) -> str:
    """Resolve any accepted spelling of an event to its canonical name.

    Raises :class:`~repro.errors.UnknownEventError` when nothing matches.
    """
    stripped = name.strip()
    # Exact canonical name (the generic perf spelling, lowercase-dashed).
    if stripped in all_events():
        return stripped

    normalised = _normalise(stripped)
    # Generic name with different separators/case (``Cache_Misses``).
    for canonical in all_events():
        if _normalise(canonical) == normalised:
            return canonical
    # perf symbolic constant (``PERF_COUNT_HW_INSTRUCTIONS``).
    for canonical in all_events():
        if _normalise(event_def(canonical).perf_constant) == normalised:
            return canonical
    # Vendor mnemonic.
    if normalised in _ALIASES:
        return _ALIASES[normalised]
    raise UnknownEventError(f"cannot resolve event name {name!r}")


def resolve_many(names) -> Tuple[str, ...]:
    """Resolve a sequence of names, preserving order, dropping duplicates."""
    seen = []
    for name in names:
        canonical = resolve(name)
        if canonical not in seen:
            seen.append(canonical)
    return tuple(seen)

"""PMU counter-slot multiplexing.

Real PMUs have a handful of programmable counters per logical CPU; when
more events are requested than slots exist, the kernel time-multiplexes
them and consumers scale the raw counts by ``time_enabled/time_running``.
The paper's overhead criterion for choosing events exists precisely because
of this pressure.

The scheduler here groups active counters by their (pid, cpu) target —
counters on the same target compete for the same slots — and rotates which
ones count each tick, giving every event an equal share of PMU time over
any window longer than a few ticks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError


class MultiplexScheduler:
    """Round-robin rotation of counters over limited PMU slots."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError("need at least one PMU slot")
        self.slots = slots
        self._rotation: Dict[Tuple[int, int], int] = defaultdict(int)

    def schedule(self, counters: Sequence, dt_s: float) -> Set[int]:
        """Pick which of *counters* get a PMU slot for this tick.

        Returns the ``counter_id`` set of the scheduled ones.  Counters are
        grouped by (pid, cpu) target; each group independently rotates
        through its members ``slots`` at a time.
        """
        groups: Dict[Tuple[int, int], List] = defaultdict(list)
        for counter in counters:
            groups[(counter.pid, counter.cpu)].append(counter)

        scheduled: Set[int] = set()
        for target, members in groups.items():
            members.sort(key=lambda c: c.counter_id)
            if len(members) <= self.slots:
                scheduled.update(c.counter_id for c in members)
                continue
            start = self._rotation[target] % len(members)
            for offset in range(self.slots):
                scheduled.add(members[(start + offset) % len(members)].counter_id)
            self._rotation[target] = (start + self.slots) % len(members)
        return scheduled

    def pressure(self, counters: Sequence) -> float:
        """Worst-case events-per-slot ratio across targets (1.0 = no mux)."""
        groups: Dict[Tuple[int, int], int] = defaultdict(int)
        for counter in counters:
            groups[(counter.pid, counter.cpu)] += 1
        if not groups:
            return 0.0
        return max(count / self.slots for count in groups.values())

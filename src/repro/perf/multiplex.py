"""PMU counter-slot multiplexing.

Real PMUs have a handful of programmable counters per logical CPU; when
more events are requested than slots exist, the kernel time-multiplexes
them and consumers scale the raw counts by ``time_enabled/time_running``.
The paper's overhead criterion for choosing events exists precisely because
of this pressure.

The scheduler here groups active counters by their (pid, cpu) target —
counters on the same target compete for the same slots — and rotates which
ones count each tick, giving every event an equal share of PMU time over
any window longer than a few ticks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError


class MultiplexScheduler:
    """Round-robin rotation of counters over limited PMU slots."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError("need at least one PMU slot")
        self.slots = slots
        #: Fault-injection override of the usable slot count (may be 0 to
        #: model complete PMU starvation); None means use ``slots``.
        self.slot_override: Optional[int] = None
        self._rotation: Dict[Tuple[int, int], int] = defaultdict(int)

    @property
    def effective_slots(self) -> int:
        """Slots usable this tick (honours a starvation override)."""
        if self.slot_override is None:
            return self.slots
        return max(0, self.slot_override)

    def schedule(self, counters: Sequence) -> Set[int]:
        """Pick which of *counters* get a PMU slot for this tick.

        Returns the ``counter_id`` set of the scheduled ones.  Counters are
        grouped by (pid, cpu) target; each group independently rotates
        through its members ``slots`` at a time.  Rotation state for
        targets no longer present (closed counters, exited pids) is pruned
        here, so long-running sessions under pid churn stay bounded.
        """
        groups: Dict[Tuple[int, int], List] = defaultdict(list)
        for counter in counters:
            groups[(counter.pid, counter.cpu)].append(counter)

        for stale in [target for target in self._rotation
                      if target not in groups]:
            del self._rotation[stale]

        slots = self.effective_slots
        scheduled: Set[int] = set()
        if slots == 0:
            return scheduled
        for target, members in groups.items():
            members.sort(key=lambda c: c.counter_id)
            if len(members) <= slots:
                scheduled.update(c.counter_id for c in members)
                continue
            start = self._rotation[target] % len(members)
            for offset in range(slots):
                scheduled.add(members[(start + offset) % len(members)].counter_id)
            self._rotation[target] = (start + slots) % len(members)
        return scheduled

    def rotation_targets(self) -> Tuple[Tuple[int, int], ...]:
        """Targets with live rotation state (introspection for tests)."""
        return tuple(self._rotation)

    def pressure(self, counters: Sequence) -> float:
        """Worst-case events-per-slot ratio across targets (1.0 = no mux)."""
        groups: Dict[Tuple[int, int], int] = defaultdict(int)
        for counter in counters:
            groups[(counter.pid, counter.cpu)] += 1
        if not groups:
            return 0.0
        return max(count / self.slots for count in groups.values())

"""repro — a reproduction of PowerAPI (Colmant et al., Middleware DS 2014).

An actor-based middleware toolkit estimating per-process CPU power from
hardware performance counters, together with the full substrate the paper
depends on, rebuilt in simulation: a multi-core CPU (DVFS, SMT, C-states,
caches, HPCs, hidden ground-truth power), an OS layer (processes,
scheduler, cpufreq, procfs), a perf-event interface, power meters
(PowerSpy, RAPL, ACPI), workloads (stress, SPECjbb-like, SPEC CPU-like)
and baseline models (CPU-load, decomposable, hyperthread-aware).

Quickstart::

    from repro.simcpu import intel_i3_2120
    from repro.os import SimKernel
    from repro.workloads import SpecJbbWorkload
    from repro.core import (SamplingCampaign, learn_power_model, PowerAPI,
                            InMemoryReporter)

    spec = intel_i3_2120()
    model = learn_power_model(spec).model       # Figure 1 pipeline

    kernel = SimKernel(spec)
    pid = kernel.spawn(SpecJbbWorkload(duration_s=120.0), name="specjbb")
    api = PowerAPI(kernel, model)               # Figure 2 pipeline
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(duration_s=120.0)
    print(handle.reporter.total_series())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
